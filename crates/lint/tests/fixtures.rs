//! End-to-end lint tests over the checked-in fixture trees, plus exit
//! code tests driving the real `cackle-lint` binary.

use cackle_lint::{diff_baseline, lint_root, Baseline, LintId};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn violations_fixture_trips_every_rule() {
    let findings = lint_root(&fixture("violations")).unwrap();
    for id in LintId::ALL {
        assert!(
            findings.iter().any(|f| f.id == id),
            "rule {id} produced no finding: {findings:#?}"
        );
    }
    // Counts are exact so rule changes are reviewed deliberately.
    let count = |id| findings.iter().filter(|f| f.id == id).count();
    assert_eq!(count(LintId::L1), 1);
    assert_eq!(count(LintId::L2), 3);
    assert_eq!(count(LintId::L3), 2);
    assert_eq!(count(LintId::L4), 2);
    assert_eq!(count(LintId::L5), 3);
    assert_eq!(count(LintId::L6), 2);
    // Findings are sorted and carry 1-based lines.
    let mut sorted = findings.clone();
    sorted.sort();
    assert_eq!(findings, sorted);
    assert!(findings.iter().all(|f| f.line >= 1));
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = lint_root(&fixture("clean")).unwrap();
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn baseline_absorbs_known_debt_exactly() {
    let findings = lint_root(&fixture("violations")).unwrap();
    // A baseline generated from the current findings absorbs all of them.
    let mut baseline = Baseline::new();
    for f in &findings {
        *baseline.entry((f.id, f.path.clone())).or_insert(0) += 1;
    }
    let (new, stale) = diff_baseline(&findings, &baseline);
    assert!(new.is_empty() && stale.is_empty());
    // Dropping one entry makes those findings "new" again.
    let key = (LintId::L1, "crates/cloud/src/vm.rs".to_string());
    baseline.remove(&key);
    let (new, _) = diff_baseline(&findings, &baseline);
    assert_eq!(new.len(), 1);
    assert_eq!(new[0].id, LintId::L1);
}

#[test]
fn binary_exits_nonzero_on_violations() {
    let out = Command::new(env!("CARGO_BIN_EXE_cackle-lint"))
        .arg(fixture("violations"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("L5"), "diagnostics on stdout: {stdout}");
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_cackle-lint"))
        .arg(fixture("clean"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn binary_rejects_malformed_baseline() {
    let dir = std::env::temp_dir().join(format!("cackle-lint-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad-baseline.txt");
    std::fs::write(&bad, "L9 nonsense 1\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cackle-lint"))
        .arg(fixture("clean"))
        .arg("--baseline")
        .arg(&bad)
        .output()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
