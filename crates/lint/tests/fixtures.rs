//! End-to-end lint tests over the checked-in fixture trees, plus exit
//! code and output-format tests driving the real `cackle-lint` binary.

use cackle_lint::{diff_baseline, lint_root, Baseline, LintId};
use std::ffi::OsStr;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&dyn AsRef<OsStr>]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cackle-lint"));
    for a in args {
        cmd.arg(a.as_ref());
    }
    cmd.output().unwrap()
}

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("cackle-lint-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn violations_fixture_trips_every_live_rule() {
    let findings = lint_root(&fixture("violations")).unwrap();
    for id in LintId::ALL {
        let fired = findings.iter().any(|f| f.id == id);
        if id == LintId::L4 {
            assert!(!fired, "retired L4 must never fire: {findings:#?}");
        } else {
            assert!(fired, "rule {id} produced no finding: {findings:#?}");
        }
    }
    // Counts are exact so rule changes are reviewed deliberately.
    let count = |id| findings.iter().filter(|f| f.id == id).count();
    assert_eq!(count(LintId::L1), 1);
    assert_eq!(count(LintId::L2), 3);
    assert_eq!(count(LintId::L3), 2);
    assert_eq!(count(LintId::L5), 5);
    assert_eq!(count(LintId::L6), 2);
    assert_eq!(count(LintId::L7), 2);
    assert_eq!(count(LintId::L8), 2);
    assert_eq!(count(LintId::L9), 2);
    assert_eq!(count(LintId::L10), 5);
    assert_eq!(count(LintId::L11), 3);
    assert_eq!(count(LintId::L12), 3);
    assert_eq!(count(LintId::L13), 3);
    assert_eq!(count(LintId::L14), 7);
    assert_eq!(count(LintId::L15), 2);
    assert_eq!(count(LintId::L16), 1);
    assert_eq!(count(LintId::Sup), 1);
    assert_eq!(findings.len(), 44);
    // Findings are sorted and carry 1-based lines.
    let mut sorted = findings.clone();
    sorted.sort();
    assert_eq!(findings, sorted);
    assert!(findings.iter().all(|f| f.line >= 1));
}

#[test]
fn retired_l4_fixtures_resurface_as_l11() {
    // The `cost`/`vm_price` lines that L4 used to catch must now be
    // caught by the wider L11 at the same sites (subsumption).
    let findings = lint_root(&fixture("violations")).unwrap();
    let vm_l11: Vec<usize> = findings
        .iter()
        .filter(|f| f.id == LintId::L11 && f.path == "crates/cloud/src/vm.rs")
        .map(|f| f.line)
        .collect();
    assert_eq!(vm_l11, [8, 9, 13], "{findings:#?}");
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = lint_root(&fixture("clean")).unwrap();
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn baseline_absorbs_known_debt_exactly() {
    let findings = lint_root(&fixture("violations")).unwrap();
    // A baseline generated from the current findings absorbs all of
    // them — except SUP, which may never be baselined.
    let mut baseline = Baseline::new();
    for f in &findings {
        if f.id != LintId::Sup {
            *baseline.entry((f.id, f.path.clone())).or_insert(0) += 1;
        }
    }
    let (new, stale) = diff_baseline(&findings, &baseline);
    assert_eq!(new.len(), 1, "{new:#?}");
    assert_eq!(new[0].id, LintId::Sup);
    assert!(stale.is_empty());
    // Dropping one entry makes those findings "new" again.
    let key = (LintId::L1, "crates/cloud/src/vm.rs".to_string());
    baseline.remove(&key);
    let (new, _) = diff_baseline(&findings, &baseline);
    assert!(new.iter().any(|f| f.id == LintId::L1), "{new:#?}");
}

#[test]
fn binary_exits_nonzero_on_violations() {
    let out = run(&[&fixture("violations")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("L5"), "diagnostics on stdout: {stdout}");
    assert!(stdout.contains("L11"), "diagnostics on stdout: {stdout}");
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let out = run(&[&fixture("clean")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn binary_exits_three_on_stale_baseline_only() {
    let dir = Scratch::new("stale");
    let baseline = dir.0.join("baseline.txt");
    std::fs::write(&baseline, "L1 ghost.rs 1\n").unwrap();
    let out = run(&[&fixture("clean"), &"--baseline", &baseline]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stale"), "{stderr}");
}

#[test]
fn binary_rejects_bad_flags_and_formats() {
    let out = run(&[&fixture("clean"), &"--format", &"yaml"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&[&fixture("clean"), &"--wat"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&[&"--explain", &"L99"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn binary_rejects_malformed_baseline() {
    let dir = Scratch::new("badbase");
    let bad = dir.0.join("bad-baseline.txt");
    // SUP findings may never be baselined; L99 does not exist.
    for text in ["SUP foo 1\n", "L99 nonsense 1\n"] {
        std::fs::write(&bad, text).unwrap();
        let out = run(&[&fixture("clean"), &"--baseline", &bad]);
        assert_eq!(out.status.code(), Some(2), "{text:?}: {out:?}");
    }
}

#[test]
fn binary_explains_rules() {
    let out = run(&[&"--explain", &"L7"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lock"), "{stdout}");
    let out = run(&[&"--explain", &"SUP"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

/// Zero out the `"ms": N` phase timings in the JSON meta block — the
/// only nondeterministic bytes in the output.
fn normalize_ms(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find("\"ms\": ") {
        let after = at + "\"ms\": ".len();
        out.push_str(&rest[..after]);
        out.push('0');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn json_output_matches_golden_snapshot_and_is_byte_identical() {
    let a = run(&[&fixture("violations"), &"--format", &"json"]);
    let b = run(&[&fixture("violations"), &"--format", &"json"]);
    assert_eq!(a.status.code(), Some(1), "{a:?}");
    // Deterministic up to phase timings: byte-identical across runs.
    let a_norm = normalize_ms(&String::from_utf8_lossy(&a.stdout));
    let b_norm = normalize_ms(&String::from_utf8_lossy(&b.stdout));
    assert_eq!(a_norm, b_norm);
    // And exactly the checked-in snapshot (timings zeroed), so any
    // diagnostic change is reviewed in the diff.
    let golden = include_str!("fixtures/violations.json");
    assert_eq!(a_norm, golden);
}

#[test]
fn binary_update_baseline_writes_sorted_stable_file() {
    let dir = Scratch::new("update");
    let baseline = dir.0.join("baseline.txt");
    // Absorb the violation tree's debt into a fresh baseline. SUP is
    // never baselined, so the run still exits 1.
    let out = run(&[
        &fixture("violations"),
        &"--baseline",
        &baseline,
        &"--update-baseline",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let written = std::fs::read_to_string(&baseline).unwrap();
    // `RULE path count` entries under the standard header, covering
    // every non-SUP finding.
    assert!(
        written.starts_with("# cackle-lint accepted debt"),
        "{written}"
    );
    let lines: Vec<&str> = written
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert!(lines.iter().all(|l| l.split_whitespace().count() == 3));
    assert!(!written.contains("SUP"), "SUP must never be baselined");
    assert!(written.contains("L12 crates/cloud/src/billing.rs 3"));
    assert!(written.contains("L14 crates/engine/src/batch.rs 6"));
    let total: usize = lines
        .iter()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
        .sum();
    assert_eq!(total, 43, "all findings except the one SUP:\n{written}");
    // A second update run is byte-stable and, with the debt absorbed,
    // only the un-baselineable SUP remains.
    let again = run(&[
        &fixture("violations"),
        &"--baseline",
        &baseline,
        &"--update-baseline",
    ]);
    assert_eq!(again.status.code(), Some(1), "{again:?}");
    assert_eq!(std::fs::read_to_string(&baseline).unwrap(), written);
    let stdout = String::from_utf8_lossy(&again.stdout);
    assert!(stdout.contains("SUP"), "{stdout}");
}
