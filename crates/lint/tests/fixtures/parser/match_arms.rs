//! Parser fixture: braced match arms. Statement extents inside an arm
//! must stay inside the arm's braces; the expression arm after a braced
//! arm must start its statement at the arm's pattern, not leak back
//! into the previous arm.

fn classify(op: Op) -> u32 {
    match op {
        Op::Scan { rows } => {
            let width = rows + 1;
            width
        }
        Op::Join => 2,
        _ => 0,
    }
}
