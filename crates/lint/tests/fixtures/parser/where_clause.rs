//! Parser fixture: a where-clause between signature and body. The
//! recorded body extent must start at the brace after the bounds, not
//! at a brace-free token inside them.

fn reduce<T>(items: &[T]) -> u64
where
    T: Into<u64> + Copy,
{
    let mut acc = 0;
    for it in items {
        acc += into_u64(*it);
    }
    acc
}
