//! Parser fixture: turbofish call syntax. `collect::<Vec<u64>>()` and
//! `parse::<u64>(...)` must resolve to call sites whose argument list
//! is the paren group after the closed `<...>`, not the angle brackets.

fn drain(xs: Vec<u64>) -> Vec<u64> {
    let doubled = xs.iter().map(|x| x * 2).collect::<Vec<u64>>();
    let empty = Vec::<u64>::new();
    parse::<u64>(&doubled);
    let _ = empty;
    doubled
}
