//! L16: a checked-out scratch buffer that never goes back to the pool.

pub fn leak_scratch(arena: &mut ScratchArena, n: usize) -> Vec<bool> {
    let sel = arena.checkout_idx(n);
    let mask = arena.checkout_mask(n);
    arena.recycle_idx(sel);
    mask
}
