//! Fixture: deliberate L8 violations — `Ordering::Relaxed` on an atomic
//! shared between worker closures and the coordinating thread.

fn drain(s: &Scope) {
    let done = AtomicBool::new(false);
    s.spawn(|| {
        done.store(true, Ordering::Relaxed); // L8: publish with no release
    });
    while !done.load(Ordering::Relaxed) {} // L8: consume with no acquire
}
