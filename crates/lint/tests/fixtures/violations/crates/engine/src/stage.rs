//! Fixture: deliberate L7 violation — opposite lock orders on two paths.

struct Stage {
    queue: Mutex<Vec<u64>>,
    done: Mutex<Vec<u64>>,
}

impl Stage {
    fn forward(&self) {
        let q = self.queue.lock();
        let d = self.done.lock(); // L7: queue held while done is acquired
        d.push(q.len() as u64);
    }

    fn backward(&self) {
        let d = self.done.lock();
        let q = self.queue.lock(); // L7: done held while queue is acquired
        q.push(d.len() as u64);
    }
}
