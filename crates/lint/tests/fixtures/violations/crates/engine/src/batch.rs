//! Fixture: deliberate L14 violations — per-iteration allocation in a
//! columnar kernel file (hot by definition, no reachability needed).
//! `pack` below is the near-miss: pre-sized buffers and shared schema
//! handles must stay silent.

impl Batch {
    pub fn explode(&self, groups: &[Group]) -> Vec<Out> {
        let mut out = Vec::new();
        for g in groups {
            let idx: Vec<usize> = g.members().collect(); // L14: collect per group
            let mut scratch = Vec::new(); // L14: buffer built per group
            scratch.push(idx.len()); // L14: push into unsized `scratch`
            let tag = format!("g{}", idx.len()); // L14: String per group
            let dup = g.clone(); // L14: deep copy per group
            out.push(emit(&scratch, &tag, dup)); // L14: push into unsized `out`
        }
        out
    }

    pub fn pack(&self, n: usize) -> Vec<SchemaRef> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.schema.clone());
        }
        out
    }
}
