//! Fixture: deliberate L9 violations — sequential fault draws inside
//! the worker-pool phase, where call order is scheduler-dependent.

pub fn execute_task_buffered(faults: &FaultInjector, op: StoreOp) -> u64 {
    let attempts = faults.store_attempts(op); // L9: keyed twin exists
    if faults.vm_interrupt() {
        return 0; // L9 above: no keyed twin — hoist the draw
    }
    attempts
}
