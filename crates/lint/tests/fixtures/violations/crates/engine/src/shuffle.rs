//! Fixture: deliberate L3 violations — order-revealing hash iteration.

use std::collections::{HashMap, HashSet};

struct Registry {
    entries: HashMap<u64, Vec<u8>>,
}

fn checksum(r: &Registry) -> u64 {
    let mut acc = 0;
    for v in r.entries.values() {
        // L3: iteration order is nondeterministic
        acc += v.len() as u64;
    }
    acc
}

fn drain_all(r: &mut Registry) -> usize {
    let mut seen = HashSet::new();
    seen.insert(1u64);
    let n = seen.iter().count(); // L3
    let _ = r;
    n
}
