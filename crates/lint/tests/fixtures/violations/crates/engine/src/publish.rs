//! Fixture: deliberate L17 violations — parallel-phase writes to shared
//! registries, bypassing the shard / stage-barrier publication APIs.

pub fn execute_task_buffered(ctx: &mut TaskCtx, shard: &Shard) {
    ctx.ledger.charge(Cat::Compute, shard.amount); // L17: direct ledger write
    ctx.telemetry.merge(shard); // L17: registry publish off the barrier
    flush_side_channel(ctx, shard);
}

// Reachable through the root above: still parallel-phase.
fn flush_side_channel(ctx: &mut TaskCtx, shard: &Shard) {
    ctx.shuffle.write(shard.key, shard.task, &shard.payload); // L17: raw transport write
}
