//! Fixture: deliberate L6 violations — ad-hoc threading outside the
//! blessed stage executor.

fn fan_out(work: Vec<u64>) -> Vec<std::thread::JoinHandle<u64>> {
    work.into_iter()
        .map(|w| std::thread::spawn(move || w * 2)) // L6: ad-hoc spawn
        .collect()
}

fn scoped(work: &[u64]) -> u64 {
    let mut total = 0;
    std::thread::scope(|s| {
        // L6: ad-hoc scope
        s.spawn(|| {
            total = work.iter().sum();
        });
    });
    total
}
