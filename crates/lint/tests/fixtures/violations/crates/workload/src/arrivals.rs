//! Fixture: deliberate L2 violations — nondeterministic RNG sources.

fn sample() -> u64 {
    let mut rng = rand::thread_rng(); // L2 twice: `rand::` and `thread_rng`
    let _ = &mut rng;
    0
}

fn reseed() -> u64 {
    let from = from_entropy(); // L2
    from
}
