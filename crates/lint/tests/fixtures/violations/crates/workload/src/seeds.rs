//! Fixture: deliberate L13 violations — PRNG streams whose seeds cannot
//! be re-derived from the RunSpec: a literal, a draw fed back in, and an
//! argument with no seed-named provenance. The keyed near-miss at the
//! bottom must stay silent.

fn fixed() -> Pcg32 {
    Pcg32::seed_from_u64(42) // L13: literal seed
}

fn chained(rng: &mut Pcg32) -> Pcg32 {
    let draw = rng.next_u64();
    Pcg32::seed_from_u64(draw) // L13: re-seeded from a stream's output
}

fn opaque(slot: u64) -> Pcg32 {
    Pcg32::seed_from_u64(slot) // L13: provenance unproven
}

// Near-miss: a salted sub-stream of the RunSpec seed is the blessed
// pattern and must stay silent.
fn arrival_stream(spec: &RunSpec) -> Pcg32 {
    Pcg32::seed_from_u64(spec.seed ^ SALT_ARRIVALS)
}
