//! Fixture: deliberate L12 / L15 violations — mixed units, bare scalars
//! on measured quantities, and narrowing casts. The near-misses at the
//! bottom (rates, cardinalities, widening) must stay silent.

fn drift(payload_bytes: u64, elapsed_secs: u64) -> u64 {
    payload_bytes + elapsed_secs // L12: bytes + seconds
}

fn padded_wait(queue_secs: f64) -> f64 {
    queue_secs + 2.5 // L12: bare scalar added to a seconds quantity
}

fn overrun(elapsed_secs: f64) -> bool {
    // cackle-lint: unit(usd)
    let budget = 10.0;
    budget < elapsed_secs // L12: usd compared to seconds (annotation-typed)
}

fn wire_len(total_bytes: u64) -> u32 {
    total_bytes as u32 // L15: bytes narrowed to u32 wraps at 4 GiB
}

fn report(run: &Run) -> f32 {
    let spend = run.total_cost();
    spend as f32 // L15: usd narrowed to f32 rounds money
}

// Near-misses: rates carry no base unit, `count + 1` is index
// arithmetic, and widening is how measured ints enter float math.
fn throughput(total_bytes: u64, elapsed_secs: u64) -> u64 {
    total_bytes / elapsed_secs
}

fn bump(retry_count: u64) -> u64 {
    retry_count + 1
}

fn widen(payload_bytes: u64) -> f64 {
    payload_bytes as f64
}

fn slot_index(retry_count: u64) -> u32 {
    retry_count as u32
}
