//! Fixture: deliberate L1 / L5 / L11 violations on a cloud hot path.
//! The two `cost`/`vm_price` lines were L4 before that rule was retired
//! and must now flag as L11 (subsumption).

fn bill(seconds: f64, vm_price: f64) -> f64 {
    let started = Instant::now(); // L1: host clock
    let _ = started;
    let cost = seconds * vm_price; // L11: `vm_price` beside `*`
    cost * 2.0 // L11: `cost` beside `*`
}

fn settle(led: &Ledger, rate: f64, hours: f64) {
    led.charge(Cat::Vm, rate * hours); // L11: price computed at the call site
}

fn take(slot: Option<u32>) -> u32 {
    slot.unwrap() // L5: panic path
}

fn expected(slot: Option<u32>) -> u32 {
    slot.expect("slot") // L5: panic path
}

fn boom() {
    panic!("hot-path panic"); // L5
}
