//! Fixture: a malformed suppression (SUP) — the allow list names an
//! unknown rule, so it is a hard error AND suppresses nothing.

fn take(slot: Option<u32>) -> u32 {
    slot.unwrap() // cackle-lint: allow(L5,L99) — SUP, and the L5 still fires
}
