//! Fixture: deliberate L19 violations — purity contracts broken clause
//! by clause — plus one malformed `pure(...)` annotation (SUP).

static mut GLOBAL_EPOCH: u64 = 0;

// cackle-lint: pure(seed, salt, key)
pub fn keyed(seed: u64, salt: u64, key: u64) -> u64 {
    let mut s = seed ^ salt ^ key;
    splitmix64(&mut s)
}

// cackle-lint: pure(seed, nope)
pub fn vm_traits(seed: u64, vm: u64, worker_slot: u64) -> u64 {
    // L19 above: `nope` is not a parameter of this fn.
    let _ = unsafe { GLOBAL_EPOCH }; // L19: mutable-static read
    keyed(seed, SALT_ENV_VM, worker_slot) // L19: key from an undeclared param
}

fn now_ms() -> u64 {
    0
}

// cackle-lint: pure(self, now_s)
pub fn multiplier_milli(&self, now_s: u64) -> u64 {
    let t = self.clock.lock(); // L19: interior mutability
    let jitter = now_ms(); // L19: `now_ms` is not pure(...)-annotated
    t ^ now_s ^ jitter
}

// cackle-lint: pure(seed)
const SALT_ENV_VM: u64 = 0x9E37_79B9; // L19: annotation attaches to no fn

// cackle-lint: pure(seed,)
pub fn storm_offset(seed: u64) -> u64 {
    // SUP above: trailing comma makes the annotation malformed.
    seed
}
