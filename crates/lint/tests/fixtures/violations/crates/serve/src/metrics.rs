//! Serving-layer telemetry violations: a near-miss component prefix and
//! a format!-built per-tenant metric name, plus a panic path now that
//! L5 covers `crates/serve/src`.

fn record(t: &Registry, tenant: u32) {
    t.counter_add("serv.admitted_total", 1); // L10: `serv` is a near-miss, not in the §7 table
    t.gauge_set(&format!("tenant.{tenant}.queue_depth"), 2.0); // L10: per-tenant format!-built name
}

fn take_token(level: Option<u64>) -> u64 {
    level.unwrap() // L5: panic path in the serving layer
}
