//! WDRR dispatch-loop allocation: serve scheduler files are hot by
//! definition for L14 (their loops run once per simulated second).

fn dispatch_round(queues: &mut [Queue], budget: usize) {
    let mut picked = 0;
    while picked < budget {
        let order: Vec<usize> = (0..queues.len()).collect(); // L14: per-iteration materialization
        picked += order.len();
    }
}
