//! Fixture: deliberate L10 violations — metric names off the DESIGN §7
//! grammar or not knowable at compile time.

fn record(t: &Telemetry, shard: u32) {
    t.counter_add(&format!("engine.shard_{shard}.tasks"), 1); // L10: format!-built
    t.gauge_set("Engine.QueueDepth", 3.0); // L10: not lowercase snake
    t.observe("latency", 0.5); // L10: no `component.` prefix
}
