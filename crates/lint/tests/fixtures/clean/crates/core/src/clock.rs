//! Fixture: host-clock / entropy / iteration-order near-misses.
//! near-miss(L1) — readings come from the simulated clock, and host
//! clock names inside strings or comments are invisible.
//! near-miss(L2) — the PRNG is seeded from the RunSpec, never entropy.
//! near-miss(L3) — BTreeMap iteration is deterministic, so it may
//! drive telemetry and output.

fn tick(clock: &SimClock) -> u64 {
    clock.now_ms()
}

fn draw(spec: &RunSpec) -> u32 {
    let mut rng = Pcg32::seed_from_u64(spec.seed);
    rng.next_u32()
}

fn totals(by_vm: &BTreeMap<String, u64>) -> u64 {
    by_vm.values().sum()
}
