//! Fixture: L10 near-misses — on-grammar literals, and same-named
//! methods on non-registry types (disambiguated by arity).
//! near-miss(L10)

fn record(t: &Telemetry, h: &Histogram, dist: &Uniform, rng: &mut Pcg32) {
    t.counter_add("engine.tasks_total", 1);
    t.observe("pool.invoke_latency_seconds", 0.5);
    t.sample("shuffle_fleet.nodes", 1000, 4.0);
    // 1-arg `observe` is Histogram::observe, not the registry.
    h.observe(0.5);
    // 1-arg `sample` is a PRNG draw, not the registry.
    let _ = dist.sample(rng);
}
