//! Fixture: seed-provenance near-misses — every stream derives from the
//! RunSpec seed through salts and `splitmix64` expansion, so L13 has
//! nothing to say. near-miss(L13) near-miss(L2)

const SALT_ARRIVALS: u64 = 0x9e37_79b9;

fn arrival_stream(spec: &RunSpec) -> Pcg32 {
    Pcg32::seed_from_u64(spec.seed ^ SALT_ARRIVALS)
}

fn expanded(seed: u64, salt: u64) -> Pcg32 {
    let mut state = seed ^ salt;
    let stream_key = splitmix64(&mut state);
    Pcg32::seed_from_u64(stream_key)
}
