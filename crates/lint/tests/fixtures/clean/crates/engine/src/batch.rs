//! Fixture: hot-loop near-misses in a kernel file — pre-sized buffers,
//! shared schema handles, and collects that sit outside any explicit
//! loop all stay silent under L14. near-miss(L14)

impl Batch {
    pub fn rechunk(&self, counts: &[usize]) -> Vec<Vec<u64>> {
        let mut out = Vec::with_capacity(counts.len());
        for &c in counts {
            out.push(Vec::with_capacity(c));
        }
        out
    }

    pub fn tag_all(&self, parts: &mut [Part]) {
        for p in parts {
            p.schema = self.schema.clone();
        }
    }

    pub fn widths(&self) -> Vec<usize> {
        self.columns.iter().map(|c| c.len()).collect()
    }

    // near-miss(L16): the checkout and its recycle balance in-fn.
    pub fn masked_total(&self, arena: &mut ScratchArena, n: usize) -> u64 {
        let mask = arena.checkout_mask(n);
        let total = mask.len() as u64;
        arena.recycle_mask(mask);
        total
    }
}
