//! Fixture: L7 near-misses — same two locks, but never a cycle.
//! near-miss(L7)

struct Stage {
    queue: Mutex<Vec<u64>>,
    done: Mutex<Vec<u64>>,
}

impl Stage {
    // Both paths acquire in the same global order: no cycle.
    fn forward(&self) {
        let q = self.queue.lock();
        let d = self.done.lock();
        d.push(q.len() as u64);
    }

    fn also_forward(&self) {
        let q = self.queue.lock();
        let d = self.done.lock();
        q.push(d.len() as u64);
    }

    // A statement-scoped temporary is released before the next
    // acquisition, so the reversed order here overlaps nothing.
    fn disjoint(&self) {
        *self.done.lock() += 1;
        let q = self.queue.lock();
        q.clear();
    }
}
