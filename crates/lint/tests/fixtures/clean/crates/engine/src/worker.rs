//! Fixture: L8 near-misses — Relaxed where it is harmless, and proper
//! orderings where the atomic really is shared. near-miss(L8)
//! near-miss(L6) — spawns go through the scope handle the blessed
//! executor passed in, never `std::thread` directly.

// Worker-local counter: only ever touched inside spawn closures, so
// Relaxed is fine (atomicity is all that is needed).
fn tally(s: &Scope) {
    let hits = AtomicUsize::new(0);
    s.spawn(|| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
}

// Shared flag with a proper release/acquire pair.
fn publish(s: &Scope) {
    let done = AtomicBool::new(false);
    s.spawn(|| {
        done.store(true, Ordering::Release);
    });
    while !done.load(Ordering::Acquire) {}
}
