//! Fixture: parallel-phase near-misses. near-miss(L9) — keyed draws in
//! the parallel phase, and a sequential draw that the parallel phase
//! never reaches. near-miss(L18) — the `_keyed` twin is exactly what
//! the rule asks for, so calling it stays silent.

pub fn execute_task_buffered(faults: &FaultInjector, op: StoreOp, k: u64) -> u64 {
    // Keyed twin: the draw depends on operation identity, not schedule.
    let n = faults.store_attempts_keyed(op, op_key(k));
    combine_runs(left, right);
    n
}

// Sequential draws are fine on serial paths: nothing calls this from
// `execute_task_buffered`.
pub fn replay_serial(faults: &FaultInjector, op: StoreOp) -> u64 {
    faults.store_attempts(op)
}
