//! Fixture: L9 near-misses — keyed draws in the parallel phase, and a
//! sequential draw that the parallel phase never reaches.

pub fn execute_task_buffered(faults: &FaultInjector, op: StoreOp, k: u64) -> u64 {
    // Keyed twin: the draw depends on operation identity, not schedule.
    faults.store_attempts_keyed(op, op_key(k))
}

// Sequential draws are fine on serial paths: nothing calls this from
// `execute_task_buffered`.
pub fn replay_serial(faults: &FaultInjector, op: StoreOp) -> u64 {
    faults.store_attempts(op)
}
