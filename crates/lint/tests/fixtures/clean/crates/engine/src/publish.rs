//! Fixture: L17 near-misses — registry publication at the stage
//! barrier (not reachable from `execute_task_buffered`), and a
//! parallel-phase `merge` on a non-registry receiver (a kernel merge
//! pass). near-miss(L17)

// The barrier runs after the worker pool joins: nothing here is
// parallel-phase, so these registry writes ARE the blessed publication.
pub fn publish_barrier(ctx: &mut TaskCtx, shards: &[Shard]) {
    for shard in shards {
        ctx.telemetry.merge(shard);
        ctx.ledger.charge(Cat::Compute, shard.amount);
    }
}

// Reachable from the pool (exec.rs calls it), but `merge` on a sorted
// run is a kernel merge pass, not a registry publish: receiver
// sensitivity keeps it clean.
pub fn combine_runs(left: &mut Run, right: Run) {
    left.merge(right);
}
