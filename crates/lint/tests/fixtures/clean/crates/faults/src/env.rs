//! Fixture: L19 near-misses — a `pure(...)` contract that verifies:
//! keys derive from declared parameters, salt-named constants,
//! declared-`self` fields, and locals built from those; callees are
//! annotated or trusted intrinsics. near-miss(L19)

const SALT_DEMO: u64 = 0x517c_c1b7;

// cackle-lint: pure(seed, salt, key)
pub fn keyed(seed: u64, salt: u64, key: u64) -> u64 {
    let mut s = seed ^ salt ^ key;
    splitmix64(&mut s)
}

// cackle-lint: pure(self, seed, vm)
pub fn vm_traits(&self, seed: u64, vm: u64) -> u64 {
    let k = vm ^ self.generation;
    keyed(seed, SALT_DEMO, k)
}
