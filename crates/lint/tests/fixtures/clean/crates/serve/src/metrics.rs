//! Conforming serving-layer telemetry: blessed `serve.` / `tenant.`
//! prefixes, literal names only.

fn record(t: &Registry) {
    t.counter_add("serve.admitted_total", 1);
    t.counter_add("serve.rejected_total", 1);
    t.gauge_set("tenant.active", 2.0);
    t.sample("serve.queue_depth", 1000, 4.0);
}
