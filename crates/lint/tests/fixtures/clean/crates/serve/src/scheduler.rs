//! Allocation-free serve dispatch loop: buffers sized before the loop.

fn drain(n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        out.push(i);
        i += 1;
    }
    out
}
