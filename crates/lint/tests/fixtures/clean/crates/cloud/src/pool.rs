//! Fixture: a clean cloud file — well-formed suppressions
//! (near-miss(SUP)), test-only panics, and lookalike identifiers that
//! must NOT be flagged (near-miss(L5)).

fn lookup(table: Option<u32>) -> u32 {
    table.unwrap_or_else(|| 0) // `unwrap_or_else` is not `unwrap`
}

fn documented() {
    // Instant::now and thread_rng in comments are invisible.
    let message = "never call Instant::now or panic! here";
    let _ = message;
}

fn allowed(slot: Option<u32>) -> u32 {
    slot.unwrap() // cackle-lint: allow(L5)
}

fn billed(ledger_total: f64) -> f64 {
    // `ledger_total` is not cost-named; arithmetic is fine.
    ledger_total * 2.0
}

fn bookkeeping(vm_cost: f64, pool_cost: f64) -> f64 {
    // Summing already-minted dollars is movement, not minting.
    vm_cost + pool_cost
}

fn settle(led: &Ledger, amount: f64) {
    // Charging a precomputed amount keeps the formula in Pricing.
    led.charge(Cat::Vm, amount);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let x: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| x.unwrap()).is_err());
    }
}
