//! Fixture: unit-of-measure near-misses that must stay silent — rates
//! (near-miss(L12)), same-unit sums (near-miss(L11)), cardinality
//! arithmetic, widening casts (near-miss(L15)), and an annotation
//! clearing a misleading name.

fn throughput(total_bytes: u64, elapsed_secs: u64) -> u64 {
    total_bytes / elapsed_secs
}

fn subtotal(vm_cost: f64, pool_cost: f64) -> f64 {
    vm_cost + pool_cost
}

fn bump(retry_count: u64) -> u64 {
    retry_count + 1
}

fn widen(payload_bytes: u64) -> f64 {
    payload_bytes as f64
}

fn slot_index(retry_count: u64) -> u32 {
    retry_count as u32
}

fn masked() -> u32 {
    let rows_mask = bits(); // cackle-lint: unit(none)
    rows_mask as u32
}
