//! Fix fixture: L18 keyed-twin substitution — the sequential draw is
//! renamed to its `_keyed` twin and gains a placeholder key argument.

pub fn execute_task_buffered(faults: &FaultInjector, op: StoreOp) -> u64 {
    faults.store_attempts_keyed(op, op_key(b"TODO: stable operation identity"))
}
