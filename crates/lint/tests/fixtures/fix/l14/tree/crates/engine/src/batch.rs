//! Fix fixture: L14 reuse-buffer — the unsized initializer feeding a
//! hot-loop `.push` gains a `with_capacity` shape (capacity TODO).

pub fn gather(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        out.push(i);
        i += 1;
    }
    out
}
