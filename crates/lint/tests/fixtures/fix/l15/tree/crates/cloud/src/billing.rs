//! Fix fixture: L15 cast widening — the narrowing target type widens
//! in place; everything else is untouched.

fn total(cost_usd: f64) -> f32 {
    cost_usd as f32
}
