//! Fixture: deliberate L1 / L4 / L5 violations on a cloud hot path.

fn bill(seconds: f64, vm_price: f64) -> f64 {
    let started = Instant::now(); // L1: host clock
    let _ = started;
    let cost = seconds * vm_price; // L4: `vm_price` beside `*`
    cost * 2.0 // L4: `cost` beside `*`
}

fn take(slot: Option<u32>) -> u32 {
    slot.unwrap() // L5: panic path
}

fn expected(slot: Option<u32>) -> u32 {
    slot.expect("slot") // L5: panic path
}

fn boom() {
    panic!("hot-path panic"); // L5
}
