//! The machine-applicable fix engine: byte-span edits, conflict
//! detection, application, and unified-diff rendering for `--dry-run`.
//!
//! Rules attach [`Edit`]s to findings when the rewrite is mechanical
//! (L14 `Vec::with_capacity`, L15 cast widening, L18 keyed-twin
//! substitution). Spans are byte offsets into the *original* source —
//! the lexer records them per token — so edits compose only if they do
//! not overlap. The engine sorts, rejects overlapping spans as a
//! conflict (never silently picks a winner), and applies back-to-front
//! so earlier offsets stay valid.
//!
//! Idempotence is structural, not tracked: an applied fix removes the
//! finding that produced it, so a second `cackle-lint fix` run sees no
//! fixable findings and produces an empty diff. ci.sh verifies exactly
//! that.

use std::fmt;

/// One byte-span rewrite: replace `source[start..end)` with `text`.
/// `start == end` is a pure insertion.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edit {
    /// Byte offset of the first replaced byte.
    pub start: usize,
    /// Byte offset one past the last replaced byte (`>= start`).
    pub end: usize,
    /// Replacement text.
    pub text: String,
}

impl Edit {
    /// Replace the span `[start, end)` with `text`.
    pub fn replace(start: usize, end: usize, text: impl Into<String>) -> Edit {
        Edit {
            start,
            end,
            text: text.into(),
        }
    }

    /// Insert `text` at byte offset `at`.
    pub fn insert(at: usize, text: impl Into<String>) -> Edit {
        Edit::replace(at, at, text)
    }
}

/// Why a set of edits could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixError {
    /// Two edits claim overlapping byte ranges. Applying either would
    /// invalidate the other's span, so neither is applied.
    Overlap { first: Edit, second: Edit },
    /// An edit's span exceeds the source length or splits a UTF-8
    /// character — it was built against different text.
    OutOfBounds(Edit),
}

impl fmt::Display for FixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixError::Overlap { first, second } => write!(
                f,
                "conflicting fixes: [{}, {}) overlaps [{}, {})",
                first.start, first.end, second.start, second.end
            ),
            FixError::OutOfBounds(e) => write!(
                f,
                "fix span [{}, {}) is outside the source (or splits a UTF-8 char)",
                e.start, e.end
            ),
        }
    }
}

/// Apply `edits` to `source`, returning the rewritten text.
///
/// Edits are sorted by `(start, end, text)` first, so the result is
/// independent of input order; overlapping spans are a [`FixError`],
/// not a silent last-writer-wins. Touching spans (`a.end == b.start`,
/// including equal-offset insertions) are fine and compose in sorted
/// order.
pub fn apply(source: &str, edits: &[Edit]) -> Result<String, FixError> {
    let mut sorted: Vec<&Edit> = edits.iter().collect();
    sorted.sort();
    sorted.dedup();
    for e in &sorted {
        let ok = e.start <= e.end
            && e.end <= source.len()
            && source.is_char_boundary(e.start)
            && source.is_char_boundary(e.end);
        if !ok {
            return Err(FixError::OutOfBounds((*e).clone()));
        }
    }
    for pair in sorted.windows(2) {
        if pair[0].end > pair[1].start {
            return Err(FixError::Overlap {
                first: pair[0].clone(),
                second: pair[1].clone(),
            });
        }
    }
    let mut out = source.to_string();
    for e in sorted.iter().rev() {
        out.replace_range(e.start..e.end, &e.text);
    }
    Ok(out)
}

/// Render a unified diff between `before` and `after` for one file:
/// `--- a/path` / `+++ b/path` headers plus a single hunk covering the
/// changed region with up to 3 lines of context. Returns the empty
/// string when the texts are identical — the dry-run idempotence check
/// compares exactly this output.
pub fn unified_diff(path: &str, before: &str, after: &str) -> String {
    if before == after {
        return String::new();
    }
    let a: Vec<&str> = before.lines().collect();
    let b: Vec<&str> = after.lines().collect();
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < a.len().saturating_sub(prefix)
        && suffix < b.len().saturating_sub(prefix)
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    const CTX: usize = 3;
    let ctx_start = prefix.saturating_sub(CTX);
    let ctx_end_a = (a.len() - suffix + CTX).min(a.len());
    let ctx_end_b = (b.len() - suffix + CTX).min(b.len());
    let a_count = ctx_end_a - ctx_start;
    let b_count = ctx_end_b - ctx_start;

    let mut out = String::new();
    out.push_str(&format!("--- a/{path}\n+++ b/{path}\n"));
    out.push_str(&format!(
        "@@ -{},{} +{},{} @@\n",
        ctx_start + 1,
        a_count,
        ctx_start + 1,
        b_count
    ));
    for line in &a[ctx_start..prefix] {
        out.push_str(&format!(" {line}\n"));
    }
    for line in &a[prefix..a.len() - suffix] {
        out.push_str(&format!("-{line}\n"));
    }
    for line in &b[prefix..b.len() - suffix] {
        out.push_str(&format!("+{line}\n"));
    }
    for line in &a[a.len() - suffix..ctx_end_a] {
        out.push_str(&format!(" {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_order_independent_and_back_to_front() {
        let src = "let n = faults.store_attempts(op);";
        let e1 = Edit::replace(15, 29, "store_attempts_keyed".to_string());
        let e2 = Edit::insert(32, ", key".to_string());
        let forward = apply(src, &[e1.clone(), e2.clone()]).unwrap();
        let backward = apply(src, &[e2, e1]).unwrap();
        assert_eq!(forward, "let n = faults.store_attempts_keyed(op, key);");
        assert_eq!(forward, backward);
    }

    #[test]
    fn overlapping_spans_are_a_conflict_not_a_winner() {
        let src = "abcdef";
        let e1 = Edit::replace(1, 4, "X".to_string());
        let e2 = Edit::replace(3, 5, "Y".to_string());
        let err = apply(src, &[e1.clone(), e2.clone()]).unwrap_err();
        match err {
            FixError::Overlap { first, second } => {
                assert_eq!(first, e1);
                assert_eq!(second, e2);
            }
            other => panic!("expected overlap, got {other:?}"),
        }
        // Touching spans compose.
        let ok = apply(
            src,
            &[
                Edit::replace(1, 3, "X".to_string()),
                Edit::replace(3, 5, "Y".to_string()),
            ],
        )
        .unwrap();
        assert_eq!(ok, "aXYf");
    }

    #[test]
    fn duplicate_edits_collapse_and_bounds_are_checked() {
        let src = "ab";
        let e = Edit::insert(1, "X".to_string());
        assert_eq!(apply(src, &[e.clone(), e]).unwrap(), "aXb");
        let oob = Edit::replace(1, 9, String::new());
        assert!(matches!(
            apply(src, &[oob]).unwrap_err(),
            FixError::OutOfBounds(_)
        ));
        // A span that splits a UTF-8 char is out of bounds too.
        let multi = "é";
        let split = Edit::replace(1, 2, String::new());
        assert!(matches!(
            apply(multi, &[split]).unwrap_err(),
            FixError::OutOfBounds(_)
        ));
    }

    #[test]
    fn unified_diff_shape_and_empty_on_identical() {
        let before = "a\nb\nc\nd\ne\nf\ng\nh\n";
        let after = "a\nb\nc\nd\nE\nf\ng\nh\n";
        let d = unified_diff("x/y.rs", before, after);
        assert_eq!(
            d,
            "--- a/x/y.rs\n+++ b/x/y.rs\n@@ -2,7 +2,7 @@\n b\n c\n d\n-e\n+E\n f\n g\n h\n"
        );
        assert_eq!(unified_diff("x/y.rs", before, before), "");
    }

    #[test]
    fn unified_diff_handles_edits_at_file_edges() {
        let d = unified_diff("p.rs", "a\nb\n", "X\nb\n");
        assert_eq!(d, "--- a/p.rs\n+++ b/p.rs\n@@ -1,2 +1,2 @@\n-a\n+X\n b\n");
        let tail = unified_diff("p.rs", "a\nb\n", "a\nb\nc\n");
        assert_eq!(
            tail,
            "--- a/p.rs\n+++ b/p.rs\n@@ -1,2 +1,3 @@\n a\n b\n+c\n"
        );
    }
}
