//! The `cackle-lint` command-line driver.
//!
//! ```text
//! cackle-lint [ROOT] [--baseline FILE] [--format text|json]
//!             [--timings real|none] [--explain LX] [--list-rules]
//!             [--include-tests] [--update-baseline]
//! cackle-lint fix [ROOT] [--dry-run] [--include-tests]
//! ```
//!
//! Lints the workspace at ROOT (default: the current directory),
//! compares against the baseline file (default: `ROOT/lint-baseline.txt`;
//! a missing file means an empty baseline), prints findings in the
//! chosen format, and exits:
//!
//! * `0` — clean, or all findings are covered by the baseline;
//! * `1` — findings beyond the baseline (new violations);
//! * `2` — usage or I/O error (bad flag, bad `--format`/`--explain`
//!   argument, unreadable root or baseline, conflicting fixes);
//! * `3` — no new violations, but the baseline has stale entries (debt
//!   that was paid down without trimming the file).
//!
//! `--format json` emits one deterministic document (fixed key order,
//! sorted findings) with file / line / rule / severity / baselined /
//! message / suggestion / fixable per finding plus stale-baseline
//! entries, per-rule counts, and a `meta` block (file count, per-rule
//! counts, per-phase wall-clock timings, parse-pool parallelism).
//! `--timings none` zeroes every machine-dependent meta field — phase
//! `ms` values and the parallel block, worker count included — so the
//! document is byte-identical across runs and machines at the source
//! (CI used to normalize with `sed`). `--explain LX` prints a rule's
//! long-form description and exits; `--list-rules` prints one
//! `id<TAB>summary` line per registered rule (machine-readable — CI
//! drives its `--explain` smoke loop from it). `--include-tests` also
//! lints `tests/` and `benches/` directories against the restricted
//! rule set (L2, L10).
//!
//! `--update-baseline` deterministically rewrites the baseline file
//! from the current findings (sorted `<lint-id> <path> <count>` lines
//! under the standard header — byte-stable for identical findings),
//! then proceeds with the normal diff against the rewritten file. The
//! exit semantics are unchanged: a fresh baseline covers everything,
//! so the usual result is 0 — except SUP findings (malformed
//! suppressions / annotations), which are never baselinable and still
//! exit 1.
//!
//! `cackle-lint fix` applies the machine-readable edits attached to
//! fixable findings (L14 capacity hints, L15 cast widening, L18
//! keyed-twin substitution). Edits are byte spans into the original
//! source; overlapping spans within a file are a conflict — nothing in
//! that file is rewritten, and the exit code is 2. `--dry-run` prints
//! a unified diff per file (path-sorted, deterministic) instead of
//! writing. Applying fixes is idempotent by construction: an applied
//! fix removes the finding that produced it, so a second run finds
//! nothing fixable and `--dry-run` prints nothing — ci.sh verifies
//! exactly that.

use cackle_lint::{
    diff_baseline, explain, fix, lint_root_with_meta, parse_baseline, render_baseline, render_json,
    rules, Baseline, LintId,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cackle-lint [ROOT] [--baseline FILE] [--format text|json] \
                     [--timings real|none] [--explain LX] [--list-rules] \
                     [--include-tests] [--update-baseline]\n\
                     \x20      cackle-lint fix [ROOT] [--dry-run] [--include-tests]";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut include_tests = false;
    let mut update_baseline = false;
    let mut zero_timings = false;
    let mut fix_mode = false;
    let mut dry_run = false;
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("fix") {
        args.next();
        fix_mode = true;
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("cackle-lint: --baseline needs a file argument");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(p));
            }
            "--format" => {
                let Some(f) = args.next() else {
                    eprintln!("cackle-lint: --format needs an argument (text|json)");
                    return ExitCode::from(2);
                };
                format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        eprintln!("cackle-lint: unknown format `{other}` (expected text|json)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--timings" => {
                let Some(t) = args.next() else {
                    eprintln!("cackle-lint: --timings needs an argument (real|none)");
                    return ExitCode::from(2);
                };
                zero_timings = match t.as_str() {
                    "real" => false,
                    "none" => true,
                    other => {
                        eprintln!("cackle-lint: unknown timings `{other}` (expected real|none)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--explain" => {
                let Some(id_str) = args.next() else {
                    eprintln!("cackle-lint: --explain needs a rule id (L1..L19, SUP)");
                    return ExitCode::from(2);
                };
                // SUP is not LintId::parse-able (it may not appear in
                // baselines or allow lists) but IS explainable.
                let id = if id_str.eq_ignore_ascii_case("SUP") {
                    Some(LintId::Sup)
                } else {
                    LintId::parse(&id_str)
                };
                let Some(id) = id else {
                    eprintln!("cackle-lint: unknown rule id `{id_str}` (expected L1..L19 or SUP)");
                    return ExitCode::from(2);
                };
                println!("{}", explain(id));
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for id in LintId::ALL {
                    if let Some(s) = rules::summary(id) {
                        println!("{id}\t{s}");
                    }
                }
                return ExitCode::SUCCESS;
            }
            "--include-tests" => include_tests = true,
            "--update-baseline" => update_baseline = true,
            "--dry-run" if fix_mode => dry_run = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("cackle-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => root = Some(PathBuf::from(a)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let (findings, mut meta) = match lint_root_with_meta(&root, include_tests) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cackle-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if zero_timings {
        meta.zero_timings();
    }

    if fix_mode {
        return run_fix(&root, &findings, dry_run);
    }

    // --update-baseline rewrites the file from the findings, then the
    // normal diff runs against the rewritten content — so the exit code
    // still reflects reality (SUP findings are not baselinable).
    if update_baseline {
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("cackle-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cackle-lint: wrote {} baseline entrie(s) to {}",
            text.lines().filter(|l| !l.starts_with('#')).count(),
            baseline_path.display()
        );
    }

    let baseline: Baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cackle-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::new(),
        Err(e) => {
            eprintln!("cackle-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let (new_violations, stale) = diff_baseline(&findings, &baseline);

    match format {
        Format::Json => {
            print!("{}", render_json(&findings, &new_violations, &stale, &meta));
        }
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            for s in &stale {
                eprintln!("cackle-lint: stale baseline entry: {s}");
            }
        }
    }

    if !new_violations.is_empty() {
        eprintln!(
            "cackle-lint: {} new violation(s) beyond the baseline",
            new_violations.len()
        );
        ExitCode::FAILURE
    } else if !stale.is_empty() {
        eprintln!(
            "cackle-lint: {} stale baseline entrie(s): trim lint-baseline.txt",
            stale.len()
        );
        ExitCode::from(3)
    } else {
        eprintln!(
            "cackle-lint: ok ({} finding(s), all baselined)",
            findings.len()
        );
        ExitCode::SUCCESS
    }
}

/// Apply (or preview) every fixable finding's edits, grouped per file.
/// A conflict in any file rewrites nothing and exits 2 — a half-fixed
/// tree is worse than a diagnosed one.
fn run_fix(root: &std::path::Path, findings: &[cackle_lint::Finding], dry_run: bool) -> ExitCode {
    let mut by_file: BTreeMap<&str, Vec<fix::Edit>> = BTreeMap::new();
    let mut fixable = 0usize;
    for f in findings {
        if f.fixable() {
            fixable += 1;
            by_file
                .entry(f.path.as_str())
                .or_default()
                .extend(f.fix.iter().cloned());
        }
    }

    // Plan everything before writing anything: conflicts abort whole.
    let mut planned: Vec<(&str, PathBuf, String, String)> = Vec::new();
    for (path, edits) in &by_file {
        let abs = root.join(path);
        let before = match std::fs::read_to_string(&abs) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cackle-lint: {}: {e}", abs.display());
                return ExitCode::from(2);
            }
        };
        let after = match fix::apply(&before, edits) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cackle-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        planned.push((path, abs, before, after));
    }

    for (path, abs, before, after) in &planned {
        if dry_run {
            print!("{}", fix::unified_diff(path, before, after));
        } else if let Err(e) = std::fs::write(abs, after) {
            eprintln!("cackle-lint: {}: {e}", abs.display());
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "cackle-lint: {} fixable finding(s) in {} file(s){}",
        fixable,
        planned.len(),
        if dry_run { " (dry run)" } else { "" }
    );
    ExitCode::SUCCESS
}
