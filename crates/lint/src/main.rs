//! The `cackle-lint` command-line driver.
//!
//! ```text
//! cackle-lint [ROOT] [--baseline FILE]
//! ```
//!
//! Lints the workspace at ROOT (default: the current directory),
//! compares against the baseline file (default: `ROOT/lint-baseline.txt`;
//! a missing file means an empty baseline), prints every finding as
//! `file:line lint-id message`, and exits:
//!
//! * `0` — clean, or all findings are covered by the baseline;
//! * `1` — findings beyond the baseline (new violations);
//! * `2` — usage or I/O error.

use cackle_lint::{diff_baseline, lint_root, parse_baseline, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("cackle-lint: --baseline needs a file argument");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                eprintln!("usage: cackle-lint [ROOT] [--baseline FILE]");
                return ExitCode::SUCCESS;
            }
            _ => root = PathBuf::from(a),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let baseline: Baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cackle-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::new(),
        Err(e) => {
            eprintln!("cackle-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let findings = match lint_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cackle-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let (new_violations, stale) = diff_baseline(&findings, &baseline);
    for f in &findings {
        println!("{f}");
    }
    for s in &stale {
        eprintln!("cackle-lint: stale baseline entry: {s}");
    }
    if new_violations.is_empty() {
        eprintln!(
            "cackle-lint: ok ({} finding(s), {} baselined)",
            findings.len(),
            findings.len() - new_violations.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "cackle-lint: {} new violation(s) beyond the baseline",
            new_violations.len()
        );
        ExitCode::FAILURE
    }
}
