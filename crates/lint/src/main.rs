//! The `cackle-lint` command-line driver.
//!
//! ```text
//! cackle-lint [ROOT] [--baseline FILE] [--format text|json]
//!             [--explain LX] [--include-tests] [--update-baseline]
//! ```
//!
//! Lints the workspace at ROOT (default: the current directory),
//! compares against the baseline file (default: `ROOT/lint-baseline.txt`;
//! a missing file means an empty baseline), prints findings in the
//! chosen format, and exits:
//!
//! * `0` — clean, or all findings are covered by the baseline;
//! * `1` — findings beyond the baseline (new violations);
//! * `2` — usage or I/O error (bad flag, bad `--format`/`--explain`
//!   argument, unreadable root or baseline);
//! * `3` — no new violations, but the baseline has stale entries (debt
//!   that was paid down without trimming the file).
//!
//! `--format json` emits one deterministic document (fixed key order,
//! sorted findings — byte-identical across runs except `meta` phase
//! timings) with file / line / rule / severity / baselined / message /
//! suggestion per finding plus stale-baseline entries, per-rule counts,
//! and a `meta` block (file count, per-rule counts, per-phase wall-clock
//! timings). `--explain LX` prints a rule's long-form description and
//! exits. `--include-tests` also lints `tests/` and `benches/`
//! directories against the restricted rule set (L2, L10).
//!
//! `--update-baseline` deterministically rewrites the baseline file
//! from the current findings (sorted `<lint-id> <path> <count>` lines
//! under the standard header — byte-stable for identical findings),
//! then proceeds with the normal diff against the rewritten file. The
//! exit semantics are unchanged: a fresh baseline covers everything,
//! so the usual result is 0 — except SUP findings (malformed
//! suppressions / unit annotations), which are never baselinable and
//! still exit 1.

use cackle_lint::{
    diff_baseline, explain, lint_root_with_meta, parse_baseline, render_baseline, render_json,
    Baseline, LintId,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cackle-lint [ROOT] [--baseline FILE] [--format text|json] \
                     [--explain LX] [--include-tests] [--update-baseline]";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut include_tests = false;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("cackle-lint: --baseline needs a file argument");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(p));
            }
            "--format" => {
                let Some(f) = args.next() else {
                    eprintln!("cackle-lint: --format needs an argument (text|json)");
                    return ExitCode::from(2);
                };
                format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => {
                        eprintln!("cackle-lint: unknown format `{other}` (expected text|json)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--explain" => {
                let Some(id_str) = args.next() else {
                    eprintln!("cackle-lint: --explain needs a rule id (L1..L15, SUP)");
                    return ExitCode::from(2);
                };
                // SUP is not LintId::parse-able (it may not appear in
                // baselines or allow lists) but IS explainable.
                let id = if id_str.eq_ignore_ascii_case("SUP") {
                    Some(LintId::Sup)
                } else {
                    LintId::parse(&id_str)
                };
                let Some(id) = id else {
                    eprintln!("cackle-lint: unknown rule id `{id_str}` (expected L1..L15 or SUP)");
                    return ExitCode::from(2);
                };
                println!("{}", explain(id));
                return ExitCode::SUCCESS;
            }
            "--include-tests" => include_tests = true,
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("cackle-lint: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => root = PathBuf::from(a),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let (findings, meta) = match lint_root_with_meta(&root, include_tests) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cackle-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    // --update-baseline rewrites the file from the findings, then the
    // normal diff runs against the rewritten content — so the exit code
    // still reflects reality (SUP findings are not baselinable).
    if update_baseline {
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("cackle-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cackle-lint: wrote {} baseline entrie(s) to {}",
            text.lines().filter(|l| !l.starts_with('#')).count(),
            baseline_path.display()
        );
    }

    let baseline: Baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cackle-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::new(),
        Err(e) => {
            eprintln!("cackle-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let (new_violations, stale) = diff_baseline(&findings, &baseline);

    match format {
        Format::Json => {
            print!("{}", render_json(&findings, &new_violations, &stale, &meta));
        }
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            for s in &stale {
                eprintln!("cackle-lint: stale baseline entry: {s}");
            }
        }
    }

    if !new_violations.is_empty() {
        eprintln!(
            "cackle-lint: {} new violation(s) beyond the baseline",
            new_violations.len()
        );
        ExitCode::FAILURE
    } else if !stale.is_empty() {
        eprintln!(
            "cackle-lint: {} stale baseline entrie(s): trim lint-baseline.txt",
            stale.len()
        );
        ExitCode::from(3)
    } else {
        eprintln!(
            "cackle-lint: ok ({} finding(s), all baselined)",
            findings.len()
        );
        ExitCode::SUCCESS
    }
}
