//! A minimal Rust lexer for the lint analyzer.
//!
//! Produces identifier / number / punctuation / string tokens with
//! 1-based line numbers. Comments (line and nested block) and char
//! literals are stripped entirely — they can never produce a token,
//! which is what makes the rules immune to matches inside documentation
//! or message text. String literals (plain, raw, byte, raw-byte) are
//! preserved as [`TokKind::Str`] tokens whose `text` is the literal's
//! *content* (no quotes, no `r#` decoration, escapes left as written):
//! the telemetry-schema rule (L10) has to read metric-name literals.
//! Rules that compare token text therefore must check `kind` — a string
//! containing `"+"` is not the `+` operator. Lifetimes (`'a`) are
//! distinguished from char literals and dropped.
//!
//! This is deliberately NOT a full Rust lexer: anything the rules don't
//! need (float-suffix edge cases, shebangs, frontmatter) is treated as
//! opaque punctuation. The requirements are that identifier boundaries
//! are exact, comment content is invisible, and string content is
//! visible only as an atomic `Str` token.

/// Token categories the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (value not interpreted).
    Number,
    /// Punctuation; multi-char operators (`::`, `==`, `->`, `+=`, ...)
    /// arrive as a single token.
    Punct,
    /// String literal (plain, raw, byte, or raw-byte); `text` holds the
    /// content between the quotes, escapes unprocessed.
    Str,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text (for `Str`, the literal's content).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Category.
    pub kind: TokKind,
    /// Half-open byte range `[start, end)` of the token in the source.
    /// For `Str` this spans the *whole literal* — prefix (`b`, `r#...`),
    /// quotes and all — so the fix engine can splice around it safely.
    pub span: (usize, usize),
}

impl Token {
    /// `text` if this token is an identifier, else `""`.
    pub fn ident(&self) -> &str {
        if self.kind == TokKind::Ident {
            &self.text
        } else {
            ""
        }
    }

    /// `text` if this token is punctuation, else `""`.
    pub fn punct(&self) -> &str {
        if self.kind == TokKind::Punct {
            &self.text
        } else {
            ""
        }
    }
}

/// Multi-character operators merged into one token, longest first.
const MULTI_OPS: [&str; 18] = [
    "..=", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "->", "=>", "+=", "-=", "*=", "/=", "%=",
    "&&", "||", "..",
];

/// Lex `source` into tokens, stripping comments and chars, keeping
/// string literals as atomic [`TokKind::Str`] tokens.
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();
    // The lexer walks char indices; spans are byte offsets. Prefix-sum
    // the UTF-8 widths once so any char index converts in O(1).
    let mut byte_of: Vec<usize> = Vec::with_capacity(n + 1);
    let mut off = 0;
    for &c in &chars {
        byte_of.push(off);
        off += c.len_utf8();
    }
    byte_of.push(off);
    // Helpers like `skip_quoted_body` may report an end index one past
    // `n` at EOF (a trailing escape consumes two chars); clamp.
    let span = |a: usize, b: usize| (byte_of[a.min(n)], byte_of[b.min(n)]);

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (also doc comments `///`, `//!`).
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            // Nested block comment.
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            // Byte-char literal `b'x'` / `b'\n'` — without this, the `b`
            // would leak as a fabricated identifier token.
            'b' if i + 1 < n && chars[i + 1] == '\'' => {
                let start_line = line;
                i = skip_char_literal(&chars, i + 1, &mut line);
                let _ = start_line;
            }
            // Raw / byte / raw-byte / plain strings starting at r, b, br.
            'r' | 'b' if starts_string(&chars, i) => {
                let start_line = line;
                let (end, content) = take_string(&chars, i, &mut line);
                toks.push(Token {
                    text: content,
                    line: start_line,
                    kind: TokKind::Str,
                    span: span(i, end),
                });
                i = end;
            }
            '"' => {
                let start_line = line;
                let end = skip_quoted_body(&chars, i + 1, &mut line, '"');
                // Drop the closing quote if the literal terminated.
                let content_end = if end > i + 1 && end <= n && chars[end - 1] == '"' {
                    end - 1
                } else {
                    end.min(n)
                };
                toks.push(Token {
                    text: chars[i + 1..content_end].iter().collect(),
                    line: start_line,
                    kind: TokKind::Str,
                    span: span(i, end),
                });
                i = end;
            }
            // Char literal vs lifetime.
            '\'' => {
                if is_char_literal(&chars, i) {
                    i = skip_char_literal(&chars, i, &mut line);
                } else {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                    kind: TokKind::Ident,
                    span: span(start, i),
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                    // `1..10` — don't swallow a range operator.
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                    // Exponent sign: `1e-3`, `2.5E+7`.
                    if i < n
                        && (chars[i] == '+' || chars[i] == '-')
                        && matches!(chars[i - 1], 'e' | 'E')
                    {
                        i += 1;
                    }
                }
                toks.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                    kind: TokKind::Number,
                    span: span(start, i),
                });
            }
            _ => {
                // Punctuation: try multi-char operators longest-first.
                let mut matched = false;
                for op in MULTI_OPS {
                    let len = op.len();
                    if i + len <= n && chars[i..i + len].iter().collect::<String>() == op {
                        toks.push(Token {
                            text: op.to_string(),
                            line,
                            kind: TokKind::Punct,
                            span: span(i, i + len),
                        });
                        i += len;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    toks.push(Token {
                        text: c.to_string(),
                        line,
                        kind: TokKind::Punct,
                        span: span(i, i + 1),
                    });
                    i += 1;
                }
            }
        }
    }
    toks
}

/// Does a string literal start at `i` (which holds `r` or `b`)?
/// Covers `r"`, `r#"`, `b"`, `br"`, `br#"`. (`rb` is not valid Rust;
/// `r#ident` raw identifiers fail the final quote check.)
fn starts_string(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '"' {
            return true; // b"..."
        }
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        while j < n && chars[j] == '#' {
            j += 1;
        }
        return j < n && chars[j] == '"';
    }
    false
}

/// Consume the string literal starting at `i` (`r`, `b`, or `br` form),
/// returning `(index just past it, content between the quotes)`.
fn take_string(chars: &[char], i: usize, line: &mut usize) -> (usize, String) {
    let n = chars.len();
    let mut j = i;
    let mut raw = false;
    if j < n && chars[j] == 'b' {
        j += 1;
    }
    if j < n && chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && chars[j] == '"');
    j += 1; // past the opening quote
    let body_start = j;
    if raw {
        // Ends at `"` followed by exactly `hashes` hash marks. The
        // terminator must be fully present: `r##"x"#` at end of input is
        // unterminated, not closed by a short hash run.
        while j < n {
            if chars[j] == '\n' {
                *line += 1;
                j += 1;
            } else if chars[j] == '"'
                && j + hashes < n
                && chars[j + 1..=j + hashes].iter().all(|&c| c == '#')
            {
                let content = chars[body_start..j].iter().collect();
                return (j + 1 + hashes, content);
            } else {
                j += 1;
            }
        }
        (j, chars[body_start..j.min(n)].iter().collect())
    } else {
        let end = skip_quoted_body(chars, j, line, '"');
        let content_end = if end > body_start && end <= n && chars[end - 1] == '"' {
            end - 1
        } else {
            end.min(n)
        };
        (end, chars[body_start..content_end].iter().collect())
    }
}

/// Skip past the body of an escaped literal, returning the index just
/// past the closing `quote`. Escaped newlines (`\` at end of line) keep
/// the line counter accurate.
fn skip_quoted_body(chars: &[char], mut j: usize, line: &mut usize, quote: char) -> usize {
    let n = chars.len();
    while j < n {
        match chars[j] {
            '\\' => {
                if j + 1 < n && chars[j + 1] == '\n' {
                    *line += 1;
                }
                j += 2;
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            c if c == quote => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (a lifetime). A
/// char literal has a closing quote after one (possibly escaped)
/// character.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    if i + 1 >= n {
        return false;
    }
    if chars[i + 1] == '\\' {
        return true; // `'\...` is always a char escape
    }
    // `'X'` — exactly one char then a quote.
    i + 2 < n && chars[i + 2] == '\''
}

fn skip_char_literal(chars: &[char], i: usize, line: &mut usize) -> usize {
    skip_quoted_body(chars, i + 1, line, '\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Str)
            .map(|t| t.text)
            .collect()
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_and_puncts() {
        assert_eq!(
            texts("let x = a::b(1);"),
            ["let", "x", "=", "a", "::", "b", "(", "1", ")", ";"]
        );
    }

    #[test]
    fn comments_invisible() {
        assert_eq!(
            texts("a // Instant::now\nb /* thread_rng /* nested */ */ c"),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn nested_block_comments_to_arbitrary_depth() {
        assert_eq!(texts("a /* 1 /* 2 /* 3 */ 2 */ 1 */ b"), ["a", "b"]);
        // An unterminated nested comment swallows the rest of the file.
        assert_eq!(texts("a /* /* */ still-in-comment"), ["a"]);
        // `*/` sequences inside the nesting arithmetic close one level.
        assert_eq!(texts("x /*/* inner */*/ y"), ["x", "y"]);
    }

    #[test]
    fn strings_are_atomic_tokens_not_identifier_soup() {
        let src = r#"f("Instant::now", 'x', "esc\"aped")"#;
        assert_eq!(texts(src), ["f", "(", ",", ",", ")"]);
        assert_eq!(strings(src), ["Instant::now", "esc\\\"aped"]);
    }

    #[test]
    fn raw_strings_capture_content_and_terminate_exactly() {
        assert_eq!(texts(r##"g(r#"raw "quoted" panic!"#)"##), ["g", "(", ")"]);
        assert_eq!(
            strings(r##"g(r#"raw "quoted" panic!"#)"##),
            [r#"raw "quoted" panic!"#]
        );
        // A quote followed by too few hashes does not terminate.
        assert_eq!(strings(r###"h(r##"a"#b"##)"###), [r##"a"#b"##]);
        // Unterminated raw string at EOF must not panic or loop.
        assert_eq!(texts("r##\"dangling\"#"), Vec::<String>::new());
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let byte_and_raw = "h(b\"bytes\", br#\"raw\"#)";
        assert_eq!(texts(byte_and_raw), ["h", "(", ",", ")"]);
        assert_eq!(strings(byte_and_raw), ["bytes", "raw"]);
        // `b'x'` is a byte-char literal, not a `b` identifier + char:
        // the `b` must not leak as a fabricated identifier token.
        assert_eq!(texts("m(b'x', b'\\n')"), ["m", "(", ",", ")"]);
    }

    #[test]
    fn lifetimes_not_chars() {
        assert_eq!(
            texts("fn f<'a>(x: &'a str) -> char { 'x' }"),
            ["fn", "f", "<", ">", "(", "x", ":", "&", "str", ")", "->", "char", "{", "}"]
        );
    }

    #[test]
    fn escaped_char_literals() {
        assert_eq!(
            texts(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';"),
            ["let", "c", "=", ";", "let", "q", "=", ";", "let", "u", "=", ";"]
        );
    }

    #[test]
    fn multi_char_ops_single_tokens() {
        assert_eq!(
            texts("a += b; c == d; e -> f; 0..=9"),
            ["a", "+=", "b", ";", "c", "==", "d", ";", "e", "->", "f", ";", "0", "..=", "9"]
        );
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(
            texts("1.5e-3 + 2E+7 - 0xff_u32"),
            ["1.5e-3", "+", "2E+7", "-", "0xff_u32"]
        );
    }

    #[test]
    fn string_content_never_matches_as_punct_or_ident() {
        // `"+"` is a Str token: rules comparing neighbours by kind must
        // not see it as the `+` operator next to `cost`.
        let toks = lex(r#"record(cost, "+")"#);
        let plus = toks.iter().find(|t| t.text == "+").unwrap();
        assert_eq!(plus.kind, TokKind::Str);
        assert_eq!(plus.punct(), "");
        assert_eq!(plus.ident(), "");
    }

    #[test]
    fn spans_slice_the_source_back_out_exactly() {
        let src = "let x = a::b(1.5e-3, \"s\");";
        for t in lex(src) {
            let (a, b) = t.span;
            let slice = &src[a..b];
            match t.kind {
                // Str spans cover the whole literal, quotes included.
                TokKind::Str => assert_eq!(slice, format!("\"{}\"", t.text)),
                _ => assert_eq!(slice, t.text, "token {:?}", t),
            }
        }
    }

    #[test]
    fn spans_are_byte_offsets_even_after_multibyte_chars() {
        // 'é' is 2 bytes; a span computed in char indices would slice
        // mid-codepoint and panic (or return the wrong text).
        let src = "// café\nlet x = 1;";
        let toks = lex(src);
        for t in &toks {
            assert_eq!(&src[t.span.0..t.span.1], t.text);
        }
        assert_eq!(toks[0].text, "let");
    }

    #[test]
    fn raw_and_byte_string_spans_include_prefix_and_hashes() {
        let src = r###"f(br#"x"#, r##"y"##)"###;
        let strs: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(&src[strs[0].span.0..strs[0].span.1], r##"br#"x"#"##);
        assert_eq!(&src[strs[1].span.0..strs[1].span.1], r###"r##"y"##"###);
    }

    #[test]
    fn line_numbers_tracked_through_multiline_constructs() {
        let toks = lex("a\n/* c\nc */ b\n\"s\ns\" d");
        let lines: Vec<(String, usize)> = toks
            .into_iter()
            .filter(|t| t.kind != TokKind::Str)
            .map(|t| (t.text, t.line))
            .collect();
        assert_eq!(lines, [("a".into(), 1), ("b".into(), 3), ("d".into(), 5)]);
        // Escaped newline inside a string still advances the counter.
        let toks = lex("\"a\\\nb\" z");
        let z = toks.iter().find(|t| t.text == "z").unwrap();
        assert_eq!(z.line, 2);
        // Raw strings spanning lines advance it too.
        let toks = lex("r#\"x\ny\"# w");
        let w = toks.iter().find(|t| t.text == "w").unwrap();
        assert_eq!(w.line, 2);
    }
}
