//! A minimal Rust lexer for lexical linting.
//!
//! Produces identifier / number / punctuation tokens with 1-based line
//! numbers. Comments (line and nested block), string literals (plain,
//! raw, byte), and char literals are stripped entirely — they can never
//! produce a token, which is what makes the rules immune to matches
//! inside documentation or message text. Lifetimes (`'a`) are
//! distinguished from char literals and dropped too.
//!
//! This is deliberately NOT a full Rust lexer: anything the rules don't
//! need (float-suffix edge cases, shebangs, frontmatter) is treated as
//! opaque punctuation. The only requirements are that identifier
//! boundaries are exact and that string/comment content is invisible.

/// Token categories the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (value not interpreted).
    Number,
    /// Punctuation; multi-char operators (`::`, `==`, `->`, `+=`, ...)
    /// arrive as a single token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Category.
    pub kind: TokKind,
}

/// Multi-character operators merged into one token, longest first.
const MULTI_OPS: [&str; 18] = [
    "..=", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "->", "=>", "+=", "-=", "*=", "/=", "%=",
    "&&", "||", "..",
];

/// Lex `source` into tokens, stripping comments, strings, and chars.
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (also doc comments `///`, `//!`).
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            // Nested block comment.
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            // Raw / byte / plain strings starting at r, b, br.
            'r' | 'b' if starts_string(&chars, i) => {
                i = skip_string(&chars, i, &mut line);
            }
            '"' => {
                i = skip_plain_string(&chars, i, &mut line);
            }
            // Char literal vs lifetime.
            '\'' => {
                if is_char_literal(&chars, i) {
                    i = skip_char_literal(&chars, i, &mut line);
                } else {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                    kind: TokKind::Ident,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                    // `1..10` — don't swallow a range operator.
                    if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                    // Exponent sign: `1e-3`, `2.5E+7`.
                    if i < n
                        && (chars[i] == '+' || chars[i] == '-')
                        && matches!(chars[i - 1], 'e' | 'E')
                    {
                        i += 1;
                    }
                }
                toks.push(Token {
                    text: chars[start..i].iter().collect(),
                    line,
                    kind: TokKind::Number,
                });
            }
            _ => {
                // Punctuation: try multi-char operators longest-first.
                let mut matched = false;
                for op in MULTI_OPS {
                    let len = op.len();
                    if i + len <= n && chars[i..i + len].iter().collect::<String>() == op {
                        toks.push(Token {
                            text: op.to_string(),
                            line,
                            kind: TokKind::Punct,
                        });
                        i += len;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    toks.push(Token {
                        text: c.to_string(),
                        line,
                        kind: TokKind::Punct,
                    });
                    i += 1;
                }
            }
        }
    }
    toks
}

/// Does a string literal start at `i` (which holds `r` or `b`)?
/// Covers `r"`, `r#"`, `b"`, `br"`, `br#"`, `rb` is not valid Rust.
fn starts_string(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if j < n && chars[j] == '"' {
            return true; // b"..."
        }
    }
    if j < n && chars[j] == 'r' {
        j += 1;
        while j < n && chars[j] == '#' {
            j += 1;
        }
        return j < n && chars[j] == '"';
    }
    false
}

/// Skip the string literal starting at `i` (`r`, `b`, or `"` form),
/// returning the index just past it.
fn skip_string(chars: &[char], i: usize, line: &mut usize) -> usize {
    let n = chars.len();
    let mut j = i;
    let mut raw = false;
    if j < n && chars[j] == 'b' {
        j += 1;
    }
    if j < n && chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && chars[j] == '"');
    j += 1; // past the opening quote
    if raw {
        // Ends at `"` followed by `hashes` hash marks; no escapes.
        while j < n {
            if chars[j] == '\n' {
                *line += 1;
                j += 1;
            } else if chars[j] == '"' && chars[j + 1..].iter().take(hashes).all(|&c| c == '#') {
                return j + 1 + hashes;
            } else {
                j += 1;
            }
        }
        j
    } else {
        skip_quoted_body(chars, j, line, '"')
    }
}

fn skip_plain_string(chars: &[char], i: usize, line: &mut usize) -> usize {
    skip_quoted_body(chars, i + 1, line, '"')
}

/// Skip past the body of an escaped literal, returning the index just
/// past the closing `quote`.
fn skip_quoted_body(chars: &[char], mut j: usize, line: &mut usize, quote: char) -> usize {
    let n = chars.len();
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            c if c == quote => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Distinguish `'a'` / `'\n'` / `b'x'` (char literal) from `'a` (a
/// lifetime). A char literal has a closing quote after one (possibly
/// escaped) character.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    let n = chars.len();
    if i + 1 >= n {
        return false;
    }
    if chars[i + 1] == '\\' {
        return true; // `'\...` is always a char escape
    }
    // `'X'` — exactly one char then a quote.
    i + 2 < n && chars[i + 2] == '\''
}

fn skip_char_literal(chars: &[char], i: usize, line: &mut usize) -> usize {
    skip_quoted_body(chars, i + 1, line, '\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn identifiers_and_puncts() {
        assert_eq!(
            texts("let x = a::b(1);"),
            ["let", "x", "=", "a", "::", "b", "(", "1", ")", ";"]
        );
    }

    #[test]
    fn comments_invisible() {
        assert_eq!(
            texts("a // Instant::now\nb /* thread_rng /* nested */ */ c"),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn strings_invisible() {
        assert_eq!(
            texts(r#"f("Instant::now", 'x', "esc\"aped")"#),
            ["f", "(", ",", ",", ")"]
        );
        assert_eq!(texts(r##"g(r#"raw "quoted" panic!"#)"##), ["g", "(", ")"]);
        let byte_and_raw = "h(b\"bytes\", br#\"raw\"#)";
        assert_eq!(texts(byte_and_raw), ["h", "(", ",", ")"]);
    }

    #[test]
    fn lifetimes_not_chars() {
        assert_eq!(
            texts("fn f<'a>(x: &'a str) -> char { 'x' }"),
            ["fn", "f", "<", ">", "(", "x", ":", "&", "str", ")", "->", "char", "{", "}"]
        );
    }

    #[test]
    fn escaped_char_literals() {
        assert_eq!(
            texts(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';"),
            ["let", "c", "=", ";", "let", "q", "=", ";", "let", "u", "=", ";"]
        );
    }

    #[test]
    fn multi_char_ops_single_tokens() {
        assert_eq!(
            texts("a += b; c == d; e -> f; 0..=9"),
            ["a", "+=", "b", ";", "c", "==", "d", ";", "e", "->", "f", ";", "0", "..=", "9"]
        );
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(
            texts("1.5e-3 + 2E+7 - 0xff_u32"),
            ["1.5e-3", "+", "2E+7", "-", "0xff_u32"]
        );
    }

    #[test]
    fn line_numbers_tracked_through_multiline_constructs() {
        let toks = lex("a\n/* c\nc */ b\n\"s\ns\" d");
        let lines: Vec<(String, usize)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(lines, [("a".into(), 1), ("b".into(), 3), ("d".into(), 5)]);
    }
}
