//! L12 · unit-of-measure conformance.
//!
//! Quantities in this workspace carry one of five base units — usd,
//! seconds, bytes, rows, count — inferred by the dataflow layer from
//! naming conventions, API signatures, and `unit(...)` annotations.
//! Three checks:
//!
//! (a) additive / comparison operators (`+ - += -= < > <= >= ==`)
//!     whose operands carry two *different* known units — adding
//!     dollars to seconds is never bookkeeping;
//! (b) adding or subtracting a bare numeric literal on a *measured*
//!     quantity (usd / seconds / bytes): the constant deserves a named,
//!     unit-carrying binding (cardinalities are exempt — `rows + 1` is
//!     index arithmetic);
//! (c) a telemetry value argument whose unit contradicts the metric
//!     name's unit suffix (`observe("…_seconds", payload_bytes)`).
//!
//! Products and quotients are deliberately unchecked: a rate times a
//! duration is exactly what Pricing does, and this lattice has no rate
//! algebra. Escape hatches: `// cackle-lint: unit(...)` on the binding
//! (fixes the inference) or `allow(L12)` (accepts the arithmetic).

use super::RawFinding;
use crate::dataflow::{Flows, Operand};
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::units;
use crate::LintId;

const MIX_OPS: [&str; 9] = ["+", "-", "+=", "-=", "<", ">", "<=", ">=", "=="];
const ADD_OPS: [&str; 4] = ["+", "-", "+=", "-="];

/// Registry methods and the zero-based index of their value argument.
const REG_VALUE_ARG: [(&str, usize); 5] = [
    ("counter_add", 1),
    ("gauge_set", 1),
    ("observe", 1),
    ("observe_with_buckets", 1),
    ("sample", 2),
];

pub fn check(ws: &Workspace, fl: &Flows, out: &mut Vec<RawFinding>) {
    for id in 0..ws.index.fns.len() {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        let toks = &p.toks;
        let Some(body) = ws.fn_item(id).body else {
            continue;
        };

        // (a) + (b): operator scan over the body.
        for i in body.0 + 1..body.1 {
            let op = toks[i].punct();
            if !MIX_OPS.contains(&op) {
                continue;
            }
            let left = fl.operand_left(ws, p, id, i);
            let right = fl.operand_right(ws, p, id, i);
            match (left, right) {
                (Operand::Unit(a), Operand::Unit(b)) if a != b => {
                    out.push(RawFinding {
                        fix: Vec::new(),
                        file: f.file,
                        tok: i,
                        id: LintId::L12,
                        message: format!(
                            "`{op}` mixes units: left operand is {}, right operand is {}",
                            a.name(),
                            b.name()
                        ),
                        suggestion: "convert one side explicitly, or fix the inference with \
                                     `// cackle-lint: unit(...)` on the binding"
                            .into(),
                    });
                }
                (Operand::Unit(u), Operand::Scalar) | (Operand::Scalar, Operand::Unit(u))
                    if ADD_OPS.contains(&op) && u.scalar_add_suspicious() =>
                {
                    out.push(RawFinding {
                        fix: Vec::new(),
                        file: f.file,
                        tok: i,
                        id: LintId::L12,
                        message: format!(
                            "`{op}` adds a bare scalar to a {}-carrying quantity",
                            u.name()
                        ),
                        suggestion: format!(
                            "name the constant with a {}-carrying binding (or annotate it \
                             `// cackle-lint: unit({})`)",
                            u.name(),
                            u.name()
                        ),
                    });
                }
                _ => {}
            }
        }

        // (c): telemetry value arguments vs the metric name's unit.
        for call in &f.calls {
            let Some(&(_, vidx)) = REG_VALUE_ARG.iter().find(|&&(n, _)| n == call.name) else {
                continue;
            };
            if call.name_tok == 0 || toks[call.name_tok - 1].punct() != "." {
                continue;
            }
            let Some(args) = p.call_args(call.open) else {
                continue;
            };
            if args.len() <= vidx {
                continue;
            }
            let (nlo, nhi) = args[0];
            // Only literal metric names carry a schema unit (non-literal
            // names are L10's finding, not ours).
            if nlo != nhi || toks[nlo].kind != TokKind::Str {
                continue;
            }
            let Some(metric_u) = units::metric_unit(&toks[nlo].text) else {
                continue;
            };
            let (_, vhi) = args[vidx];
            // Resolve the value operand as if an operator sat just past
            // it (this also walks back over a trailing `as f64`).
            let value = fl.operand_left(ws, p, id, vhi + 1);
            if let Operand::Unit(vu) = value {
                if vu != metric_u {
                    out.push(RawFinding {
                        fix: Vec::new(),
                        file: f.file,
                        tok: call.name_tok,
                        id: LintId::L12,
                        message: format!(
                            "metric `{}` implies {} but the recorded value carries {}",
                            toks[nlo].text,
                            metric_u.name(),
                            vu.name()
                        ),
                        suggestion: "record the quantity the metric name promises, or rename \
                                     the metric's unit suffix"
                            .into(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Flows;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ws = Workspace::build(vec![("crates/core/src/x.rs".to_string(), src.to_string())]);
        let fl = Flows::build(&ws);
        let mut out = Vec::new();
        check(&ws, &fl, &mut out);
        out
    }

    #[test]
    fn mixed_units_flagged() {
        let f =
            findings("fn f(run_cost: f64, elapsed_secs: f64) -> f64 { run_cost + elapsed_secs }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("usd"));
        assert!(f[0].message.contains("seconds"));
        // Comparisons mix too.
        let f = findings(
            "fn f(payload_bytes: u64, rows_out: u64) -> bool { payload_bytes < rows_out }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn same_unit_and_unknown_clean() {
        assert!(findings("fn f(a_cost: f64, b_cost: f64) -> f64 { a_cost + b_cost }").is_empty());
        assert!(findings("fn f(x: u64, rows_out: u64) -> u64 { x + rows_out }").is_empty());
        // Products are rates: unchecked by design.
        assert!(findings(
            "fn f(vm_rate: f64, elapsed_secs: f64) -> f64 { vm_rate * elapsed_secs }"
        )
        .is_empty());
    }

    #[test]
    fn scalar_add_on_measured_units_flagged() {
        let f = findings("fn f(total_cost: f64) -> f64 { total_cost + 1.5 }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("bare scalar"));
        // Cardinalities are exempt.
        assert!(findings("fn f(rows_out: u64) -> u64 { rows_out + 1 }").is_empty());
        assert!(findings("fn f(retry_count: u64) -> u64 { retry_count - 1 }").is_empty());
    }

    #[test]
    fn units_cross_calls_via_summaries() {
        let f = findings(
            "fn window_secs(&self) -> f64 { self.elapsed_secs }\n\
             fn g(&self, total_cost: f64) -> f64 { total_cost + self.window_secs() }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("seconds"), "{f:?}");
    }

    #[test]
    fn annotation_fixes_the_inference() {
        // `budget` has no conventional unit; the annotation types it.
        let f = findings(
            "fn f(elapsed_secs: f64) -> bool {\n\
                 // cackle-lint: unit(usd)\n\
                 let budget = 10.0;\n\
                 budget < elapsed_secs\n\
             }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        // And `unit(none)` removes a misleading conventional unit.
        let ok = findings(
            "fn f(elapsed_secs: f64) -> bool {\n\
                 let total_cost = slot(); // cackle-lint: unit(none)\n\
                 total_cost < elapsed_secs\n\
             }",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn telemetry_value_unit_mismatch_flagged() {
        let f = findings(
            "fn f(&self, payload_bytes: u64) {\n\
                 self.reg.observe(\"pool.queue_wait_seconds\", payload_bytes as f64);\n\
             }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("queue_wait_seconds"));
        // Matching unit is clean, `_total` counters stay polymorphic.
        assert!(findings(
            "fn f(&self, rows_out: u64) {\n\
                 self.reg.counter_add(\"engine.task_rows_out_total\", rows_out);\n\
                 self.reg.counter_add(\"engine.tasks_total\", rows_out);\n\
             }"
        )
        .is_empty());
    }
}
