//! The flat token-pattern rules carried over from cackle-lint v1:
//! L1 host clock, L2 unseeded RNG, L3 hash-order iteration, L5 panic
//! paths, L6 ad-hoc threading. All neighbor comparisons are kind-guarded
//! (`ident()` / `punct()`) so string literals — now preserved as `Str`
//! tokens — can never match as code.

use super::RawFinding;
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::LintId;
use std::collections::BTreeSet;

const ORDER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
];

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        let toks = &file.parsed.toks;
        let hash_bindings = collect_hash_bindings(file);
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident {
                continue;
            }
            let t = &toks[i];
            let next = toks.get(i + 1).map(|t| t.punct()).unwrap_or("");
            let prev = if i > 0 { toks[i - 1].punct() } else { "" };

            // L1: host clock.
            if t.text == "Instant" || t.text == "SystemTime" {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: fi,
                    tok: i,
                    id: LintId::L1,
                    message: format!("host clock `{}`", t.text),
                    suggestion: "use the simulated clock in cackle-cloud".into(),
                });
            }

            // L2: nondeterministic RNG.
            if matches!(
                t.text.as_str(),
                "thread_rng" | "from_entropy" | "ThreadRng" | "OsRng"
            ) || (t.text == "rand" && next == "::")
            {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: fi,
                    tok: i,
                    id: LintId::L2,
                    message: format!("unseeded RNG `{}`", t.text),
                    suggestion: "use cackle_prng::Pcg32::seed_from_u64".into(),
                });
            }

            // L3: order-revealing hash iteration.
            if hash_bindings.contains(t.text.as_str()) {
                if next == "." {
                    if let Some(m) = toks.get(i + 2) {
                        if ORDER_METHODS.contains(&m.ident())
                            && toks.get(i + 3).map(|t| t.punct()) == Some("(")
                        {
                            out.push(RawFinding {
                                fix: Vec::new(),
                                file: fi,
                                tok: i + 2,
                                id: LintId::L3,
                                message: format!(
                                    "iteration over hash collection `{}` (`.{}`): order is \
                                     nondeterministic",
                                    t.text, m.text
                                ),
                                suggestion: "use a BTree collection".into(),
                            });
                        }
                    }
                }
                // `for (k, v) in &map {` / `for k in map {`
                let prev_in = (i > 0 && toks[i - 1].ident() == "in")
                    || (prev == "&" && i >= 2 && toks[i - 2].ident() == "in");
                if prev_in && next == "{" {
                    out.push(RawFinding {
                        fix: Vec::new(),
                        file: fi,
                        tok: i,
                        id: LintId::L3,
                        message: format!(
                            "iteration over hash collection `{}`: order is nondeterministic",
                            t.text
                        ),
                        suggestion: "use a BTree collection".into(),
                    });
                }
            }

            // L5: panic paths.
            if (t.text == "unwrap" || t.text == "expect") && next == "(" && prev == "." {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: fi,
                    tok: i,
                    id: LintId::L5,
                    message: format!("`.{}()` on a hot path", t.text),
                    suggestion: "return a fallible variant or handle the None/Err".into(),
                });
            }
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && next == "!"
            {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: fi,
                    tok: i,
                    id: LintId::L5,
                    message: format!("`{}!` on a hot path", t.text),
                    suggestion: "handle the case or debug_assert".into(),
                });
            }

            // L6: ad-hoc threading (`thread::spawn` / `thread::scope`).
            if matches!(t.text.as_str(), "spawn" | "scope")
                && prev == "::"
                && i >= 2
                && toks[i - 2].ident() == "thread"
            {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: fi,
                    tok: i,
                    id: LintId::L6,
                    message: format!("`thread::{}` outside the stage executor", t.text),
                    suggestion: "route parallel work through cackle_engine::executor::Executor"
                        .into(),
                });
            }
        }
    }
}

/// Identifiers declared with a `HashMap` / `HashSet` type in this file:
/// `name: ...HashMap<...>` (fields, params) and
/// `let [mut] name = ...HashMap::new()`-style initializers.
fn collect_hash_bindings(file: &crate::index::SourceFile) -> BTreeSet<String> {
    let toks = &file.parsed.toks;
    let excluded = &file.parsed.test_excluded;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if excluded[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name : ... HashMap` within a few tokens, before any delimiter.
        if toks.get(i + 1).map(|t| t.punct()) == Some(":") {
            for t in toks.iter().skip(i + 2).take(8) {
                if matches!(t.ident(), "HashMap" | "HashSet") {
                    names.insert(toks[i].text.clone());
                    break;
                }
                if matches!(t.punct(), "," | ";" | ")" | "{" | "}" | "=") {
                    break;
                }
            }
        }
        // `let [mut] name ... = ... HashMap ... ;`
        if toks[i].text == "let" {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.ident()) == Some("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let mut k = j + 1;
                while k < toks.len() && toks[k].punct() != ";" {
                    if matches!(toks[k].ident(), "HashMap" | "HashSet") {
                        names.insert(name.text.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names
}
