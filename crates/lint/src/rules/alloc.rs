//! L14 · per-iteration allocation on the engine's hot paths.
//!
//! The columnar engine's throughput claims die by a thousand
//! `Vec::new()`s: an allocation inside an operator loop runs once per
//! batch/row/partition instead of once per task. This rule flags, in
//! *hot-path* functions only, these shapes inside `for`/`while`/`loop`
//! bodies:
//!
//! * `Vec::new()` / `vec![...]` — per-iteration buffer construction;
//! * `.collect()` — materializes a fresh container per iteration;
//! * `.clone()` — deep copy per iteration (`Arc::clone` and
//!   schema-named receivers are exempt: refcount bumps and shared
//!   `Arc<Schema>` handles are cheap by design);
//! * `format!` — per-iteration string allocation;
//! * `.push(...)` into a vector whose initializer was `Vec::new()` /
//!   `vec![]` with no `with_capacity` — growth reallocations inside
//!   the loop.
//!
//! Hot-path = BFS-reachable from `execute_task_buffered` or from any
//! operator `next` fn, plus everything defined in the columnar kernel
//! files `crates/engine/src/{batch,column}.rs` and the vectorized
//! kernel tree `crates/engine/src/kernels/` — the kernels every
//! operator bottoms out in, which reachability alone misses because
//! ubiquitous method names (`take`, `len`) are call-graph stoplisted.
//!
//! Every suggestion is machine-readable: it starts with
//! `reuse-buffer:` and names the reusable-buffer alternative. The
//! push-without-capacity shape additionally carries a machine-applicable
//! fix (`cackle-lint fix`): rewrite the receiver's `Vec::new()`
//! initializer to `Vec::with_capacity(...)` with a TODO capacity — the
//! right size comes from the loop bound, which is a human decision,
//! but the shape change (and the lint's exit) is mechanical.

use super::RawFinding;
use crate::dataflow::Flows;
use crate::fix::Edit;
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::LintId;
use std::collections::BTreeSet;

/// Kernel files whose fns are hot by definition.
const KERNEL_FILES: [&str; 2] = ["crates/engine/src/batch.rs", "crates/engine/src/column.rs"];

/// Every fn under the vectorized kernel tree is hot by definition too.
const KERNEL_DIR: &str = "crates/engine/src/kernels/";

/// Serving-layer files whose loops run once per simulated second per
/// tenant (admission gating, WDRR dispatch) — hot by definition, since
/// reachability from the engine roots cannot see them.
const SERVE_HOT_FILES: [&str; 2] = [
    "crates/serve/src/admission.rs",
    "crates/serve/src/scheduler.rs",
];

pub fn check(ws: &Workspace, fl: &Flows, out: &mut Vec<RawFinding>) {
    let mut domain: BTreeSet<usize> = ws.reachable_from("execute_task_buffered");
    domain.extend(ws.reachable_from("next"));
    for (id, f) in ws.index.fns.iter().enumerate() {
        let rel = ws.files[f.file].rel_path.as_str();
        if KERNEL_FILES.contains(&rel)
            || rel.starts_with(KERNEL_DIR)
            || SERVE_HOT_FILES.contains(&rel)
        {
            domain.insert(id);
        }
    }

    for &id in &domain {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        let toks = &p.toks;
        let flow = &fl.flows[id];
        if flow.loops.is_empty() {
            continue;
        }
        let Some(body) = ws.fn_item(id).body else {
            continue;
        };

        for i in body.0 + 1..body.1 {
            if !flow.in_loop(i) || toks[i].kind != TokKind::Ident {
                continue;
            }
            let next = toks.get(i + 1).map(|t| t.punct()).unwrap_or("");
            if toks[i].text == "Vec"
                && next == "::"
                && toks.get(i + 2).map(|t| t.ident()) == Some("new")
                && toks.get(i + 3).map(|t| t.punct()) == Some("(")
            {
                out.push(finding(
                    f.file,
                    i,
                    "`Vec::new()` allocates inside a hot-path loop",
                    "reuse-buffer: hoist a `Vec::with_capacity(...)` above the loop and \
                     `clear()` it per iteration",
                ));
            }
            if toks[i].text == "vec" && next == "!" {
                out.push(finding(
                    f.file,
                    i,
                    "`vec![...]` allocates inside a hot-path loop",
                    "reuse-buffer: hoist a `Vec::with_capacity(...)` above the loop and \
                     refill it per iteration",
                ));
            }
            if toks[i].text == "format" && next == "!" {
                out.push(finding(
                    f.file,
                    i,
                    "`format!` allocates a String inside a hot-path loop",
                    "reuse-buffer: `write!` into a String hoisted above the loop and \
                     cleared per iteration",
                ));
            }
        }

        for call in &f.calls {
            if !flow.in_loop(call.name_tok) || call.name_tok == 0 {
                continue;
            }
            let prev = toks[call.name_tok - 1].punct();
            match call.name.as_str() {
                "collect" if prev == "." => {
                    out.push(finding(
                        f.file,
                        call.name_tok,
                        "`.collect()` materializes a fresh container inside a hot-path loop",
                        "reuse-buffer: `extend(...)` into a buffer hoisted above the loop \
                         (or use a pre-sized slice path)",
                    ));
                }
                "clone" if prev == "." => {
                    // `Arc`-style refcount bumps and shared schema
                    // handles are cheap by design.
                    let recv = receiver_ident(p, call.name_tok);
                    if recv
                        .as_deref()
                        .is_some_and(|r| r.to_ascii_lowercase().contains("schema"))
                    {
                        continue;
                    }
                    out.push(finding(
                        f.file,
                        call.name_tok,
                        "`.clone()` deep-copies inside a hot-path loop",
                        "reuse-buffer: borrow the value, or move it out of the loop and \
                         reuse one copy",
                    ));
                }
                "push" if prev == "." => {
                    let Some(recv) = receiver_ident(p, call.name_tok) else {
                        continue;
                    };
                    // Find the receiver's initializer; flag only when it
                    // provably starts from an unsized `Vec::new`/`vec!`.
                    let mut unsized_init = false;
                    let mut init_rhs = None;
                    for a in &flow.assigns {
                        if a.target != recv {
                            continue;
                        }
                        let rhs: Vec<&str> = toks[a.rhs.0..=a.rhs.1.min(toks.len() - 1)]
                            .iter()
                            .map(|t| t.text.as_str())
                            .collect();
                        if rhs.contains(&"with_capacity") {
                            unsized_init = false;
                            break;
                        }
                        if rhs.contains(&"vec") || (rhs.contains(&"Vec") && rhs.contains(&"new")) {
                            unsized_init = true;
                            init_rhs = Some((a.rhs.0, a.rhs.1.min(toks.len() - 1)));
                        }
                    }
                    if unsized_init {
                        let mut fnd = finding(
                            f.file,
                            call.name_tok,
                            &format!(
                                "`.push` into `{recv}`, which was initialized without \
                                 `with_capacity`, reallocates inside a hot-path loop"
                            ),
                            &format!(
                                "reuse-buffer: initialize `{recv}` with \
                                 `Vec::with_capacity(...)` sized from the loop bound"
                            ),
                        );
                        fnd.fix = capacity_fix(toks, init_rhs);
                        out.push(fnd);
                    }
                }
                _ => {}
            }
        }
    }
}

/// The mechanical part of the reuse-buffer rewrite: when the flagged
/// receiver's initializer is literally `Vec::new()`, replace it with a
/// `with_capacity` call whose capacity is a TODO (`0` behaves exactly
/// like `Vec::new()` until sized). `vec![...]` initializers carry
/// element expressions and stay suggestion-only.
fn capacity_fix(toks: &[crate::lexer::Token], init_rhs: Option<(usize, usize)>) -> Vec<Edit> {
    let Some((lo, hi)) = init_rhs else {
        return Vec::new();
    };
    for i in lo..=hi.saturating_sub(4) {
        if toks[i].text == "Vec"
            && toks[i + 1].punct() == "::"
            && toks[i + 2].ident() == "new"
            && toks[i + 3].punct() == "("
            && toks[i + 4].punct() == ")"
        {
            return vec![Edit::replace(
                toks[i].span.0,
                toks[i + 4].span.1,
                "Vec::with_capacity(0 /* TODO: size from loop bound */)",
            )];
        }
    }
    Vec::new()
}

fn finding(file: usize, tok: usize, message: &str, suggestion: &str) -> RawFinding {
    RawFinding {
        fix: Vec::new(),
        file,
        tok,
        id: LintId::L14,
        message: message.to_string(),
        suggestion: suggestion.to_string(),
    }
}

/// Terminal identifier of a method call's receiver: `xs.push` → `xs`,
/// `per_partition[p].push` → `per_partition`, `self.buf.push` → `buf`.
/// `Arc::clone` style path calls return None (no `.` receiver).
fn receiver_ident(p: &crate::parser::ParsedFile, name_tok: usize) -> Option<String> {
    if name_tok < 2 {
        return None;
    }
    let toks = &p.toks;
    let mut i = name_tok - 2;
    if toks[i].punct() == "]" {
        // Index expression: hop to the `[` and take the ident before it.
        let open = (0..i).rev().find(|&k| p.close_of(k) == Some(i))?;
        i = open.checked_sub(1)?;
    }
    (toks[i].kind == TokKind::Ident).then(|| toks[i].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Flows;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let fl = Flows::build(&ws);
        let mut out = Vec::new();
        check(&ws, &fl, &mut out);
        out
    }

    #[test]
    fn allocations_in_reachable_loops_flagged() {
        let f = findings(&[(
            "crates/engine/src/task.rs",
            "pub fn execute_task_buffered(n: usize) {\n\
                 for i in 0..n {\n\
                     let idx: Vec<usize> = (0..i).collect();\n\
                     let s = format!(\"{i}\");\n\
                 }\n\
             }",
        )]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.suggestion.starts_with("reuse-buffer:")));
    }

    #[test]
    fn outside_loops_or_outside_domain_clean() {
        // Same shapes outside any loop: clean.
        assert!(findings(&[(
            "crates/engine/src/task.rs",
            "pub fn execute_task_buffered(n: usize) { let v: Vec<usize> = (0..n).collect(); }",
        )])
        .is_empty());
        // Same shapes in a loop, but unreachable from any root: clean.
        assert!(findings(&[(
            "crates/engine/src/plan.rs",
            "pub fn cold(n: usize) { for i in 0..n { let v = Vec::new(); v.len(); } }",
        )])
        .is_empty());
    }

    #[test]
    fn kernel_files_are_hot_without_reachability() {
        let f = findings(&[(
            "crates/engine/src/batch.rs",
            "impl Batch { pub fn chunks(&self, n: usize) {\n\
                 let mut start = 0;\n\
                 while start < n {\n\
                     let idx: Vec<usize> = (start..n).collect();\n\
                     start += n;\n\
                 }\n\
             } }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("collect"));
    }

    #[test]
    fn kernels_dir_is_hot_without_reachability() {
        let f = findings(&[(
            "crates/engine/src/kernels/select.rs",
            "pub fn gather_all(masks: &[Mask]) {\n\
                 for m in masks { let v: Vec<usize> = m.ones().collect(); v.len(); }\n\
             }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("collect"));
    }

    #[test]
    fn serve_hot_files_are_hot_without_reachability() {
        let f = findings(&[(
            "crates/serve/src/scheduler.rs",
            "pub fn drain_round(classes: &[Class]) {\n\
                 for c in classes { let names: Vec<u32> = c.ids().collect(); names.len(); }\n\
             }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("collect"));
        // Other serve files still need reachability to join the domain.
        assert!(findings(&[(
            "crates/serve/src/run.rs",
            "pub fn assemble(n: usize) { for i in 0..n { let v = Vec::new(); v.len(); } }",
        )])
        .is_empty());
    }

    #[test]
    fn push_without_capacity_flagged_and_sized_push_clean() {
        let hot = |body: &str| {
            findings(&[(
                "crates/engine/src/task.rs",
                &format!("pub fn execute_task_buffered(n: usize) {{ {body} }}"),
            )])
        };
        let src = "pub fn execute_task_buffered(n: usize) { let mut acc = Vec::new();\n\
             for i in 0..n { acc.push(i); } }";
        let f = findings(&[("crates/engine/src/task.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("with_capacity"));
        // The attached fix rewrites the initializer mechanically; the
        // capacity stays a TODO for the human.
        assert_eq!(
            crate::fix::apply(src, &f[0].fix).unwrap(),
            "pub fn execute_task_buffered(n: usize) { let mut acc = \
             Vec::with_capacity(0 /* TODO: size from loop bound */);\n\
             for i in 0..n { acc.push(i); } }"
        );
        assert!(hot("let mut acc = Vec::with_capacity(n);\n\
             for i in 0..n { acc.push(i); }")
        .is_empty());
        // Indexed receivers resolve through the `[...]` group.
        let f = hot("let mut parts = vec![Vec::new(); 4];\n\
             for i in 0..n { parts[i % 4].push(i); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("parts"));
    }

    #[test]
    fn schema_clones_and_arc_clone_exempt() {
        let f = findings(&[(
            "crates/engine/src/task.rs",
            "pub fn execute_task_buffered(parts: &[Part], out_schema: &Schema) {\n\
                 for p in parts {\n\
                     emit(out_schema.clone());\n\
                     emit2(Arc::clone(&out_schema));\n\
                     consume(p.clone());\n\
                 }\n\
             }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("clone"));
    }

    #[test]
    fn next_paths_are_roots_too() {
        let f = findings(&[(
            "crates/engine/src/operator.rs",
            "impl Filter { pub fn next(&mut self) -> Option<Batch> {\n\
                 for b in &self.pending { self.out.push(b.clone()); }\n\
                 None\n\
             } }",
        )]);
        // `.clone()` in the loop is flagged; `.push` is not (receiver
        // `out` has no local unsized initializer).
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("clone"));
    }
}
