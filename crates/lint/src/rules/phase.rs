//! L17 · phase discipline: no shared-registry writes from the
//! parallel phase.
//!
//! The engine's byte-identical-at-any-worker-count guarantee (DESIGN
//! §9) is a two-phase protocol: every fn BFS-reachable from
//! `execute_task_buffered` runs concurrently (*parallel phase*) and
//! must only touch task-private state — buffers, shards, the
//! `BufferedTask` write list; the executor publishes at the stage
//! barrier in task-index order (*publication phase*). A direct write
//! to a shared registry from parallel-phase code commits in
//! thread-scheduling order and silently re-opens the guarantee.
//!
//! Flagged method calls inside the reachable set:
//!
//! * `.charge(...)` / `.try_charge(...)` / `.charge_requests(...)` —
//!   `CostLedger` mutations, unconditionally (the names are unique to
//!   the ledger API);
//! * `.merge(...)` when the receiver names a telemetry registry or
//!   ledger (`telemetry.merge(&shard)`) — a bare `.merge(` is too
//!   common (kernel merge passes) to flag on name alone;
//! * `.absorb(...)` when the receiver names a registry or telemetry;
//! * `.write(...)` when the receiver names a shuffle — publication
//!   must go through the buffered write list, not the transport.
//!
//! Receiver sensitivity is the honest trade for a name-approximate
//! graph: `self.merge(...)` (receiver `self`) and `left.merge(right)`
//! stay clean; the shard/merge APIs themselves live in
//! crates/telemetry and crates/faults, which the central scope
//! exempts. One more carve-out: the ledger API *implementing itself*
//! — a `self.try_charge(...)` call inside `CostLedger::charge` is
//! delegation within the publication surface, not a bypass of it, so
//! `self.<ledger call>` is exempt when the enclosing fn is itself a
//! ledger wrapper.

use super::RawFinding;
use crate::index::Workspace;
use crate::LintId;

/// Ledger-mutation method names flagged regardless of receiver.
const LEDGER_CALLS: [&str; 3] = ["charge", "try_charge", "charge_requests"];

/// Fns allowed to delegate to another ledger call via `self.` — the
/// ledger API surface itself (wrappers funnel into `try_charge`).
const LEDGER_WRAPPERS: [&str; 4] = ["charge", "try_charge", "charge_requests", "charge_micros"];

/// `(method, receiver-substring)` pairs flagged only when the
/// receiver identifier contains one of the substrings.
const RECEIVER_CALLS: [(&str, &[&str]); 3] = [
    ("merge", &["telemetry", "ledger"]),
    ("absorb", &["registry", "telemetry"]),
    ("write", &["shuffle"]),
];

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    let reachable = ws.reachable_from("execute_task_buffered");
    if reachable.is_empty() {
        return;
    }
    for &id in &reachable {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        for call in &f.calls {
            // Method calls only: the registry APIs are all `&self`
            // methods, and a free fn of the same name is not one.
            if call.name_tok == 0 || p.toks[call.name_tok - 1].punct() != "." {
                continue;
            }
            let receiver = if call.name_tok >= 2 {
                p.toks[call.name_tok - 2].ident().to_ascii_lowercase()
            } else {
                String::new()
            };
            let what = if LEDGER_CALLS.contains(&call.name.as_str()) {
                if receiver == "self" && LEDGER_WRAPPERS.contains(&ws.fn_item(id).name.as_str()) {
                    None // ledger-internal delegation, not a bypass
                } else {
                    Some("the cost ledger")
                }
            } else {
                RECEIVER_CALLS
                    .iter()
                    .find(|(m, subs)| *m == call.name && subs.iter().any(|s| receiver.contains(s)))
                    .map(|(m, _)| match *m {
                        "write" => "the shuffle transport",
                        _ => "a shared registry",
                    })
            };
            let Some(what) = what else {
                continue;
            };
            out.push(RawFinding {
                fix: Vec::new(),
                file: f.file,
                tok: call.name_tok,
                id: LintId::L17,
                message: format!(
                    "parallel-phase write `.{}(...)` to {} is reachable from \
                     `execute_task_buffered` (via fn `{}`)",
                    call.name,
                    what,
                    ws.fn_item(id).qualified
                ),
                suggestion: "buffer into the per-task shard / write list and let the \
                             serial stage barrier publish (Telemetry::merge, \
                             Registry::absorb, buffered shuffle writes)"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn ledger_charge_reached_through_helper_flagged() {
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered() { helper(); }",
            ),
            (
                "crates/core/src/system.rs",
                "pub fn helper(&self) { self.ledger.charge(vm, cost); }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L17);
        assert!(f[0].message.contains("via fn `helper`"));
        assert!(f[0].message.contains("cost ledger"));
    }

    #[test]
    fn receiver_sensitive_merge_and_shuffle_write() {
        // telemetry.merge and shuffle.write flagged; a kernel merge pass
        // (`left.merge(right)`) and `self.merge(...)` are not.
        let f = findings(&[(
            "crates/engine/src/task.rs",
            "pub fn execute_task_buffered(&self) {\n\
                 self.telemetry.merge(&shard);\n\
                 self.ctx.shuffle.write(key, task, data);\n\
                 left.merge(right);\n\
                 self.merge(other);\n\
             }",
        )]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|r| r.message.contains(".merge(")));
        assert!(f.iter().any(|r| r.message.contains(".write(")));
    }

    #[test]
    fn publication_phase_code_not_flagged() {
        // The barrier publishes after the pool joins; it is not
        // reachable from `execute_task_buffered`.
        let f = findings(&[(
            "crates/engine/src/executor.rs",
            "pub fn execute_task_buffered(&self) { compute(); }\n\
             fn compute() {}\n\
             pub fn publish_barrier(&self) { self.telemetry.merge(&shard); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ledger_internal_delegation_exempt_but_outside_caller_flagged() {
        // `charge` funneling into `self.try_charge` is the ledger API
        // implementing itself; an engine fn calling `.charge(...)` on a
        // ledger field is still a bypass.
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered(&self) { self.ledger.charge(c, d); }",
            ),
            (
                "crates/cloud/src/ledger.rs",
                "pub fn charge(&mut self, c: C, d: f64) { let _ = self.try_charge(c, d); }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("via fn `execute_task_buffered`"));
    }

    #[test]
    fn free_fn_charge_not_flagged() {
        let f = findings(&[(
            "crates/engine/src/task.rs",
            "pub fn execute_task_buffered() { charge(); }\nfn charge() {}",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
