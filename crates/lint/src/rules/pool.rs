//! L16 · pooled scratch buffers must go back to the pool.
//!
//! The kernels draw scratch space from `ScratchArena` in checkout /
//! recycle pairs (`checkout_idx`/`recycle_idx`, `checkout_mask`/
//! `recycle_mask`, `checkout_bytes`/`recycle_bytes`). A checkout
//! without a matching recycle in the same function silently downgrades
//! the pool to an allocator: the buffer is dropped instead of returned,
//! every subsequent checkout of that type allocates fresh, and the
//! reuse counters the telemetry layer reports go flat.
//!
//! The rule counts checkout and recycle *call sites* per buffer type
//! within each function and flags any imbalance. Functions that
//! genuinely transfer buffer ownership to a caller should carry a
//! `// cackle-lint: allow(L16)` on the checkout line stating where the
//! recycle happens.

use super::RawFinding;
use crate::index::Workspace;
use crate::LintId;

/// The pooled buffer types, named by the API suffix.
const SUFFIXES: [&str; 3] = ["idx", "mask", "bytes"];

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    for (id, f) in ws.index.fns.iter().enumerate() {
        for suffix in SUFFIXES {
            let checkout_name = format!("checkout_{suffix}");
            let recycle_name = format!("recycle_{suffix}");
            let mut checkouts = 0usize;
            let mut recycles = 0usize;
            let mut anchor = None;
            for call in &f.calls {
                if call.name == checkout_name {
                    checkouts += 1;
                    anchor.get_or_insert(call.name_tok);
                } else if call.name == recycle_name {
                    recycles += 1;
                    anchor.get_or_insert(call.name_tok);
                }
            }
            if checkouts == recycles {
                continue;
            }
            let Some(tok) = anchor else { continue };
            let fn_name = &ws.fn_item(id).name;
            out.push(RawFinding {
                fix: Vec::new(),
                file: f.file,
                tok,
                id: LintId::L16,
                message: format!(
                    "`{fn_name}` has {checkouts} `{checkout_name}` but \
                     {recycles} `{recycle_name}` call site(s): a checked-out \
                     `{suffix}` buffer is not returned to the pool"
                ),
                suggestion: format!(
                    "recycle-buffer: pair every `{checkout_name}` with a \
                     `{recycle_name}` before returning, or annotate an \
                     ownership transfer with `// cackle-lint: allow(L16)` \
                     naming where the buffer is recycled"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ws = Workspace::build(vec![(
            "crates/engine/src/kernels/select.rs".to_string(),
            src.to_string(),
        )]);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn unbalanced_checkout_flagged() {
        let f = findings(
            "pub fn filter(arena: &mut ScratchArena) {\n\
                 let sel = arena.checkout_idx(64);\n\
                 let mask = arena.checkout_mask(64);\n\
                 arena.recycle_mask(mask);\n\
             }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("checkout_idx"));
        assert!(f[0].suggestion.starts_with("recycle-buffer:"));
    }

    #[test]
    fn balanced_pairs_clean() {
        assert!(findings(
            "pub fn filter(arena: &mut ScratchArena) {\n\
                 let sel = arena.checkout_idx(64);\n\
                 let mask = arena.checkout_mask(64);\n\
                 arena.recycle_mask(mask);\n\
                 arena.recycle_idx(sel);\n\
             }",
        )
        .is_empty());
        // Two checkouts, two recycles of the same type balance too.
        assert!(findings(
            "pub fn twice(arena: &mut ScratchArena) {\n\
                 let a = arena.checkout_idx(8);\n\
                 let b = arena.checkout_idx(8);\n\
                 arena.recycle_idx(a);\n\
                 arena.recycle_idx(b);\n\
             }",
        )
        .is_empty());
    }

    #[test]
    fn stray_recycle_flagged() {
        let f = findings(
            "pub fn oops(arena: &mut ScratchArena, m: Vec<bool>) {\n\
                 arena.recycle_mask(m);\n\
                 let n = arena.checkout_mask(4);\n\
                 arena.recycle_mask(n);\n\
             }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("1 `checkout_mask`"));
    }
}
