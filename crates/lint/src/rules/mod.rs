//! Rule registry: each rule family lives in its own module and emits
//! [`RawFinding`]s against a [`Workspace`]. Scoping, test-item
//! exclusion, suppressions, and sorting are applied centrally in
//! `lib.rs` — rules only decide *what* is wrong, never *whether it
//! counts here*.

use crate::dataflow::Flows;
use crate::fix::Edit;
use crate::index::Workspace;
use crate::LintId;

pub mod alloc;
pub mod atomics;
pub mod casts;
pub mod draws;
pub mod keyed;
pub mod ledger;
pub mod lexical;
pub mod locks;
pub mod measure;
pub mod phase;
pub mod pool;
pub mod purity;
pub mod seeds;
pub mod telemetry;

/// A finding before central filtering: anchored to a (file, token)
/// pair so test-item exclusion can be applied by token index.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Anchor token (for `#[test]`-item exclusion).
    pub tok: usize,
    /// The violated rule.
    pub id: LintId,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// Machine-applicable byte-span edits realizing the suggestion
    /// (empty when the rule has no mechanical rewrite for this site).
    pub fix: Vec<Edit>,
}

/// Run every rule family over the workspace. `flows` is the shared
/// intra-procedural dataflow + interprocedural summary layer the
/// L12–L15 and L19 families consume.
pub fn run(ws: &Workspace, flows: &Flows) -> Vec<RawFinding> {
    let mut out = Vec::new();
    lexical::check(ws, &mut out);
    locks::check(ws, &mut out);
    atomics::check(ws, &mut out);
    draws::check(ws, &mut out);
    telemetry::check(ws, &mut out);
    ledger::check(ws, &mut out);
    measure::check(ws, flows, &mut out);
    seeds::check(ws, flows, &mut out);
    alloc::check(ws, flows, &mut out);
    casts::check(ws, flows, &mut out);
    pool::check(ws, &mut out);
    phase::check(ws, &mut out);
    keyed::check(ws, &mut out);
    purity::check(ws, flows, &mut out);
    out
}

/// One-line machine-readable summary per rule, for `--list-rules`.
/// Retired rules (L4) are excluded — they are not registered, cannot
/// fire, and need no fixture coverage.
pub fn summary(id: LintId) -> Option<&'static str> {
    Some(match id {
        LintId::L1 => "no host clock (Instant/SystemTime) outside the simulated clock",
        LintId::L2 => "no entropy-seeded RNG (thread_rng/from_entropy/rand::)",
        LintId::L3 => "no order-revealing HashMap/HashSet iteration",
        LintId::L4 => return None,
        LintId::L5 => "no unwrap/expect/panic! on hot paths",
        LintId::L6 => "no ad-hoc threading outside the stage executor",
        LintId::L7 => "no lock-order cycles (static deadlock detector)",
        LintId::L8 => "no Ordering::Relaxed on atomics shared with worker closures",
        LintId::L9 => "no twinless sequential fault draws in the parallel phase",
        LintId::L10 => "telemetry metric names are literals on the DESIGN §7 grammar",
        LintId::L11 => "no money arithmetic outside the billing layer",
        LintId::L12 => "no mixing of units (usd/seconds/bytes/rows/count)",
        LintId::L13 => "every PRNG seed derives from the RunSpec seed",
        LintId::L14 => "no per-iteration allocation on engine hot paths",
        LintId::L15 => "no narrowing casts on unit-carrying values",
        LintId::L16 => "pooled scratch checkouts balance with recycles",
        LintId::L17 => "no parallel-phase writes to shared registries",
        LintId::L18 => "parallel-phase draws with a _keyed twin must use it",
        LintId::L19 => "pure(...)-annotated fns uphold their purity contract",
        LintId::Sup => "malformed cackle-lint comment (hard error)",
    })
}

/// Long-form `--explain` text for a rule.
pub fn explain(id: LintId) -> &'static str {
    match id {
        LintId::L1 => {
            "L1 · host clock\n\
             \n\
             `Instant` and `SystemTime` read the host's clock, which differs\n\
             across machines and runs. Every timestamp in a simulation must come\n\
             from the simulated clock (`cackle_cloud::time`), or reruns stop\n\
             being byte-identical.\n\
             \n\
             Scope: everywhere except crates/bench and crates/cloud/src/time.rs."
        }
        LintId::L2 => {
            "L2 · unseeded RNG\n\
             \n\
             `thread_rng`, `from_entropy`, `OsRng`, and anything under `rand::`\n\
             seed from the OS entropy pool, so two runs of the same RunSpec\n\
             diverge. All randomness must flow from `cackle_prng::Pcg32::\n\
             seed_from_u64` with a seed recorded in the RunSpec.\n\
             \n\
             Scope: everywhere."
        }
        LintId::L3 => {
            "L3 · hash-order iteration\n\
             \n\
             Iterating a `HashMap`/`HashSet` (`.iter()`, `.values()`, `for k in\n\
             &map`, ...) observes SipHash bucket order, which is randomized per\n\
             process. Any fold, dump, or schedule built from that order differs\n\
             between runs. Use `BTreeMap`/`BTreeSet`, or collect-and-sort first.\n\
             \n\
             Scope: crates/engine, crates/core, crates/telemetry."
        }
        LintId::L4 => {
            "L4 · raw dollar arithmetic (retired)\n\
             \n\
             L4 was the path-scoped predecessor of L11: it flagged arithmetic on\n\
             cost-named bindings, but only inside crates/cloud, crates/engine,\n\
             and examples/. L11 now enforces the same rule workspace-wide with\n\
             an operand-aware refinement (cost+cost sums are allowed), so L4 is\n\
             retired. Baseline entries for L4 still parse; new findings are\n\
             reported as L11."
        }
        LintId::L5 => {
            "L5 · panic paths on hot paths\n\
             \n\
             `.unwrap()`, `.expect()`, and the panic! macro family abort the\n\
             whole simulation on inputs the type system already told you were\n\
             fallible. On the hot paths (cloud primitives, telemetry, fault\n\
             injection, the engine's task/shuffle/table/executor files) every\n\
             such site must either handle the case or carry an allow comment\n\
             justifying why it is unreachable.\n\
             \n\
             Scope: crates/cloud/src, crates/telemetry/src, crates/faults/src,\n\
             core/{system,transport}.rs, engine/{task,shuffle,table,executor}.rs."
        }
        LintId::L6 => {
            "L6 · ad-hoc threading\n\
             \n\
             `thread::spawn` / `thread::scope` outside the stage executor\n\
             creates workers with no index-ordered result slot, no telemetry\n\
             shard, and no keyed fault stream — their effects depend on the OS\n\
             scheduler. All parallelism goes through\n\
             `cackle_engine::executor::Executor`. (The lint driver's own\n\
             parser pool in crates/lint/src/index.rs is the second blessed\n\
             site: it copies the executor's claim-by-index pattern and merges\n\
             results in input order.)\n\
             \n\
             Scope: everywhere except engine/src/executor.rs and\n\
             lint/src/index.rs."
        }
        LintId::L7 => {
            "L7 · lock-order cycles\n\
             \n\
             A static deadlock detector. Per function, the analyzer records\n\
             which `Mutex`/`RwLock` guards are still live when another lock is\n\
             acquired (a `let`-bound guard lives to the end of its block, a\n\
             temporary to the end of its statement), propagates acquisitions\n\
             through the approximate call graph, and builds a global\n\
             acquired-before relation. Any cycle in that relation means two\n\
             call paths can interleave into a deadlock. Fix by acquiring locks\n\
             in one global order, or by narrowing the first guard's scope so\n\
             the acquisitions no longer overlap.\n\
             \n\
             Lock identity is `file_stem.binding_name` (e.g. `shuffle.stats`);\n\
             the call graph is name-approximate, so a cycle report names the\n\
             acquisition sites it was derived from.\n\
             \n\
             Scope: crates/engine, crates/core."
        }
        LintId::L8 => {
            "L8 · relaxed atomics across the worker pool\n\
             \n\
             `Ordering::Relaxed` provides no happens-before edge. On an atomic\n\
             that is touched both inside and outside the executor's worker\n\
             closures (`spawn(...)` argument bodies), Relaxed means the main\n\
             thread can observe stale values — acceptable only for pure\n\
             counters whose value is never used to publish data. Use\n\
             Acquire/Release (or SeqCst) when the atomic synchronizes, or add\n\
             an allow comment stating why atomicity alone suffices.\n\
             \n\
             Scope: crates/engine, crates/core."
        }
        LintId::L9 => {
            "L9 · twinless sequential fault draw in the parallel phase\n\
             \n\
             FaultInjector's sequential lifecycle draws (vm_interrupt,\n\
             pool_invoke, store_error, transport_drop, straggler) consume a\n\
             per-point PRNG stream in call order. Reached from\n\
             `execute_task_buffered`'s parallel phase, call order depends on\n\
             worker interleaving, so the draw sequence — and every fault\n\
             outcome after it — differs between runs. These draws have no\n\
             `_keyed` twin, so the only fix is hoisting the call out of the\n\
             parallel phase (or adding a keyed variant first). Draws that DO\n\
             have a keyed twin are L18's job: it discovers twins from the\n\
             workspace index instead of a hardcoded list.\n\
             \n\
             Scope: crates/engine, crates/core, crates/cloud (crates/faults\n\
             itself, where the sequential primitives live, is exempt)."
        }
        LintId::L10 => {
            "L10 · telemetry metric-name schema\n\
             \n\
             Metric names passed to the registry (counter_add, gauge_set,\n\
             observe, observe_with_buckets, sample) must be string literals\n\
             matching the DESIGN §7 grammar: lowercase dot-separated\n\
             `component.metric_name` with a known component prefix (run, meta,\n\
             engine, pool, store, fault, recovery, fleet, shuffle_fleet,\n\
             warehouse, endpoint). format!-built names defeat the golden-dump\n\
             diff (the set of series becomes data-dependent) and grep-ability.\n\
             Select from a static table of literals instead.\n\
             \n\
             Scope: everywhere."
        }
        LintId::L11 => {
            "L11 · ledger hygiene\n\
             \n\
             Dollars are minted in exactly two places: `Pricing` (rates) and\n\
             `CostLedger` (accumulation). Everywhere else, (a) arithmetic on a\n\
             cost-named binding (*, /, %, compound assignment, or `==`\n\
             comparison) is flagged — except `+`/`-` where BOTH operands are\n\
             cost-named, which is a legitimate sum of already-minted dollars —\n\
             and (b) a `*` or `/` inside a `.charge(...)`/`.try_charge(...)`/\n\
             `.charge_requests(...)` argument list computes a price at the call\n\
             site; move the formula into a Pricing method.\n\
             \n\
             Subsumes the retired, path-scoped L4.\n\
             \n\
             Scope: everywhere except crates/cloud/src/{ledger,pricing}.rs,\n\
             crates/core/src/prices.rs, and crates/bench."
        }
        LintId::L12 => {
            "L12 · unit-of-measure conformance\n\
             \n\
             Quantities carry one of five base units — usd, seconds, bytes,\n\
             rows, count — inferred from naming conventions (`*_cost`,\n\
             `*_secs`, `*_bytes`, ...), billing/telemetry API signatures\n\
             (`charge`'s amount is dollars whatever it is called), and\n\
             `// cackle-lint: unit(...)` annotations (`unit(none)` =\n\
             explicitly dimensionless). The dataflow layer propagates units\n\
             through assignments and per-function return summaries. Flagged:\n\
             additive/comparison operators mixing two different known units;\n\
             adding a bare numeric literal to a usd/seconds/bytes quantity;\n\
             telemetry values contradicting the metric name's unit suffix.\n\
             Products and quotients are unchecked (rates are Pricing's job).\n\
             \n\
             Scope: everywhere except crates/bench."
        }
        LintId::L13 => {
            "L13 · seed provenance\n\
             \n\
             Every `Pcg32::seed_from_u64(...)` argument is taint-tracked\n\
             through the assignment graph and call summaries. It must derive\n\
             from a seed/salt/`*_key` binding (the RunSpec seed, a registered\n\
             salt constant, or a seed-derived helper like `splitmix64`).\n\
             Flagged: literal seeds (not re-derivable from a RunSpec),\n\
             re-seeding from a stream's own draws (`next_u64` feeding\n\
             `seed_from_u64` couples the new stream to draw order), and\n\
             arguments whose provenance cannot be proven.\n\
             \n\
             Scope: everywhere except crates/prng (where the primitive\n\
             lives) and crates/bench; `#[test]` items are exempt."
        }
        LintId::L14 => {
            "L14 · hot-path allocation\n\
             \n\
             Inside loops of functions BFS-reachable from\n\
             `execute_task_buffered` or an operator `next` path (plus the\n\
             columnar kernels batch.rs/column.rs), per-iteration allocation\n\
             multiplies by the row count: `Vec::new()`/`vec![...]`,\n\
             `.collect()`, `.clone()` (Arc/schema handles exempt),\n\
             `format!`, and `.push` into a vector whose initializer lacked\n\
             `with_capacity`. Every suggestion starts with `reuse-buffer:`\n\
             and names the hoisted/pre-sized alternative.\n\
             \n\
             Scope: crates/engine."
        }
        LintId::L15 => {
            "L15 · narrowing casts on measured values\n\
             \n\
             `as` conversions are silently lossy: `cost as f32` rounds\n\
             money, `bytes as u32` wraps at 4 GiB. On values the L12 unit\n\
             lattice types as usd/seconds/bytes/rows, a cast to\n\
             u8/u16/u32/i8/i16/i32/f32 is flagged; keep u64/i64/f64 or use\n\
             an explicit checked conversion. `count` values are exempt\n\
             (narrowing small cardinalities for indexing is ubiquitous),\n\
             as are widening casts.\n\
             \n\
             Scope: everywhere except crates/bench."
        }
        LintId::L16 => {
            "L16 · pooled buffers must be recycled\n\
             \n\
             The kernels draw scratch space from `ScratchArena` in\n\
             checkout/recycle pairs (checkout_idx/recycle_idx,\n\
             checkout_mask/recycle_mask, checkout_bytes/recycle_bytes). A\n\
             checkout without a matching recycle in the same function drops\n\
             the buffer instead of returning it: the pool degrades to a\n\
             plain allocator and the engine.scratch_reuses_total counter\n\
             goes flat. Checkout and recycle call sites must balance per\n\
             buffer type within each function; a genuine ownership transfer\n\
             carries an allow comment naming where the recycle happens.\n\
             \n\
             Scope: crates/engine, except kernels/pool.rs (the pool's own\n\
             internals)."
        }
        LintId::L17 => {
            "L17 · phase discipline\n\
             \n\
             The byte-identical-at-any-worker-count guarantee (DESIGN §9)\n\
             rests on a two-phase protocol: tasks compute concurrently into\n\
             private buffers/shards, and the executor publishes them serially\n\
             at the stage barrier in task-index order. Every fn BFS-reachable\n\
             from `execute_task_buffered` is parallel-phase code; a direct\n\
             write to a shared registry there — `telemetry.merge(&shard)`,\n\
             `registry.absorb(...)`, a `CostLedger` `.charge(...)` /\n\
             `.try_charge(...)` / `.charge_requests(...)`, or a shuffle\n\
             `.write(...)` publication — commits in thread-scheduling order\n\
             and breaks the guarantee. Buffer into the per-task shard (or the\n\
             BufferedTask write list) and let the serial barrier publish.\n\
             \n\
             Scope: crates/engine, crates/core, crates/cloud\n\
             (crates/telemetry and crates/faults define the shard/merge\n\
             APIs and are exempt)."
        }
        LintId::L18 => {
            "L18 · keyed-draw completeness\n\
             \n\
             A draw method with a `_keyed` twin exists precisely because the\n\
             sequential form is unsafe in the parallel phase. This rule scans\n\
             every fn BFS-reachable from `execute_task_buffered` for method\n\
             calls `.m(...)` where a fn `m_keyed` exists anywhere in the\n\
             workspace index (plus the FaultInjector builtins), and flags the\n\
             unkeyed call. Subsumes the old L9 hardcoded entry-point list:\n\
             adding a keyed twin automatically extends enforcement to its\n\
             base draw. The fix — substituting the twin and keying by\n\
             `op_key(...)` over the operation's stable identity — is\n\
             machine-applicable via `cackle-lint fix`.\n\
             \n\
             Scope: crates/engine, crates/core, crates/cloud (crates/faults\n\
             is exempt)."
        }
        LintId::L19 => {
            "L19 · purity contracts\n\
             \n\
             `// cackle-lint: pure(param, ...)` on the line above a fn\n\
             declares that the fn is a pure function of the listed\n\
             parameters (`self` may be listed to permit reads of own\n\
             fields). The env pack's keyed-draw artifacts (DESIGN §14) rely\n\
             on this: `vm_traits(seed, vm)` must depend on nothing else, or\n\
             worker count leaks into the draw. The dataflow layer verifies\n\
             four clauses: (a) no reads of `static mut` items; (b) no\n\
             interior-mutability calls (lock, borrow_mut, atomic store/\n\
             fetch_*/compare_exchange); (c) every workspace callee is itself\n\
             `pure(...)`-annotated (PRNG intrinsics like gen_range /\n\
             splitmix64 / seed_from_u64 are the trusted leaves); (d) every\n\
             argument of a `keyed` / `keyed_stream` call derives only from\n\
             declared parameters, seed/salt-named constants, or own fields\n\
             when `self` is declared. Annotations naming a parameter the fn\n\
             does not have are flagged too; syntactically malformed\n\
             annotations are SUP hard errors.\n\
             \n\
             Scope: everywhere except crates/bench."
        }
        LintId::Sup => {
            "SUP · malformed suppression or annotation\n\
             \n\
             A `// cackle-lint: allow(...)` / `unit(...)` / `pure(...)`\n\
             comment that fails to parse — unknown rule id, trailing comma,\n\
             duplicate entry, empty list, or missing `)` — used to be\n\
             silently ignored, leaving the finding it meant to suppress\n\
             active (or worse, leaving a typo'd annotation silently dead).\n\
             Malformed cackle-lint comments are hard errors. SUP itself\n\
             cannot be suppressed."
        }
    }
}
