//! L11 · ledger hygiene (subsumes the retired, path-scoped L4).
//!
//! Dollars are minted in `Pricing` and accumulated in `CostLedger`;
//! everywhere else money only moves, it is never computed. Two checks:
//!
//! (a) arithmetic on a cost-named binding (`dollar`/`cost`/`price`/
//!     `usd` in the identifier). `*`, `/`, `%`, compound assignment,
//!     and `==` are always wrong outside the billing layer; `+` and `-`
//!     are allowed when BOTH operands are cost-named — summing or
//!     diffing already-minted dollars (`max_cost - min_cost`) is
//!     legitimate bookkeeping, scaling them (`cost * n`) is minting.
//!
//! (b) a `*` or `/` at the top level of a `.charge(...)` /
//!     `.try_charge(...)` / `.charge_requests(...)` argument list:
//!     computing the amount at the call site is a rate formula that
//!     belongs in a Pricing method.

use super::RawFinding;
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::parser::ParsedFile;
use crate::LintId;

const ALWAYS_BAD: [&str; 8] = ["*", "/", "%", "+=", "-=", "*=", "/=", "=="];
const SUM_OPS: [&str; 2] = ["+", "-"];
const CHARGE_METHODS: [&str; 3] = ["charge", "try_charge", "charge_requests"];

fn is_cost_named(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    ["dollar", "cost", "price", "usd"]
        .iter()
        .any(|k| lower.contains(k))
}

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        let p = &file.parsed;
        let toks = &p.toks;
        for i in 0..toks.len() {
            // (a) arithmetic adjacent to a cost-named identifier.
            if toks[i].kind == TokKind::Ident && is_cost_named(&toks[i].text) {
                let next = toks.get(i + 1).map(|t| t.punct()).unwrap_or("");
                let prev = if i > 0 { toks[i - 1].punct() } else { "" };
                let mut flag_op = None;
                if ALWAYS_BAD.contains(&next) || ALWAYS_BAD.contains(&prev) {
                    flag_op = Some(if ALWAYS_BAD.contains(&next) {
                        next
                    } else {
                        prev
                    });
                } else if SUM_OPS.contains(&next) {
                    // `cost + x`: allowed only when x is cost-named too.
                    if !right_operand(p, i + 1).is_some_and(|n| is_cost_named(&n)) {
                        flag_op = Some(next);
                    }
                } else if SUM_OPS.contains(&prev) {
                    // `x + cost`: allowed only when x is cost-named too.
                    if !left_operand(p, i - 1).is_some_and(|n| is_cost_named(&n)) {
                        flag_op = Some(prev);
                    }
                }
                if let Some(op) = flag_op {
                    out.push(RawFinding {
                        fix: Vec::new(),
                        file: fi,
                        tok: i,
                        id: LintId::L11,
                        message: format!(
                            "raw `{op}` arithmetic on cost-named `{}` outside the billing layer",
                            toks[i].text
                        ),
                        suggestion: "route dollars through CostLedger; mint rates in Pricing"
                            .into(),
                    });
                }
            }

            // (b) price computed inside a charge call's arguments.
            if CHARGE_METHODS.contains(&toks[i].ident())
                && i > 0
                && toks[i - 1].punct() == "."
                && toks.get(i + 1).map(|t| t.punct()) == Some("(")
            {
                let Some(args) = p.call_args(i + 1) else {
                    continue;
                };
                for (lo, hi) in args {
                    let mut j = lo;
                    while j <= hi {
                        let pt = toks[j].punct();
                        if matches!(pt, "(" | "[" | "{") {
                            // Nested groups (inner calls) are that
                            // callee's business.
                            j = p.close_of(j).filter(|&c| c <= hi).unwrap_or(hi);
                        } else if pt == "*" || pt == "/" {
                            // Deref `*x` has no left operand; only
                            // binary uses are rate formulas.
                            let has_left = j > lo
                                && (toks[j - 1].kind != TokKind::Punct
                                    || matches!(toks[j - 1].punct(), ")" | "]"));
                            if has_left {
                                out.push(RawFinding {
                                    fix: Vec::new(),
                                    file: fi,
                                    tok: j,
                                    id: LintId::L11,
                                    message: format!(
                                        "`{pt}` inside `.{}(...)` arguments computes a price \
                                         at the call site",
                                        toks[i].text
                                    ),
                                    suggestion: "move the formula into a Pricing method and \
                                                 charge its result"
                                        .into(),
                                });
                                break;
                            }
                        }
                        j += 1;
                    }
                }
            }
        }
    }
}

/// Terminal identifier of the operand to the RIGHT of the operator at
/// `op`: `+ self.vm_cost` → `vm_cost`; `+ f(x)` → None.
fn right_operand(p: &ParsedFile, op: usize) -> Option<String> {
    let toks = &p.toks;
    let mut j = op + 1;
    // Leading sign/borrow/deref are transparent.
    while toks.get(j).map(|t| t.punct()) == Some("&") || toks.get(j).map(|t| t.punct()) == Some("*")
    {
        j += 1;
    }
    let mut name: Option<String> = None;
    loop {
        let t = toks.get(j)?;
        if t.kind != TokKind::Ident {
            return name;
        }
        // A call right operand (`f(...)`) is opaque.
        if toks.get(j + 1).map(|t| t.punct()) == Some("(") {
            return None;
        }
        name = Some(t.text.clone());
        if toks.get(j + 1).map(|t| t.punct()) == Some(".") {
            j += 2;
            continue;
        }
        return name;
    }
}

/// Terminal identifier of the operand to the LEFT of the operator at
/// `op`: `self.vm_cost +` → `vm_cost`; `f(x) +` → None.
fn left_operand(p: &ParsedFile, op: usize) -> Option<String> {
    if op == 0 {
        return None;
    }
    let t = &p.toks[op - 1];
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ws = Workspace::build(vec![("crates/core/src/x.rs".to_string(), src.to_string())]);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn scaling_and_equality_flagged() {
        assert_eq!(
            findings("fn f(n: u64, put_cost: f64) -> f64 { n as f64 * put_cost }").len(),
            1
        );
        assert_eq!(findings("fn f(cost: f64) -> bool { cost == 1.0 }").len(), 1);
        assert_eq!(findings("fn f(mut d: f64, c: f64) { d += c; }").len(), 0);
        assert_eq!(
            findings("fn f(mut dollars: f64, c: f64) { dollars += c; }").len(),
            1
        );
    }

    #[test]
    fn cost_plus_cost_allowed() {
        assert!(findings("fn f(a_cost: f64, b_cost: f64) -> f64 { a_cost + b_cost }").is_empty());
        assert!(findings("fn f(&self) -> f64 { self.max_cost - self.min_cost }").is_empty());
        assert!(findings(
            "fn f(&self) -> f64 { self.vm_cost + self.store_cost + self.shuffle_cost }"
        )
        .is_empty());
    }

    #[test]
    fn cost_plus_noncost_flagged() {
        let f = findings("fn f(total_cost: f64, x: f64) -> f64 { total_cost + x }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f2 = findings("fn f(total_cost: f64) -> f64 { total_cost + rate() }");
        assert_eq!(f2.len(), 1, "{f2:?}");
    }

    #[test]
    fn charge_args_with_rate_formula_flagged() {
        let f =
            findings("fn f(&self, led: &Ledger) { led.charge(cat, self.rate_per_hour() * h); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("computes a price"));
    }

    #[test]
    fn charge_with_precomputed_amount_clean() {
        assert!(
            findings("fn f(led: &Ledger, amount: f64) { led.charge(cat, amount); }").is_empty()
        );
        // `-` in charge args is movement, not minting.
        assert!(findings(
            "fn f(led: &Ledger, total: u64, n: u64) { led.charge_requests(cat, total - n, unit); }"
        )
        .is_empty());
        // A nested call may multiply internally — that callee is linted
        // at its own definition site.
        assert!(findings("fn f(led: &Ledger) { led.charge(cat, p.vm_cost(cat, d)); }").is_empty());
    }
}
