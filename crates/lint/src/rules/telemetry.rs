//! L10 · telemetry metric-name schema conformance.
//!
//! Registry write methods take the metric name as their first argument.
//! That argument must be a single string literal matching the DESIGN §7
//! grammar — `component.metric_name`, lowercase snake segments, a known
//! component prefix — so the set of series a run emits is fixed at
//! compile time and the golden-dump diff stays meaningful. Arity
//! disambiguates same-named methods on other types (`Histogram::
//! observe(v)` is 1-arg, `Pcg32` range `sample(rng)` is 1-arg; the
//! registry's are 2- and 3-arg).

use super::RawFinding;
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::LintId;

/// Registry write methods and their argument counts.
const METHODS: [(&str, usize); 5] = [
    ("counter_add", 2),
    ("gauge_set", 2),
    ("observe", 2),
    ("observe_with_buckets", 3),
    ("sample", 3),
];

/// Component prefixes blessed by the DESIGN §7 table.
const PREFIXES: [&str; 14] = [
    "run",
    "meta",
    "engine",
    "pool",
    "store",
    "fault",
    "recovery",
    "fleet",
    "shuffle_fleet",
    "warehouse",
    "endpoint",
    "serve",
    "tenant",
    "env",
];

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        let p = &file.parsed;
        let toks = &p.toks;
        for i in 0..toks.len() {
            let Some(&(_, arity)) = METHODS.iter().find(|&&(m, _)| m == toks[i].ident()) else {
                continue;
            };
            // Method call: `.name(`.
            if i == 0 || toks[i - 1].punct() != "." {
                continue;
            }
            if toks.get(i + 1).map(|t| t.punct()) != Some("(") {
                continue;
            }
            let Some(args) = p.call_args(i + 1) else {
                continue;
            };
            if args.len() != arity {
                continue;
            }
            let (mut lo, hi) = args[0];
            // A leading `&` borrow is transparent.
            while lo < hi && toks[lo].punct() == "&" {
                lo += 1;
            }
            let method = toks[i].text.clone();
            if lo == hi && toks[lo].kind == TokKind::Str {
                let name = &toks[lo].text;
                if let Some(problem) = grammar_problem(name) {
                    out.push(RawFinding {
                        fix: Vec::new(),
                        file: fi,
                        tok: i,
                        id: LintId::L10,
                        message: format!("metric name \"{name}\" passed to `.{method}` {problem}"),
                        suggestion: "use `component.metric_name`: lowercase snake segments, \
                                     component prefix from the DESIGN §7 table"
                            .into(),
                    });
                }
                continue;
            }
            let built_by_format = (lo..=hi).any(|j| {
                toks[j].ident() == "format" && toks.get(j + 1).map(|t| t.punct()) == Some("!")
            });
            let (what, fix) = if built_by_format {
                (
                    "is format!-built",
                    "select from a static table of literal names instead of formatting",
                )
            } else {
                (
                    "is not a string literal",
                    "pass a literal `component.metric_name` (or add an allow comment if the \
                     name is provably from a literal table)",
                )
            };
            out.push(RawFinding {
                fix: Vec::new(),
                file: fi,
                tok: i,
                id: LintId::L10,
                message: format!("metric name passed to `.{method}` {what}"),
                suggestion: fix.into(),
            });
        }
    }
}

/// Why `name` violates the `component.metric_name` grammar, if it does.
fn grammar_problem(name: &str) -> Option<String> {
    let segs: Vec<&str> = name.split('.').collect();
    if segs.len() < 2 {
        return Some("has no `component.` prefix".into());
    }
    for s in &segs {
        let mut chars = s.chars();
        let head_ok = chars.next().is_some_and(|c| c.is_ascii_lowercase());
        let tail_ok = chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !head_ok || !tail_ok {
            return Some(format!("has a malformed segment `{s}`"));
        }
    }
    if !PREFIXES.contains(&segs[0]) {
        return Some(format!(
            "has unknown component prefix `{}` (not in the DESIGN §7 table)",
            segs[0]
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ws = Workspace::build(vec![(
            "crates/telemetry/src/x.rs".to_string(),
            src.to_string(),
        )]);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn conforming_literals_clean() {
        let f = findings(
            "fn f(t: &Registry) { t.counter_add(\"store.get_requests_total\", 1);\n\
             t.gauge_set(\"pool.ready_vms\", 3.0);\n\
             t.sample(\"fleet.vm_billed_seconds\", 10, 1.0);\n\
             t.observe_with_buckets(\"engine.stage_ms\", 5.0, &[1.0, 10.0]); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn format_built_name_flagged() {
        let f = findings(
            "fn f(t: &Registry, c: &str) { t.counter_add(&format!(\"{}.vms_total\", c), 1); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("format!-built"));
    }

    #[test]
    fn bad_grammar_flagged() {
        assert_eq!(
            findings("fn f(t: &T) { t.counter_add(\"noprefix\", 1); }").len(),
            1
        );
        assert_eq!(
            findings("fn f(t: &T) { t.counter_add(\"Store.Get\", 1); }").len(),
            1
        );
        assert_eq!(
            findings("fn f(t: &T) { t.counter_add(\"mystery.thing_total\", 1); }").len(),
            1
        );
    }

    #[test]
    fn serving_layer_prefixes_blessed() {
        let f = findings(
            "fn f(t: &Registry) { t.counter_add(\"serve.admitted_total\", 1);\n\
             t.gauge_set(\"tenant.active\", 3.0);\n\
             t.sample(\"serve.queue_depth\", 1000, 2.0); }",
        );
        assert!(f.is_empty(), "{f:?}");
        // Near-miss prefixes still fail the table lookup.
        let near = findings("fn f(t: &T) { t.counter_add(\"serv.admitted_total\", 1); }");
        assert_eq!(near.len(), 1, "{near:?}");
        assert!(near[0].message.contains("`serv`"), "{near:?}");
    }

    #[test]
    fn environment_prefix_blessed() {
        let f = findings(
            "fn f(t: &Registry) { t.counter_add(\"env.storm_reclaims_total\", 1);\n\
             t.counter_add(\"env.egress_bytes_total\", 512);\n\
             t.observe_with_buckets(\"env.vm_slowdown\", 2.0, &[1.0, 2.0, 4.0]); }",
        );
        assert!(f.is_empty(), "{f:?}");
        // Near-miss prefixes still fail the table lookup.
        let near = findings("fn f(t: &T) { t.counter_add(\"en.vms_total\", 1); }");
        assert_eq!(near.len(), 1, "{near:?}");
        assert!(near[0].message.contains("`en`"), "{near:?}");
        // format!-building an env name is flagged like any other.
        let built = findings(
            "fn f(t: &T, region: &str) { t.counter_add(&format!(\"env.{}_vms_total\", region), 1); }",
        );
        assert_eq!(built.len(), 1, "{built:?}");
        assert!(built[0].message.contains("format!-built"));
    }

    #[test]
    fn non_literal_variable_flagged() {
        let f = findings("fn f(t: &T, name: &str) { t.counter_add(name, 1); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not a string literal"));
    }

    #[test]
    fn one_arg_observe_is_histogram_not_registry() {
        // `Histogram::observe(v)` takes one argument — not a metric write.
        let f = findings("fn f(h: &mut Histogram, v: f64) { h.observe(v); }");
        assert!(f.is_empty(), "{f:?}");
        // Same for a 1-arg `sample` (PRNG ranges).
        let f2 = findings("fn f(r: &Range, rng: &mut Pcg32) { r.sample(rng); }");
        assert!(f2.is_empty(), "{f2:?}");
    }
}
