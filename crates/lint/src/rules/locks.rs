//! L7 · lock-order cycle detection (static deadlock detector).
//!
//! Per function body, find `Mutex`/`RwLock` acquisitions
//! (`.lock()` / `.read()` / `.write()` on a binding the index knows is
//! a lock) and compute each guard's live range: a `let`-bound guard
//! lives to the end of its enclosing block, a temporary to the end of
//! its statement. Every acquisition (or call whose callee transitively
//! acquires) inside that range contributes an `acquired-before` edge.
//! Edges are collected globally — lock identity is `file_stem.name` —
//! and any strongly-connected component with two or more locks is a
//! potential deadlock: two call paths can each hold one lock of the
//! cycle while waiting for the next.
//!
//! Self-edges (`a` before `a`) are discarded: at name granularity they
//! are usually distinct instances (`slots[i]` vs `slots[j]`), and
//! re-entrant self-deadlock is better caught by review than by a
//! name-approximate graph.

use super::RawFinding;
use crate::index::Workspace;
use crate::parser::ParsedFile;
use crate::LintId;
use std::collections::{BTreeMap, BTreeSet};

const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// One acquisition site inside a fn body.
struct Acquisition {
    /// Token index of the method name (`lock`/`read`/`write`).
    tok: usize,
    /// Qualified lock identity (`shuffle.stats`).
    lock: String,
    /// Last token index at which the guard is live.
    live_end: usize,
}

/// One `acquired-before` edge occurrence, anchored at a source site.
struct EdgeSite {
    file: usize,
    tok: usize,
    from: String,
    to: String,
    /// Empty for a direct acquisition; the callee name when the second
    /// lock is reached through a call.
    via: String,
}

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    // Acquisitions per workspace fn id.
    let acqs: Vec<Vec<Acquisition>> = ws
        .index
        .fns
        .iter()
        .map(|f| {
            let file = &ws.files[f.file];
            match file.parsed.fns[f.item].body {
                Some(body) => {
                    acquisitions(&file.parsed, &ws.index.lock_names[f.file], &file.stem, body)
                }
                None => Vec::new(),
            }
        })
        .collect();

    // Transitive acquisitions per fn id (fixed point over the call
    // graph; the graph may contain cycles).
    let direct: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|a| a.iter().map(|x| x.lock.clone()).collect())
        .collect();
    let mut trans = direct.clone();
    loop {
        let mut changed = false;
        for id in 0..trans.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in ws.callees(id) {
                for l in &trans[callee] {
                    if !trans[id].contains(l) {
                        add.insert(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                trans[id].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edge occurrences: for each acquisition, everything acquired while
    // its guard is live.
    let mut edges: Vec<EdgeSite> = Vec::new();
    for (id, f) in ws.index.fns.iter().enumerate() {
        for a in &acqs[id] {
            for b in &acqs[id] {
                if b.tok > a.tok && b.tok <= a.live_end && b.lock != a.lock {
                    edges.push(EdgeSite {
                        file: f.file,
                        tok: a.tok,
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        via: String::new(),
                    });
                }
            }
            for call in &ws.index.fns[id].calls {
                if call.name_tok <= a.tok || call.name_tok > a.live_end {
                    continue;
                }
                if !Workspace::edge_name_kept(&call.name) {
                    continue;
                }
                let Some(callee_ids) = ws.index.by_name.get(&call.name) else {
                    continue;
                };
                for &callee in callee_ids {
                    for l in &trans[callee] {
                        if *l != a.lock {
                            edges.push(EdgeSite {
                                file: f.file,
                                tok: a.tok,
                                from: a.lock.clone(),
                                to: l.clone(),
                                via: call.name.clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    // Strongly-connected components of the acquired-before digraph.
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        graph.entry(&e.from).or_default().insert(&e.to);
        graph.entry(&e.to).or_default();
    }
    let comp = scc(&graph);

    // A cyclic edge is one whose endpoints share a multi-node SCC.
    let mut reported: BTreeSet<(usize, usize, String, String)> = BTreeSet::new();
    for e in &edges {
        let (Some(&ca), Some(&cb)) = (comp.get(e.from.as_str()), comp.get(e.to.as_str())) else {
            continue;
        };
        if ca != cb {
            continue;
        }
        if !reported.insert((e.file, e.tok, e.from.clone(), e.to.clone())) {
            continue;
        }
        let how = if e.via.is_empty() {
            "directly".to_string()
        } else {
            format!("via call to `{}`", e.via)
        };
        out.push(RawFinding {
            fix: Vec::new(),
            file: e.file,
            tok: e.tok,
            id: LintId::L7,
            message: format!(
                "lock-order cycle: `{}` is held while `{}` is acquired ({how}), but another \
                 path acquires them in the opposite order",
                e.from, e.to
            ),
            suggestion: "acquire locks in one global order, or drop the first guard before \
                         taking the second"
                .into(),
        });
    }
}

/// Acquisition sites in `body`: `.lock()` / `.read()` / `.write()` whose
/// receiver's terminal name is a known lock binding of this file.
fn acquisitions(
    p: &ParsedFile,
    lock_names: &BTreeSet<String>,
    stem: &str,
    body: (usize, usize),
) -> Vec<Acquisition> {
    let toks = &p.toks;
    let mut out = Vec::new();
    let hi = body.1.min(toks.len().saturating_sub(1));
    for i in body.0..=hi {
        if !ACQUIRE_METHODS.contains(&toks[i].ident()) {
            continue;
        }
        if toks.get(i + 1).map(|t| t.punct()) != Some("(") {
            continue;
        }
        if i == 0 || toks[i - 1].punct() != "." {
            continue;
        }
        let Some(name) = receiver_name(p, i - 1) else {
            continue;
        };
        if !lock_names.contains(&name) {
            continue;
        }
        let live_end = if p.statement_is_let_bound(i) {
            p.scope_end(i)
        } else {
            p.statement_end(i)
        };
        out.push(Acquisition {
            tok: i,
            lock: format!("{stem}.{name}"),
            live_end,
        });
    }
    out
}

/// Terminal identifier of the receiver chain ending at the `.` token
/// `dot`: `stats.lock()` → `stats`; `self.slots[i].lock()` → `slots`;
/// `make().lock()` → None (unresolvable).
fn receiver_name(p: &ParsedFile, dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut r = dot - 1;
    // Skip a trailing index group `[...]`.
    if p.toks[r].punct() == "]" {
        let open = open_of(p, r)?;
        if open == 0 {
            return None;
        }
        r = open - 1;
    }
    let t = &p.toks[r];
    if t.ident().is_empty() {
        return None;
    }
    Some(t.text.clone())
}

/// The matching open delimiter for the close delimiter at `close`.
fn open_of(p: &ParsedFile, close: usize) -> Option<usize> {
    (0..close).rev().find(|&k| p.close_of(k) == Some(close))
}

/// Map each node to a component id; nodes in the same multi-node SCC (a
/// cycle) share an id distinct from every singleton's. Kosaraju over a
/// BTreeMap graph for determinism.
fn scc<'a>(graph: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> BTreeMap<&'a str, usize> {
    // First pass: finish order on the forward graph.
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in graph.keys() {
        if seen.contains(start) {
            continue;
        }
        // Iterative DFS with an explicit "exit" marker.
        let mut stack: Vec<(&str, bool)> = vec![(start, false)];
        while let Some((node, exit)) = stack.pop() {
            if exit {
                order.push(node);
                continue;
            }
            if !seen.insert(node) {
                continue;
            }
            stack.push((node, true));
            if let Some(next) = graph.get(node) {
                for &n in next.iter().rev() {
                    if !seen.contains(n) {
                        stack.push((n, false));
                    }
                }
            }
        }
    }
    // Reverse graph.
    let mut rev: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (&from, tos) in graph {
        rev.entry(from).or_default();
        for &to in tos {
            rev.entry(to).or_default().insert(from);
        }
    }
    // Second pass: components in reverse finish order.
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut next_id = 0usize;
    for &start in order.iter().rev() {
        if comp.contains_key(start) {
            continue;
        }
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if comp.contains_key(node) {
                continue;
            }
            comp.insert(node, next_id);
            if let Some(prev) = rev.get(node) {
                stack.extend(prev.iter().copied().filter(|n| !comp.contains_key(*n)));
            }
        }
        next_id += 1;
    }
    // Collapse: only multi-node components matter to callers, but the
    // id mapping already distinguishes them (singletons never share).
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let mut out = Vec::new();
        check(&ws, &mut out);
        out.retain(|f| f.id == LintId::L7);
        out
    }

    #[test]
    fn opposite_orders_in_one_file_cycle() {
        let f = findings(&[(
            "crates/engine/src/pair.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn fwd(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn bwd(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }",
        )]);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = findings(&[(
            "crates/engine/src/pair.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn two(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cycle_through_call_graph_detected() {
        let f = findings(&[
            (
                "crates/engine/src/x.rs",
                "struct X { a: Mutex<u32> }\n\
                 impl X { fn fwd(&self) { let g = self.a.lock(); takes_b(); } }",
            ),
            (
                "crates/engine/src/y.rs",
                "struct Y { b: Mutex<u32> }\n\
                 impl Y { fn takes_b(&self) { let g = self.b.lock(); }\n\
                          fn bwd(&self) { let g = self.b.lock(); takes_a(); }\n\
                          fn takes_a(&self) { lock_a(); } }\n\
                 fn lock_a() {}",
            ),
            ("crates/engine/src/z.rs", "struct Z { a2: Mutex<u32> }"),
        ]);
        // x.a -> y.b (via takes_b) and y.b -> x.a would need lock_a to
        // actually lock; it does not, so only if we close the loop:
        let f2 = findings(&[
            (
                "crates/engine/src/x.rs",
                "struct X { a: Mutex<u32> }\n\
                 impl X { fn fwd(&self) { let g = self.a.lock(); takes_b(); }\n\
                          fn lock_a(&self) { let g = self.a.lock(); } }",
            ),
            (
                "crates/engine/src/y.rs",
                "struct Y { b: Mutex<u32> }\n\
                 impl Y { fn takes_b(&self) { let g = self.b.lock(); }\n\
                          fn bwd(&self) { let g = self.b.lock(); lock_a(); } }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(f2.len(), 2, "{f2:?}");
        assert!(f2
            .iter()
            .any(|x| x.message.contains("via call to `takes_b`")));
    }

    #[test]
    fn statement_scoped_temporary_does_not_overlap() {
        // `*self.a.lock() += 1;` releases at the statement end, so the
        // later `b` acquisition overlaps nothing.
        let f = findings(&[(
            "crates/engine/src/pair.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn fwd(&self) { *self.a.lock() += 1; let h = self.b.lock(); }\n\
               fn bwd(&self) { *self.b.lock() += 1; let h = self.a.lock(); }\n\
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_receiver_and_index_receiver() {
        // `slots[i].lock()` resolves to `slots`; `make().lock()` is
        // skipped.
        let f = findings(&[(
            "crates/engine/src/slots.rs",
            "struct S { slots: Vec<Mutex<u32>>, b: Mutex<u32> }\n\
             impl S {\n\
               fn fwd(&self) { let g = self.slots[0].lock(); let h = self.b.lock(); }\n\
               fn bwd(&self) { let g = self.b.lock(); let h = self.slots[1].lock(); }\n\
             }",
        )]);
        // slots is typed Vec<Mutex<..>> — the `:` scan finds Mutex within
        // 8 tokens, so it IS a lock binding; cycle slots<->b flagged.
        assert_eq!(f.len(), 2, "{f:?}");
    }
}
