//! L18 · keyed-draw completeness: parallel-phase draws with a
//! `_keyed` twin must use it.
//!
//! A draw method grows a `_keyed` twin precisely because its
//! sequential form is unsafe under `execute_task_buffered`'s worker
//! pool — the twin derives the draw from the operation's identity
//! (`op_key(...)`) instead of arrival order. This rule closes the
//! loop: any method call `.m(...)` inside the BFS-reachable parallel
//! phase where an `m_keyed` fn exists — anywhere in the workspace
//! index, or among the `FaultInjector` builtins — is flagged.
//! Subsumes L9's hardcoded entry-point list: add a keyed twin and its
//! base draw is enforced automatically, no lint change needed.
//!
//! The finding carries a machine-applicable fix (`cackle-lint fix`):
//! rename the call to the twin and append an
//! `op_key(b"TODO: ...")` key argument. The placeholder key is
//! deliberate — a stable operation identity is a human decision — but
//! the mechanical part (twin name, argument plumbing) is exact.

use super::RawFinding;
use crate::fix::Edit;
use crate::index::Workspace;
use crate::LintId;

/// Draws whose keyed twins live on `FaultInjector` in crates/faults —
/// listed here because fixture workspaces (and the scope-exempt
/// faults crate itself) do not re-declare them, yet calls against the
/// real injector must still be enforced.
const KNOWN_TWINS: [&str; 3] = [
    "store_attempts",
    "transport_write_fallback",
    "transport_read_retries",
];

/// The placeholder key argument the fix inserts.
const KEY_PLACEHOLDER: &str = "op_key(b\"TODO: stable operation identity\")";

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    let reachable = ws.reachable_from("execute_task_buffered");
    if reachable.is_empty() {
        return;
    }
    for &id in &reachable {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        for call in &f.calls {
            if call.name.ends_with("_keyed") {
                continue;
            }
            // Method calls only: the draw APIs are `&self` methods.
            if call.name_tok == 0 || p.toks[call.name_tok - 1].punct() != "." {
                continue;
            }
            let twin = format!("{}_keyed", call.name);
            let has_twin =
                KNOWN_TWINS.contains(&call.name.as_str()) || ws.index.by_name.contains_key(&twin);
            if !has_twin {
                continue;
            }
            // Mechanical rewrite: substitute the twin name and append
            // the key argument before the closing paren.
            let mut fix = vec![Edit::replace(
                p.toks[call.name_tok].span.0,
                p.toks[call.name_tok].span.1,
                twin.clone(),
            )];
            if let Some(close) = p.close_of(call.open) {
                let has_args = p.call_args(call.open).is_some_and(|a| !a.is_empty());
                let arg = if has_args {
                    format!(", {KEY_PLACEHOLDER}")
                } else {
                    KEY_PLACEHOLDER.to_string()
                };
                fix.push(Edit::insert(p.toks[close].span.0, arg));
            }
            out.push(RawFinding {
                file: f.file,
                tok: call.name_tok,
                id: LintId::L18,
                message: format!(
                    "sequential draw `.{}(...)` has a keyed twin `{}` and is reachable \
                     from `execute_task_buffered`'s parallel phase (via fn `{}`)",
                    call.name,
                    twin,
                    ws.fn_item(id).qualified
                ),
                suggestion: format!(
                    "call `.{twin}(...)` keyed by `op_key(...)` over the operation's \
                     stable identity"
                ),
                fix,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fix;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn builtin_twin_draw_reached_through_helper_flagged_with_fix() {
        let helper = "pub fn helper(&self) { let n = self.faults.store_attempts(op); }";
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered() { helper(); }",
            ),
            ("crates/core/src/system.rs", helper),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L18);
        assert!(f[0].message.contains("store_attempts_keyed"));
        assert!(f[0].message.contains("via fn `helper`"));
        // The attached fix rewrites the call mechanically.
        let fixed = fix::apply(helper, &f[0].fix).unwrap();
        assert_eq!(
            fixed,
            "pub fn helper(&self) { let n = self.faults.store_attempts_keyed(op, \
             op_key(b\"TODO: stable operation identity\")); }"
        );
    }

    #[test]
    fn twin_discovered_from_workspace_index() {
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered(&self) { self.env.custom_draw(x); }",
            ),
            (
                "crates/faults/src/env.rs",
                "pub fn custom_draw_keyed(&self, x: u64, key: u64) -> u64 { key }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("custom_draw_keyed"));
    }

    #[test]
    fn zero_arg_base_gets_key_without_leading_comma() {
        let src = "pub fn execute_task_buffered(&self) { self.faults.transport_write_fallback(); }";
        let f = findings(&[("crates/engine/src/task.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        let fixed = fix::apply(src, &f[0].fix).unwrap();
        assert_eq!(
            fixed,
            "pub fn execute_task_buffered(&self) { \
             self.faults.transport_write_fallback_keyed(\
             op_key(b\"TODO: stable operation identity\")); }"
        );
    }

    #[test]
    fn keyed_call_twinless_draw_and_unreachable_code_clean() {
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered(&self) {\n\
                 self.faults.store_attempts_keyed(op, op_key(k));\n\
                 self.faults.store_error(op);\n\
                 }",
            ),
            (
                "crates/core/src/system.rs",
                "pub fn serial_only(&self) { self.faults.store_attempts(op); }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }
}
