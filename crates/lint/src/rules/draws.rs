//! L9 · sequential fault draws reachable from the parallel phase.
//!
//! `FaultInjector`'s unsuffixed draw methods consume a PRNG stream in
//! call order; under `execute_task_buffered`'s worker pool, call order
//! is scheduler-dependent, so every such draw — and every fault outcome
//! derived from the stream afterwards — varies between runs. This rule
//! computes the set of fns reachable from any `execute_task_buffered`
//! over the approximate call graph and flags sequential draw method
//! calls inside them. The fix is the `*_keyed` twin with
//! `op_key(...)`, which derives the draw from operation identity.

use super::RawFinding;
use crate::index::Workspace;
use crate::LintId;

/// Sequential-stream draw methods and their keyed replacements (empty
/// when no keyed twin exists yet — then the draw must move out of the
/// parallel phase).
const SEQ_DRAWS: [(&str, &str); 8] = [
    ("store_attempts", "store_attempts_keyed"),
    ("transport_write_fallback", "transport_write_fallback_keyed"),
    ("transport_read_retries", "transport_read_retries_keyed"),
    ("vm_interrupt", ""),
    ("pool_invoke", ""),
    ("store_error", ""),
    ("transport_drop", ""),
    ("straggler", ""),
];

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    let reachable = ws.reachable_from("execute_task_buffered");
    if reachable.is_empty() {
        return;
    }
    for &id in &reachable {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        for call in &f.calls {
            let Some(&(_, keyed)) = SEQ_DRAWS.iter().find(|&&(n, _)| n == call.name) else {
                continue;
            };
            // Method calls only: a free fn of the same name is not an
            // injector draw.
            if call.name_tok == 0 || p.toks[call.name_tok - 1].punct() != "." {
                continue;
            }
            let suggestion = if keyed.is_empty() {
                "hoist the draw out of the parallel phase (or add a keyed variant)".to_string()
            } else {
                format!("use `.{keyed}(..., op_key(...))` so the draw is schedule-independent")
            };
            out.push(RawFinding {
                file: f.file,
                tok: call.name_tok,
                id: LintId::L9,
                message: format!(
                    "sequential fault draw `.{}()` is reachable from `execute_task_buffered`'s \
                     parallel phase (via fn `{}`)",
                    call.name,
                    ws.fn_item(id).qualified
                ),
                suggestion,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn draw_reached_through_helper_flagged() {
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered() { helper(); }",
            ),
            (
                "crates/core/src/system.rs",
                "pub fn helper(&self) { let n = self.faults.store_attempts(op); }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L9);
        assert!(f[0].suggestion.contains("store_attempts_keyed"));
    }

    #[test]
    fn keyed_draw_and_unreachable_sequential_draw_clean() {
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered() { \
                 let n = faults.store_attempts_keyed(op, op_key(k)); }",
            ),
            (
                "crates/core/src/system.rs",
                "pub fn serial_only(&self) { let n = self.faults.store_attempts(op); }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn free_fn_of_same_name_not_flagged() {
        let f = findings(&[(
            "crates/engine/src/task.rs",
            "pub fn execute_task_buffered() { let n = store_attempts(); }\n\
             fn store_attempts() -> u32 { 0 }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_root_no_findings() {
        let f = findings(&[(
            "crates/core/src/system.rs",
            "pub fn f(&self) { self.faults.store_attempts(op); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
