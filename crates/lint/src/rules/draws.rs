//! L9 · twinless sequential fault draws reachable from the parallel
//! phase.
//!
//! `FaultInjector`'s unsuffixed draw methods consume a PRNG stream in
//! call order; under `execute_task_buffered`'s worker pool, call order
//! is scheduler-dependent, so every such draw — and every fault outcome
//! derived from the stream afterwards — varies between runs. This rule
//! computes the set of fns reachable from any `execute_task_buffered`
//! over the approximate call graph and flags sequential draw method
//! calls inside them *for draws with no keyed twin* — the only fix is
//! to hoist the draw out of the parallel phase. Draws that do have a
//! `_keyed` twin are [`super::keyed`]'s job (L18), which discovers
//! twins from the workspace index instead of this hardcoded list.

use super::RawFinding;
use crate::index::Workspace;
use crate::LintId;

/// Sequential-stream lifecycle draws with no keyed replacement: inside
/// the parallel phase there is nothing to substitute, the call has to
/// move.
const SEQ_DRAWS: [&str; 5] = [
    "vm_interrupt",
    "pool_invoke",
    "store_error",
    "transport_drop",
    "straggler",
];

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    let reachable = ws.reachable_from("execute_task_buffered");
    if reachable.is_empty() {
        return;
    }
    for &id in &reachable {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        for call in &f.calls {
            if !SEQ_DRAWS.contains(&call.name.as_str()) {
                continue;
            }
            // Method calls only: a free fn of the same name is not an
            // injector draw.
            if call.name_tok == 0 || p.toks[call.name_tok - 1].punct() != "." {
                continue;
            }
            out.push(RawFinding {
                file: f.file,
                tok: call.name_tok,
                id: LintId::L9,
                message: format!(
                    "sequential fault draw `.{}()` is reachable from `execute_task_buffered`'s \
                     parallel phase (via fn `{}`)",
                    call.name,
                    ws.fn_item(id).qualified
                ),
                suggestion: "hoist the draw out of the parallel phase (or add a keyed variant)"
                    .to_string(),
                fix: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn twinless_draw_reached_through_helper_flagged() {
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered() { helper(); }",
            ),
            (
                "crates/core/src/system.rs",
                "pub fn helper(&self) { let e = self.faults.store_error(op); }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L9);
        assert!(f[0].message.contains("via fn `helper`"));
        assert!(f[0].suggestion.contains("hoist"));
    }

    #[test]
    fn twinned_draw_and_unreachable_sequential_draw_clean() {
        // `store_attempts` has a keyed twin, so it belongs to L18, not L9;
        // `store_error` outside the reachable set is fine too.
        let f = findings(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered() { \
                 let n = faults.store_attempts(op); }",
            ),
            (
                "crates/core/src/system.rs",
                "pub fn serial_only(&self) { let e = self.faults.store_error(op); }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn free_fn_of_same_name_not_flagged() {
        let f = findings(&[(
            "crates/engine/src/task.rs",
            "pub fn execute_task_buffered() { let e = store_error(); }\n\
             fn store_error() -> u32 { 0 }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_root_no_findings() {
        let f = findings(&[(
            "crates/core/src/system.rs",
            "pub fn f(&self) { self.faults.transport_drop(op); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
