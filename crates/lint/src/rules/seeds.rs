//! L13 · seed provenance.
//!
//! Reproducibility rests on every PRNG stream deriving from the
//! RunSpec seed (possibly through salt constants and `splitmix64`
//! expansion). This rule taint-tracks the argument of every
//! `Pcg32::seed_from_u64(...)` construction site through the
//! assignment graph and call summaries, and flags:
//!
//! * **literal seeds** — `seed_from_u64(42)` bakes schedule-independent
//!   randomness nobody can re-derive from a RunSpec;
//! * **re-seeding from derived state** — feeding a stream's *output*
//!   (`next_u64()`, `gen_range(...)`) back into a new stream couples
//!   the new stream to draw order, the exact coupling keyed streams
//!   exist to break;
//! * **unproven provenance** — the argument's sources contain neither a
//!   seed/salt/key-named identifier nor a call to a seed-derived
//!   helper. Thread the seed explicitly, or suppress with a
//!   justification when the derivation is genuinely out of reach.

use super::RawFinding;
use crate::dataflow::Flows;
use crate::index::Workspace;
use crate::LintId;

/// Stream-output methods: their results must never become seeds.
const DRAW_METHODS: [&str; 6] = [
    "next_u64",
    "next_u32",
    "gen_range",
    "gen_f64",
    "gen_bool",
    "gen_u32",
];

pub fn check(ws: &Workspace, fl: &Flows, out: &mut Vec<RawFinding>) {
    for id in 0..ws.index.fns.len() {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        for call in &f.calls {
            if call.name != "seed_from_u64" {
                continue;
            }
            let Some(args) = p.call_args(call.open) else {
                continue;
            };
            let [arg] = args[..] else {
                continue;
            };
            let srcs = fl.expr_sources(p, id, arg);
            if srcs.iter().any(|s| {
                s.strip_prefix("call:")
                    .is_some_and(|c| DRAW_METHODS.contains(&c))
            }) {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: f.file,
                    tok: call.name_tok,
                    id: LintId::L13,
                    message: "PRNG stream re-seeded from derived stream state (a draw feeds \
                              `seed_from_u64`)"
                        .into(),
                    suggestion: "derive sub-streams from the RunSpec seed with a salt \
                                 (`seed ^ SALT_X`, `splitmix64`), never from draws"
                        .into(),
                });
                continue;
            }
            if srcs.iter().any(|s| fl.source_is_seed_derived(ws, s)) {
                continue;
            }
            if srcs.is_empty() {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: f.file,
                    tok: call.name_tok,
                    id: LintId::L13,
                    message: "PRNG stream seeded from a literal".into(),
                    suggestion: "thread the RunSpec seed here (e.g. `spec.seed ^ SALT_X`) so \
                                 the stream is re-derivable from the spec"
                        .into(),
                });
                continue;
            }
            let mut shown: Vec<&str> = srcs.iter().map(|s| s.as_str()).take(3).collect();
            if srcs.len() > 3 {
                shown.push("...");
            }
            out.push(RawFinding {
                fix: Vec::new(),
                file: f.file,
                tok: call.name_tok,
                id: LintId::L13,
                message: format!(
                    "cannot prove this PRNG seed derives from the RunSpec seed \
                     (sources: {})",
                    shown.join(", ")
                ),
                suggestion: "derive the value from a `seed`/`salt`/`*_key` binding or a \
                             seed-derived helper; if the derivation is real but invisible \
                             to the analysis, add `// cackle-lint: allow(L13)` with why"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Flows;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let fl = Flows::build(&ws);
        let mut out = Vec::new();
        check(&ws, &fl, &mut out);
        out
    }

    fn one(src: &str) -> Vec<RawFinding> {
        findings(&[("crates/core/src/x.rs", src)])
    }

    #[test]
    fn literal_seed_flagged() {
        let f = one("fn f() -> Pcg32 { Pcg32::seed_from_u64(42) }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("literal"));
    }

    #[test]
    fn seed_and_salt_derivations_clean() {
        assert!(
            one("fn f(spec: &RunSpec) -> Pcg32 { Pcg32::seed_from_u64(spec.seed ^ 0x9e37) }")
                .is_empty()
        );
        assert!(one("fn f(seed: u64, salt: u64) -> Pcg32 {\n\
                 let mut s = seed ^ salt;\n\
                 let expanded = splitmix64(&mut s);\n\
                 Pcg32::seed_from_u64(expanded)\n\
             }")
        .is_empty());
        // SALT constants are salt-named sources.
        assert!(
            one("fn f(cfg: &Cfg) -> Pcg32 { Pcg32::seed_from_u64(cfg.seed ^ SALT_READ) }")
                .is_empty()
        );
    }

    #[test]
    fn taint_crosses_function_summaries() {
        let f = findings(&[
            (
                "crates/faults/src/lib.rs",
                "pub fn point(seed: u64, salt: u64) -> u64 { seed ^ salt }",
            ),
            (
                "crates/core/src/model.rs",
                "fn g(a: u64, b: u64) -> Pcg32 { Pcg32::seed_from_u64(point(a, b)) }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reseeding_from_draws_flagged() {
        let f = one("fn f(rng: &mut Pcg32) -> Pcg32 {\n\
                 let next = rng.next_u64();\n\
                 Pcg32::seed_from_u64(next)\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("derived stream state"));
    }

    #[test]
    fn unproven_provenance_flagged_with_sources() {
        let f = one("fn f(slot: u64) -> Pcg32 { Pcg32::seed_from_u64(slot) }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("slot"), "{f:?}");
    }
}
