//! L8 · `Ordering::Relaxed` on atomics shared with the worker pool.
//!
//! An atomic binding counts as *shared* when it is method-called both
//! inside a `spawn(...)` closure and outside every such closure in the
//! same file. On a shared atomic, `Relaxed` establishes no
//! happens-before edge with the workers, so any Relaxed operation is
//! flagged. Declarations (`AtomicUsize::new(...)`) are not touches; the
//! sequence `Ordering :: Relaxed` is matched token-exactly, so
//! `std::cmp::Ordering` never trips the rule.

use super::RawFinding;
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::LintId;
use std::collections::BTreeSet;

pub fn check(ws: &Workspace, out: &mut Vec<RawFinding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        let atomics = &ws.index.atomic_names[fi];
        if atomics.is_empty() {
            continue;
        }
        let p = &file.parsed;
        let toks = &p.toks;
        let spawn_ranges = p.spawn_closure_ranges();
        let inside = |i: usize| spawn_ranges.iter().any(|&(lo, hi)| i >= lo && i <= hi);

        // Touch sites per atomic: (tok of name, tok of `(`, inside?).
        let mut touches: Vec<(usize, usize, bool)> = Vec::new();
        let mut shared: BTreeSet<&str> = BTreeSet::new();
        let mut seen_in: BTreeSet<&str> = BTreeSet::new();
        let mut seen_out: BTreeSet<&str> = BTreeSet::new();
        for i in 0..toks.len() {
            if toks[i].kind != TokKind::Ident || !atomics.contains(&toks[i].text) {
                continue;
            }
            // A touch is `name . method (`.
            if toks.get(i + 1).map(|t| t.punct()) != Some(".") {
                continue;
            }
            if !toks.get(i + 2).is_some_and(|t| !t.ident().is_empty()) {
                continue;
            }
            if toks.get(i + 3).map(|t| t.punct()) != Some("(") {
                continue;
            }
            let is_inside = inside(i);
            if is_inside {
                seen_in.insert(&toks[i].text);
            } else {
                seen_out.insert(&toks[i].text);
            }
            touches.push((i, i + 3, is_inside));
        }
        for name in seen_in.intersection(&seen_out) {
            shared.insert(name);
        }
        if shared.is_empty() {
            continue;
        }

        for &(name_tok, open, _) in &touches {
            if !shared.contains(toks[name_tok].text.as_str()) {
                continue;
            }
            let Some(close) = p.close_of(open) else {
                continue;
            };
            // `Ordering :: Relaxed` anywhere in the argument list.
            for j in open + 1..close.saturating_sub(1) {
                if toks[j].ident() == "Ordering"
                    && toks[j + 1].punct() == "::"
                    && toks.get(j + 2).map(|t| t.ident()) == Some("Relaxed")
                {
                    out.push(RawFinding {
                        fix: Vec::new(),
                        file: fi,
                        tok: name_tok,
                        id: LintId::L8,
                        message: format!(
                            "`Ordering::Relaxed` on atomic `{}`, which is touched both inside \
                             and outside worker closures",
                            toks[name_tok].text
                        ),
                        suggestion: "use Acquire/Release (or SeqCst) for cross-thread \
                                     synchronization, or justify atomicity-only use with an \
                                     allow comment"
                            .into(),
                    });
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ws = Workspace::build(vec![(
            "crates/engine/src/x.rs".to_string(),
            src.to_string(),
        )]);
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn relaxed_on_shared_atomic_flagged() {
        let f = findings(
            "fn f() { let done = AtomicBool::new(false);\n\
             s.spawn(|| { done.store(true, Ordering::Relaxed); });\n\
             while !done.load(Ordering::Relaxed) {} }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.id == LintId::L8));
    }

    #[test]
    fn relaxed_inside_only_not_flagged() {
        // Worker-local counter: never touched outside the closures.
        let f = findings(
            "fn f() { let n = AtomicUsize::new(0);\n\
             s.spawn(|| { n.fetch_add(1, Ordering::Relaxed); }); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn acquire_release_on_shared_atomic_clean() {
        let f = findings(
            "fn f() { let done = AtomicBool::new(false);\n\
             s.spawn(|| { done.store(true, Ordering::Release); });\n\
             while !done.load(Ordering::Acquire) {} }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cmp_ordering_never_matches() {
        let f = findings(
            "fn f() { let n = AtomicUsize::new(0);\n\
             s.spawn(|| { n.fetch_add(1, Ordering::SeqCst); });\n\
             n.store(match x.cmp(&y) { std::cmp::Ordering::Less => 0, _ => 1 }, Ordering::SeqCst); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
