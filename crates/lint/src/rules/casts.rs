//! L15 · narrowing `as` casts on unit-carrying values.
//!
//! `as` is Rust's only silently-lossy conversion: `cost_usd as f32`
//! rounds money, `total_bytes as u32` wraps at 4 GiB, `rows as i32`
//! goes negative past 2^31 — and all three compile without a whisper.
//! For values the dataflow layer types with a money/time/bytes/rows
//! unit (L12's lattice), that silence is unacceptable: these are
//! exactly the quantities the paper's cost and stability claims are
//! computed from.
//!
//! The rule flags `expr as <narrow>` where `<narrow>` is one of
//! u8/u16/u32/i8/i16/i32/f32 and `expr` resolves to a unit for which
//! [`crate::units::Unit::narrowing_suspicious`] holds (everything but
//! `count` — casting small cardinalities for indexing is ubiquitous
//! and harmless). Widening casts (`as u64`, `as f64`) are always fine
//! and are in fact how measured integers enter float arithmetic.
//!
//! Each finding carries a machine-applicable fix (`cackle-lint fix`):
//! widen the cast target in place (`as u32` → `as u64`, `as f32` →
//! `as f64`) — the checked-conversion alternative changes the
//! expression's error surface and stays a human decision.

use super::RawFinding;
use crate::dataflow::{Flows, Operand};
use crate::fix::Edit;
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::LintId;

/// Target types that can silently drop range or precision.
const NARROW: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

pub fn check(ws: &Workspace, fl: &Flows, out: &mut Vec<RawFinding>) {
    for id in 0..ws.index.fns.len() {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        let toks = &p.toks;
        let Some(body) = ws.fn_item(id).body else {
            continue;
        };
        for i in body.0 + 1..body.1 {
            if toks[i].kind != TokKind::Ident || toks[i].text != "as" {
                continue;
            }
            let ty = match toks.get(i + 1) {
                Some(t) => t.ident(),
                None => continue,
            };
            if !NARROW.contains(&ty) {
                continue;
            }
            // The cast operand is whatever sits to the left of `as`,
            // resolved exactly like a binary operator's left operand.
            let Operand::Unit(u) = fl.operand_left(ws, p, id, i) else {
                continue;
            };
            if !u.narrowing_suspicious() {
                continue;
            }
            let wide = match ty {
                "u8" | "u16" | "u32" => "u64",
                "i8" | "i16" | "i32" => "i64",
                _ => "f64",
            };
            let ty_span = toks[i + 1].span;
            out.push(RawFinding {
                fix: vec![Edit::replace(ty_span.0, ty_span.1, wide)],
                file: f.file,
                tok: i,
                id: LintId::L15,
                message: format!(
                    "narrowing cast `as {ty}` on a {}-carrying value can silently \
                     truncate",
                    u.name()
                ),
                suggestion: format!(
                    "keep the value in u64/i64/f64, or use `try_from(...)`/an explicit \
                     checked conversion if narrowing {} is really intended",
                    u.name()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Flows;

    fn findings(src: &str) -> Vec<RawFinding> {
        let ws = Workspace::build(vec![("crates/core/src/x.rs".to_string(), src.to_string())]);
        let fl = Flows::build(&ws);
        let mut out = Vec::new();
        check(&ws, &fl, &mut out);
        out
    }

    #[test]
    fn narrowing_unit_casts_flagged() {
        let src = "fn f(total_cost: f64) -> f32 { total_cost as f32 }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("usd"));
        // The attached fix widens the cast target in place.
        assert_eq!(
            crate::fix::apply(src, &f[0].fix).unwrap(),
            "fn f(total_cost: f64) -> f32 { total_cost as f64 }"
        );
        let f = findings("fn f(payload_bytes: u64) -> u32 { payload_bytes as u32 }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = findings("fn f(rows_out: u64) -> i32 { rows_out as i32 }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn widening_counts_and_unitless_clean() {
        // Widening is how measured ints enter float math: always fine.
        assert!(findings("fn f(payload_bytes: u64) -> f64 { payload_bytes as f64 }").is_empty());
        // Counts narrow for indexing all the time.
        assert!(findings("fn f(retry_count: u64) -> u32 { retry_count as u32 }").is_empty());
        // Unit-less values are not ours to police.
        assert!(findings("fn f(x: u64) -> u32 { x as u32 }").is_empty());
    }

    #[test]
    fn units_flow_through_bindings_and_annotations() {
        // The unit rides the assignment graph to the cast site.
        let f = findings(
            "fn f(elapsed_secs: f64) -> f32 {\n\
                 let w = elapsed_secs;\n\
                 w as f32\n\
             }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("seconds"));
        // `unit(none)` clears a misleading name, silencing the finding.
        assert!(findings(
            "fn f() -> u32 {\n\
                 let rows_mask = bits(); // cackle-lint: unit(none)\n\
                 rows_mask as u32\n\
             }",
        )
        .is_empty());
    }

    #[test]
    fn call_results_carry_units_into_casts() {
        let f = findings(
            "fn total_bytes(&self) -> u64 { self.acc }\n\
             fn g(&self) -> u32 { self.total_bytes() as u32 }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("bytes"));
    }
}
