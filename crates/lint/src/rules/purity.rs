//! L19 · purity contracts: `// cackle-lint: pure(param, ...)`.
//!
//! The env pack's keyed-draw artifacts (DESIGN §14) promise that
//! `vm_traits(seed, vm)`, the `PriceTimeline` / `ReclaimStorm`
//! constructors, and the keyed-draw helpers are *pure functions of
//! their declared inputs* — the property that makes draws independent
//! of worker count, arrival order, and wall-clock. A `pure(...)`
//! annotation on the line above a fn (or trailing on its `fn` line)
//! turns that promise into a verified contract. Four clauses:
//!
//! * **(a) declared params exist** — every name in `pure(...)` must be
//!   a signature parameter (`self` is allowed only on methods, and
//!   permits reads of own fields);
//! * **(b) no mutable statics** — the body never references a
//!   `static mut` item (collected workspace-wide);
//! * **(c) no interior mutability, pure callees only** — no
//!   `lock`/`borrow_mut`/atomic-RMW calls, and every callee that
//!   resolves to a workspace fn is itself `pure(...)`-annotated (PRNG
//!   intrinsics — `splitmix64`, `gen_range`, ... — are the trusted
//!   leaves; unresolved names are std and assumed pure);
//! * **(d) draw keys from declared inputs** — every argument of a
//!   `keyed(...)` / `keyed_stream(...)` call derives (via the L13
//!   source closure) only from declared parameters, seed/salt-named
//!   constants, own fields when `self` is declared, or locals built
//!   from those.
//!
//! Syntactically malformed annotations are SUP hard errors (surfaced
//! by lib.rs via [`annotations`]), same as `allow(...)` / `unit(...)`:
//! a typo'd contract that silently verifies nothing is worse than no
//! contract at all.

use super::RawFinding;
use crate::dataflow::{is_seed_named, Flows};
use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::LintId;
use std::collections::{BTreeMap, BTreeSet};

/// Trusted PRNG leaves: deterministic mixers the seed machinery is
/// built from. Calls to these never need their own annotation.
const INTRINSICS: [&str; 7] = [
    "splitmix64",
    "seed_from_u64",
    "gen_range",
    "next_u32",
    "next_u64",
    "next_f64",
    "next_f32",
];

/// Method names that reach through `&self` to mutate shared state —
/// categorically impure whatever the receiver.
const INTERIOR_MUT: [&str; 10] = [
    "lock",
    "borrow_mut",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Parsed `pure(...)` annotations of one file.
#[derive(Debug, Default)]
pub struct PureAnnots {
    /// 1-based annotation line → declared parameter names (possibly
    /// empty: `pure()` declares a constant).
    pub by_line: BTreeMap<usize, Vec<String>>,
    /// `(line, what)` for each malformed annotation.
    pub errors: Vec<(usize, String)>,
}

/// Parse every `// cackle-lint: pure(...)` comment in `source`.
/// Malformations — missing `)`, empty element / trailing comma,
/// duplicate name, non-identifier — land in `errors`.
pub fn annotations(source: &str) -> PureAnnots {
    const MARKER: &str = "cackle-lint:";
    let mut out = PureAnnots::default();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let Some(at) = raw.find(MARKER) else {
            continue;
        };
        let rest = raw[at + MARKER.len()..].trim_start();
        let Some(list) = rest.strip_prefix("pure(") else {
            continue;
        };
        let Some(close) = list.find(')') else {
            out.errors
                .push((line, "malformed pure annotation: missing `)`".into()));
            continue;
        };
        let body = &list[..close];
        let mut decls: Vec<String> = Vec::new();
        let mut ok = true;
        if !body.trim().is_empty() {
            for part in body.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    out.errors.push((
                        line,
                        "malformed pure annotation: empty element (trailing comma?)".into(),
                    ));
                    ok = false;
                    break;
                }
                let ident_ok = part.chars().enumerate().all(|(k, c)| {
                    c == '_' || c.is_ascii_alphabetic() || (k > 0 && c.is_ascii_digit())
                });
                if !ident_ok {
                    out.errors.push((
                        line,
                        format!("malformed pure annotation: `{part}` is not a parameter name"),
                    ));
                    ok = false;
                    break;
                }
                if decls.iter().any(|d| d == part) {
                    out.errors.push((
                        line,
                        format!("malformed pure annotation: duplicate parameter `{part}`"),
                    ));
                    ok = false;
                    break;
                }
                decls.push(part.to_string());
            }
        }
        if ok {
            out.by_line.insert(line, decls);
        }
    }
    out
}

pub fn check(ws: &Workspace, flows: &Flows, out: &mut Vec<RawFinding>) {
    // Workspace-wide facts: per-file annotations, `static mut` names,
    // and the set of pure-annotated fn ids (clause (c) consults it).
    let annots: Vec<PureAnnots> = ws.files.iter().map(|f| annotations(&f.source)).collect();
    let mut static_muts: BTreeSet<String> = BTreeSet::new();
    for f in &ws.files {
        let toks = &f.parsed.toks;
        for i in 0..toks.len().saturating_sub(2) {
            if toks[i].ident() == "static" && toks[i + 1].ident() == "mut" {
                static_muts.insert(toks[i + 2].text.clone());
            }
        }
    }

    // fn id → declared params, plus which annotation lines attached.
    let mut pure_fns: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut attached: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ws.files.len()];
    for (id, f) in ws.index.fns.iter().enumerate() {
        let item = ws.fn_item(id);
        for line in [item.line.saturating_sub(1), item.line] {
            if let Some(decls) = annots[f.file].by_line.get(&line) {
                pure_fns.insert(id, decls.clone());
                attached[f.file].insert(line);
                break;
            }
        }
    }

    // Orphaned annotations: a contract that attaches to nothing
    // verifies nothing — loudly so.
    for (fi, ann) in annots.iter().enumerate() {
        for &line in ann.by_line.keys() {
            if attached[fi].contains(&line) {
                continue;
            }
            let toks = &ws.files[fi].parsed.toks;
            let Some(tok) = toks
                .iter()
                .position(|t| t.line >= line)
                .or(if toks.is_empty() {
                    None
                } else {
                    Some(toks.len() - 1)
                })
            else {
                continue;
            };
            out.push(RawFinding {
                fix: Vec::new(),
                file: fi,
                tok,
                id: LintId::L19,
                message: "`pure(...)` annotation attaches to no fn (neither this line nor \
                          the next starts a fn item)"
                    .to_string(),
                suggestion: "place the annotation on the line directly above the `fn`, after \
                             any attributes"
                    .to_string(),
            });
        }
    }

    let resolves_pure = |name: &str| -> bool {
        if INTRINSICS.contains(&name) || !Workspace::edge_name_kept(name) {
            return true;
        }
        match ws.index.by_name.get(name) {
            // Unresolved: a std method (`wrapping_mul`, `to_le_bytes`)
            // — trusted.
            None => true,
            Some(ids) => ids.iter().all(|c| pure_fns.contains_key(c)),
        }
    };

    for (&id, decls) in &pure_fns {
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        let item = ws.fn_item(id);
        let q = &item.qualified;
        let name_tok = item.kw + 1;
        let sig_end = item
            .body
            .map(|(open, _)| open)
            .unwrap_or_else(|| p.statement_end(item.kw).min(p.toks.len().saturating_sub(1)));
        let has_self = (item.kw..=sig_end).any(|k| p.toks[k].ident() == "self");
        let self_declared = decls.iter().any(|d| d == "self");

        // (a) every declared name is a parameter.
        for d in decls {
            let ok = if d == "self" {
                has_self
            } else {
                flows.flows[id].params.iter().any(|(n, _)| n == d)
            };
            if !ok {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: f.file,
                    tok: name_tok,
                    id: LintId::L19,
                    message: format!(
                        "`pure(...)` on fn `{q}` names `{d}`, which is not a parameter"
                    ),
                    suggestion: "list only the fn's own parameter names (and `self` on methods)"
                        .to_string(),
                });
            }
        }

        let Some(body) = item.body else {
            continue;
        };

        // Own fields readable when `self` is declared: idents after
        // `self.` in the body (methods, too — clause (c) vets them).
        let mut self_fields: BTreeSet<&str> = BTreeSet::new();
        for k in body.0..body.1.saturating_sub(1) {
            if p.toks[k].ident() == "self"
                && p.toks[k + 1].punct() == "."
                && p.toks[k + 2].kind == TokKind::Ident
            {
                self_fields.insert(p.toks[k + 2].text.as_str());
            }
        }

        // (b) no mutable-static reads.
        for k in body.0 + 1..body.1 {
            let t = &p.toks[k];
            if t.kind == TokKind::Ident && static_muts.contains(&t.text) {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: f.file,
                    tok: k,
                    id: LintId::L19,
                    message: format!(
                        "`pure(...)`-annotated fn `{q}` reads mutable static `{}`",
                        t.text
                    ),
                    suggestion: "thread the value through a declared parameter instead".to_string(),
                });
            }
        }

        for call in &f.calls {
            // (c) no interior mutability; workspace callees must be
            // pure themselves.
            if INTERIOR_MUT.contains(&call.name.as_str()) {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: f.file,
                    tok: call.name_tok,
                    id: LintId::L19,
                    message: format!(
                        "`pure(...)`-annotated fn `{q}` calls interior-mutability \
                         method `.{}(...)`",
                        call.name
                    ),
                    suggestion: "a pure fn may not mutate through shared references; \
                                 hoist the state change to the caller"
                        .to_string(),
                });
                continue;
            }
            if !resolves_pure(&call.name) {
                out.push(RawFinding {
                    fix: Vec::new(),
                    file: f.file,
                    tok: call.name_tok,
                    id: LintId::L19,
                    message: format!(
                        "`pure(...)`-annotated fn `{q}` calls `{}`, which is not \
                         `pure(...)`-annotated",
                        call.name
                    ),
                    suggestion: "annotate the callee's contract (and fix what that surfaces) \
                                 or drop the call"
                        .to_string(),
                });
            }

            // (d) draw keys derive only from declared inputs.
            if call.name != "keyed" && call.name != "keyed_stream" {
                continue;
            }
            let Some(args) = p.call_args(call.open) else {
                continue;
            };
            for arg in args {
                for s in flows.expr_sources(p, id, arg) {
                    let ok = if let Some(callee) = s.strip_prefix("call:") {
                        resolves_pure(callee)
                    } else {
                        decls.iter().any(|d| d == &s)
                            || is_seed_named(&s)
                            || (self_declared && self_fields.contains(s.as_str()))
                            || flows.closures[id].contains_key(&s)
                    };
                    if !ok {
                        out.push(RawFinding {
                            fix: Vec::new(),
                            file: f.file,
                            tok: call.name_tok,
                            id: LintId::L19,
                            message: format!(
                                "draw key in `pure(...)`-annotated fn `{q}` derives from \
                                 `{s}`, outside the declared parameters"
                            ),
                            suggestion: "derive keys only from the `pure(...)` parameters, \
                                         seed/salt constants, or declared-`self` fields"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<RawFinding> {
        let ws = Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        );
        let flows = Flows::build(&ws);
        let mut out = Vec::new();
        check(&ws, &flows, &mut out);
        out
    }

    #[test]
    fn annotation_grammar_accepts_and_rejects() {
        let a = annotations(
            "// cackle-lint: pure(seed, vm)\n\
             // cackle-lint: pure()\n\
             // cackle-lint: pure(seed, seed)\n\
             // cackle-lint: pure(seed,)\n\
             // cackle-lint: pure(a b)\n\
             // cackle-lint: pure(seed\n\
             // cackle-lint: allow(L5)\n",
        );
        assert_eq!(a.by_line[&1], ["seed", "vm"]);
        assert!(a.by_line[&2].is_empty());
        assert_eq!(a.errors.len(), 4, "{:?}", a.errors);
        assert!(a.errors[0].1.contains("duplicate"));
        assert!(a.errors[1].1.contains("empty element"));
        assert!(a.errors[2].1.contains("not a parameter name"));
        assert!(a.errors[3].1.contains("missing `)`"));
    }

    #[test]
    fn clean_pure_fn_verifies() {
        let f = findings(&[(
            "crates/faults/src/env.rs",
            "// cackle-lint: pure(seed, salt, key)\n\
             pub fn keyed(seed: u64, salt: u64, key: u64) -> u64 {\n\
                 let mut s = seed ^ salt ^ key;\n\
                 splitmix64(&mut s)\n\
             }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn undeclared_param_unpure_callee_and_interior_mut_flagged() {
        let f = findings(&[(
            "crates/faults/src/env.rs",
            "// cackle-lint: pure(seed, nope)\n\
             pub fn vm_traits(seed: u64, vm: u32) -> u64 {\n\
                 let c = self.cache.lock();\n\
                 helper(seed)\n\
             }\n\
             pub fn helper(seed: u64) -> u64 { seed }\n",
        )]);
        let msgs: Vec<&str> = f.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(f.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("names `nope`")));
        assert!(msgs.iter().any(|m| m.contains("interior-mutability")));
        assert!(msgs.iter().any(|m| m.contains("`helper`, which is not")));
        assert!(f.iter().all(|r| r.id == LintId::L19));
    }

    #[test]
    fn mutable_static_read_flagged() {
        let f = findings(&[(
            "crates/faults/src/env.rs",
            "static mut GLOBAL_EPOCH: u64 = 0;\n\
             // cackle-lint: pure(seed)\n\
             pub fn draw(seed: u64) -> u64 { seed ^ unsafe { GLOBAL_EPOCH } }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("GLOBAL_EPOCH"));
    }

    #[test]
    fn draw_key_outside_declared_params_flagged() {
        // `vm` flows into the key but only `seed` is declared; the
        // derived local `k` itself is fine (locals expand through the
        // closure), its `worker_slot` source is not.
        let f = findings(&[(
            "crates/faults/src/env.rs",
            "// cackle-lint: pure(seed, salt, key)\n\
             pub fn keyed(seed: u64, salt: u64, key: u64) -> u64 { seed ^ salt ^ key }\n\
             // cackle-lint: pure(seed)\n\
             pub fn vm_traits(seed: u64, worker_slot: u32) -> u64 {\n\
                 let k = worker_slot as u64;\n\
                 keyed(seed, SALT_ENV_VM, k)\n\
             }\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("worker_slot"), "{f:?}");
        // Declaring the param clears it.
        let ok = findings(&[(
            "crates/faults/src/env.rs",
            "// cackle-lint: pure(seed, salt, key)\n\
             pub fn keyed(seed: u64, salt: u64, key: u64) -> u64 { seed ^ salt ^ key }\n\
             // cackle-lint: pure(seed, vm)\n\
             pub fn vm_traits(seed: u64, vm: u32) -> u64 {\n\
                 keyed(seed, SALT_ENV_VM, vm as u64)\n\
             }\n",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn self_fields_require_declared_self_and_orphans_flagged() {
        let src = "// cackle-lint: pure(self, now_s)\n\
             impl PriceTimeline { pub fn multiplier_milli(&self, now_s: u64) -> u64 {\n\
                 self.base ^ now_s\n\
             } }\n\
             // cackle-lint: pure(seed)\n\
             const X: u64 = 0;\n";
        let f = findings(&[("crates/faults/src/env.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("attaches to no fn"));
    }
}
