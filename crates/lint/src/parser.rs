//! Brace-matched, item/block-aware parse layer on top of the lexer.
//!
//! The lexical rules (L1–L6) match token patterns on a flat stream; the
//! structural rules (L7–L11) need to know *where* they are: which
//! function body a token belongs to, what a call's argument list spans,
//! how long a `let`-bound guard lives. This module recovers exactly that
//! much structure — items (`fn` / `impl` / `mod` / `use`), delimiter
//! matching, statement and block extents, call-site argument spans —
//! and nothing more. It is deliberately not a Rust parser: expressions
//! stay flat token runs, types are skipped by delimiter matching, and
//! anything unrecognized is simply not an item. Failing to recognize a
//! construct can only cost a finding, never fabricate one.

use crate::lexer::{lex, TokKind, Token};

/// An `fn` item: name, qualification, and the token extent of its body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`read`).
    pub name: String,
    /// Name qualified by enclosing `impl` type / `mod` path
    /// (`MemoryShuffle::read`, `inner::helper`).
    pub qualified: String,
    /// Index of the `fn` keyword token.
    pub kw: usize,
    /// Token range of the `{ ... }` body, inclusive of both braces.
    /// `None` for bodyless signatures (trait methods, extern).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One `use` declaration, flattened to its leaf identifiers.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Path segments up to (not including) any `{...}` group or leaf.
    pub prefix: Vec<String>,
    /// Leaf names imported (group members, or the final segment).
    pub leaves: Vec<String>,
}

/// A lexed + structurally annotated source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// The token stream (strings preserved as `Str` tokens).
    pub toks: Vec<Token>,
    /// Per-token: covered by a `#[test]` / `#[cfg(test)]` item.
    pub test_excluded: Vec<bool>,
    /// For each `{`/`(`/`[` token index, the index of its match.
    /// Unbalanced delimiters are absent.
    close_of: Vec<Option<usize>>,
    /// For each token, the index of the innermost enclosing `{` (if any).
    enclosing_brace: Vec<Option<usize>>,
    /// All `fn` items, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// All `use` declarations.
    pub uses: Vec<UseDecl>,
}

const OPEN: [&str; 3] = ["{", "(", "["];
const CLOSE: [&str; 3] = ["}", ")", "]"];

impl ParsedFile {
    /// Lex and annotate `source`.
    pub fn parse(source: &str) -> ParsedFile {
        let toks = lex(source);
        let test_excluded = test_excluded(&toks);
        let (close_of, enclosing_brace) = match_delims(&toks);
        let fns = collect_fns(&toks, &close_of);
        let uses = collect_uses(&toks);
        ParsedFile {
            toks,
            test_excluded,
            close_of,
            enclosing_brace,
            fns,
            uses,
        }
    }

    /// The matching close delimiter for the open delimiter at `i`.
    pub fn close_of(&self, i: usize) -> Option<usize> {
        self.close_of.get(i).copied().flatten()
    }

    /// Index of the close brace of the innermost block containing `i`
    /// (the end of `i`'s lexical scope), or the last token if at top
    /// level / unbalanced.
    pub fn scope_end(&self, i: usize) -> usize {
        self.enclosing_brace
            .get(i)
            .copied()
            .flatten()
            .and_then(|open| self.close_of(open))
            .unwrap_or(self.toks.len().saturating_sub(1))
    }

    /// Index of the `;` ending the statement containing `i` (scanning
    /// forward at the same delimiter depth), or the enclosing block's
    /// close brace if none.
    pub fn statement_end(&self, i: usize) -> usize {
        let limit = self.scope_end(i);
        let mut j = i;
        while j < limit {
            let t = self.toks[j].punct();
            if t == ";" {
                return j;
            }
            if OPEN.contains(&t) {
                match self.close_of(j) {
                    Some(c) if c <= limit => j = c,
                    _ => return limit,
                }
            }
            j += 1;
        }
        limit
    }

    /// First token of the statement containing `i` (the token after the
    /// previous `;`, `{`, or `}` at the same delimiter depth). Used to
    /// attach own-line suppression comments to every line of the
    /// statement below them, however the formatter wraps it.
    pub fn statement_start(&self, i: usize) -> usize {
        let mut j = i.min(self.toks.len().saturating_sub(1));
        while j > 0 {
            let p = self.toks[j - 1].punct();
            if p == ";" || p == "{" || p == "}" {
                return j;
            }
            if p == ")" || p == "]" {
                // Skip a nested group wholesale.
                match (0..j - 1).rev().find(|&k| self.close_of(k) == Some(j - 1)) {
                    Some(open) => j = open,
                    None => return j,
                }
                continue;
            }
            j -= 1;
        }
        0
    }

    /// Does the statement containing `i` start with `let` (scanning
    /// backward at the same depth to the previous `;`, `{` or `}`)?
    /// `if let` / `while let` guards count too — in both forms the
    /// binding lives to the end of the enclosing block, which is what
    /// the lock-order rule needs.
    pub fn statement_is_let_bound(&self, i: usize) -> bool {
        let mut j = i;
        loop {
            let t = &self.toks[j];
            let p = t.punct();
            if p == ";" || p == "{" || p == "}" {
                return false;
            }
            if CLOSE.contains(&p) {
                // Walked into the tail of a nested group: find its open.
                let mut k = j;
                let mut found = false;
                while k > 0 {
                    k -= 1;
                    if self.close_of(k) == Some(j) {
                        j = k;
                        found = true;
                        break;
                    }
                }
                if !found {
                    return false;
                }
            }
            if t.ident() == "let" {
                return true;
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
    }

    /// If token `i` begins a call's argument list (`i` is `(`), return
    /// the spans of its top-level comma-separated arguments (each span
    /// inclusive, empty args skipped).
    pub fn call_args(&self, open: usize) -> Option<Vec<(usize, usize)>> {
        if self.toks.get(open)?.punct() != "(" {
            return None;
        }
        let close = self.close_of(open)?;
        let mut args = Vec::new();
        let mut start = open + 1;
        let mut j = open + 1;
        while j < close {
            let p = self.toks[j].punct();
            if OPEN.contains(&p) {
                j = self.close_of(j).filter(|&c| c < close).unwrap_or(close);
            } else if p == "," {
                if j > start {
                    args.push((start, j - 1));
                }
                start = j + 1;
            }
            j += 1;
        }
        if close > start {
            args.push((start, close - 1));
        }
        Some(args)
    }

    /// Call sites within `range`: `(callee name, index of the name
    /// token, index of the opening paren)`. Both free calls `name(...)`
    /// and method calls `.name(...)` are reported, turbofish included
    /// (`name::<T>(...)`); macro invocations (`name!(...)`, the `(`
    /// follows `!`) and definitions (`fn name(...)`) are not.
    pub fn calls_in(&self, range: (usize, usize)) -> Vec<(String, usize, usize)> {
        let mut out = Vec::new();
        let hi = range.1.min(self.toks.len().saturating_sub(1));
        for i in range.0..=hi {
            if self.toks[i].kind != TokKind::Ident {
                continue;
            }
            let next = self.toks.get(i + 1).map(|t| t.punct()).unwrap_or("");
            let open = if next == "(" {
                i + 1
            } else if next == "::" && self.toks.get(i + 2).map(|t| t.punct()) == Some("<") {
                // Turbofish: the paren follows the `<...>` group, which
                // is depth-counted (angles are not delimiter-matched —
                // they are ambiguous with comparisons elsewhere, but
                // after `::` they are always generics).
                let after = skip_angles(&self.toks, i + 2);
                if after > i + 2 && self.toks.get(after).map(|t| t.punct()) == Some("(") {
                    after
                } else {
                    continue;
                }
            } else {
                continue;
            };
            if i > 0 && self.toks[i - 1].ident() == "fn" {
                continue;
            }
            out.push((self.toks[i].text.clone(), i, open));
        }
        out
    }

    /// Ranges of tokens inside `.spawn(...)` / `thread::spawn(...)`
    /// argument lists — the worker-closure extents the atomic-ordering
    /// rule treats as "inside the pool".
    pub fn spawn_closure_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            if self.toks[i].ident() != "spawn" {
                continue;
            }
            if self.toks.get(i + 1).map(|t| t.punct()) != Some("(".into()) {
                continue;
            }
            if let Some(close) = self.close_of(i + 1) {
                out.push((i + 2, close.saturating_sub(1)));
            }
        }
        out
    }
}

/// Match `{}`/`()`/`[]` pairs and record each token's innermost
/// enclosing brace. A single mixed stack keeps mismatched delimiters
/// (never produced by rustc-accepted code) from derailing the rest of
/// the file: a close that doesn't match the top of stack pops until it
/// does or is dropped.
fn match_delims(toks: &[Token]) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    let mut close_of = vec![None; toks.len()];
    let mut enclosing = vec![None; toks.len()];
    let mut stack: Vec<usize> = Vec::new(); // indices of open delimiters
    let mut brace_stack: Vec<usize> = Vec::new();
    for i in 0..toks.len() {
        enclosing[i] = brace_stack.last().copied();
        let p = toks[i].punct();
        if OPEN.contains(&p) {
            stack.push(i);
            if p == "{" {
                brace_stack.push(i);
            }
        } else if let Some(k) = CLOSE.iter().position(|&c| c == p) {
            let want = OPEN[k];
            while let Some(&top) = stack.last() {
                if toks[top].punct() == want {
                    stack.pop();
                    close_of[top] = Some(i);
                    if want == "{" {
                        brace_stack.pop();
                    }
                    break;
                }
                // Mismatch: drop the stray open and keep looking.
                let stray = stack.pop().unwrap_or(top);
                if toks[stray].punct() == "{" {
                    brace_stack.pop();
                }
            }
        }
    }
    (close_of, enclosing)
}

/// Collect `fn` items with impl/mod qualification. A linear scan with a
/// qualifier stack: entering `impl Type {` or `mod name {` pushes a
/// qualifier until its close brace.
fn collect_fns(toks: &[Token], close_of: &[Option<usize>]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    // (close brace index, qualifier segment)
    let mut quals: Vec<(usize, String)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while quals.last().is_some_and(|&(end, _)| i > end) {
            quals.pop();
        }
        let t = &toks[i];
        match t.ident() {
            "impl" | "mod" | "trait" => {
                let kw = t.ident().to_string();
                // Find the block start; the qualifier is the last plain
                // identifier before `{` / `for` (covers `impl<T> Ty`,
                // `impl Trait for Ty`, `mod name`).
                let mut name = String::new();
                let mut j = i + 1;
                let mut body_open = None;
                while let Some(nt) = toks.get(j) {
                    let p = nt.punct();
                    if p == "{" {
                        body_open = Some(j);
                        break;
                    }
                    if p == ";" {
                        break; // `mod name;` — no body here
                    }
                    if p == "<" {
                        // Angle brackets are not delimiter-matched (they
                        // are ambiguous with less-than in expression
                        // position); in an item header they are always
                        // generics, so skip by local depth counting.
                        j = skip_angles(toks, j);
                    } else if p == "(" || p == "[" {
                        j = close_of.get(j).copied().flatten().map_or(j + 1, |c| c + 1);
                    } else if nt.kind == TokKind::Ident
                        && !matches!(nt.text.as_str(), "for" | "dyn" | "where" | "unsafe" | "pub")
                    {
                        if kw == "impl" {
                            // `impl Trait for Type`: the type after `for`
                            // wins; assignment below keeps the last name.
                            name = nt.text.clone();
                        } else if name.is_empty() {
                            name = nt.text.clone();
                        }
                        j += 1;
                    } else {
                        j += 1;
                    }
                }
                if let Some(open) = body_open {
                    if let Some(close) = close_of.get(open).copied().flatten() {
                        if !name.is_empty() {
                            quals.push((close, name));
                        }
                        i = open + 1;
                        continue;
                    }
                }
                i = j + 1;
            }
            "fn" => {
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                let name = name_tok.text.clone();
                // Scan to the body `{` or a `;` (trait signature),
                // skipping generic/paren/where groups.
                let mut j = i + 2;
                let mut body = None;
                while let Some(nt) = toks.get(j) {
                    let p = nt.punct();
                    if p == "{" {
                        body = close_of.get(j).copied().flatten().map(|c| (j, c));
                        break;
                    }
                    if p == ";" {
                        break;
                    }
                    if p == "<" {
                        j = skip_angles(toks, j);
                        continue;
                    }
                    if p == "(" || p == "[" {
                        j = close_of.get(j).copied().flatten().unwrap_or(j);
                    }
                    j += 1;
                }
                let qualified = if quals.is_empty() {
                    name.clone()
                } else {
                    format!(
                        "{}::{}",
                        quals
                            .iter()
                            .map(|(_, q)| q.as_str())
                            .collect::<Vec<_>>()
                            .join("::"),
                        name
                    )
                };
                fns.push(FnItem {
                    name,
                    qualified,
                    kw: i,
                    body,
                    line: toks[i].line,
                });
                // Continue *inside* the body: nested fns and closures
                // still get collected; qualification intentionally does
                // not include the enclosing fn.
                i += 2;
            }
            _ => i += 1,
        }
    }
    fns
}

/// Skip a generic-argument list starting at the `<` at `open`,
/// returning the index just past the matching `>`. Depth-counted over
/// `<`/`>` (the lexer never merges `>>`, and `->`/`=>` are single
/// tokens, so plain counting is exact); bails at `{` or `;` so a
/// malformed header cannot swallow an item body.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].punct() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            "{" | ";" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Flatten `use a::b::{c, d::e}; use x::y;` into prefix + leaves.
fn collect_uses(toks: &[Token]) -> Vec<UseDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() != "use" {
            i += 1;
            continue;
        }
        let mut prefix = Vec::new();
        let mut leaves = Vec::new();
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            if t.punct() == ";" {
                break;
            }
            if t.kind == TokKind::Ident && t.text != "as" {
                let next = toks.get(j + 1).map(|t| t.punct().to_string());
                if next.as_deref() == Some("::") {
                    prefix.push(t.text.clone());
                } else {
                    leaves.push(t.text.clone());
                }
            }
            j += 1;
        }
        if leaves.is_empty() {
            if let Some(last) = prefix.pop() {
                leaves.push(last);
            }
        }
        out.push(UseDecl { prefix, leaves });
        i = j + 1;
    }
    out
}

/// Marks token indices covered by `#[test]` / `#[cfg(test)]` items
/// (the attribute, the item header, and its `{ ... }` body or trailing
/// `;`). `#[cfg(not(test))]` is conservatively treated the same — that
/// only risks a missed finding, never a false positive.
pub fn test_excluded(toks: &[Token]) -> Vec<bool> {
    let mut excluded = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].punct() != "#" {
            i += 1;
            continue;
        }
        // Parse the attribute `#[ ... ]` and look for a `test` ident
        // (kind-checked: `#[doc = "test"]` must not count).
        let attr_start = i;
        let mut j = i + 1;
        if j >= toks.len() || toks[j].punct() != "[" {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut is_test_attr = false;
        while j < toks.len() {
            match toks[j].punct() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if toks[j].ident() == "test" {
                        is_test_attr = true;
                    }
                }
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then cover the item to its end:
        // the matching close of its first `{`, or a `;` that comes first.
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].punct() == "#" && toks[k + 1].punct() == "[" {
            let mut d = 0usize;
            while k < toks.len() {
                match toks[k].punct() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut end = k;
        let mut brace = 0usize;
        while end < toks.len() {
            match toks[end].punct() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                ";" if brace == 0 => break,
                _ => {}
            }
            end += 1;
        }
        for slot in excluded
            .iter_mut()
            .take((end + 1).min(toks.len()))
            .skip(attr_start)
        {
            *slot = true;
        }
        i = end + 1;
    }
    excluded
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_items_with_impl_and_mod_qualification() {
        let p = ParsedFile::parse(
            "fn free() {}\n\
             impl Catalog { fn read(&self) -> u32 { 1 } }\n\
             mod inner { fn helper() {} }\n\
             impl Tr for MemoryShuffle { fn write(&self) {} }",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            quals,
            [
                "free",
                "Catalog::read",
                "inner::helper",
                "MemoryShuffle::write"
            ]
        );
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn bodyless_trait_fns_and_nested_fns() {
        let p = ParsedFile::parse(
            "trait T { fn sig(&self); }\n\
             fn outer() { fn nested() {} }",
        );
        let names: Vec<(&str, bool)> = p
            .fns
            .iter()
            .map(|f| (f.qualified.as_str(), f.body.is_some()))
            .collect();
        assert_eq!(
            names,
            [("T::sig", false), ("outer", true), ("nested", true)]
        );
    }

    #[test]
    fn statement_start_walks_back_over_wrapped_chains() {
        // `counter_add` sits mid-statement; the statement began at `s`
        // right after the previous `;`, past the nested `(x)` group.
        let p = ParsedFile::parse("fn f() { let _y = g(x); s.telemetry.counter_add(n, 1); }");
        let call = p.toks.iter().position(|t| t.text == "counter_add").unwrap();
        let start = p.statement_start(call);
        assert_eq!(p.toks[start].text, "s");
        // A token at the start of its own statement is its own start.
        assert_eq!(p.statement_start(start), start);
    }

    #[test]
    fn statement_and_scope_extents() {
        let p = ParsedFile::parse("fn f() { let g = a.lock(); touch(); } fn h() {}");
        // Find the `lock` token.
        let lock = p.toks.iter().position(|t| t.text == "lock").unwrap();
        let stmt_end = p.statement_end(lock);
        assert_eq!(p.toks[stmt_end].text, ";");
        assert!(p.statement_is_let_bound(lock));
        // Scope end is f's closing brace (before `fn h`).
        let scope = p.scope_end(lock);
        assert_eq!(p.toks[scope].text, "}");
        let touch = p.toks.iter().position(|t| t.text == "touch").unwrap();
        assert!(scope > touch);
        // A non-let statement is statement-scoped.
        let p2 = ParsedFile::parse("fn f() { a.lock().x += 1; b.lock(); }");
        let lock1 = p2.toks.iter().position(|t| t.text == "lock").unwrap();
        assert!(!p2.statement_is_let_bound(lock1));
    }

    #[test]
    fn call_args_split_at_top_level_commas_only() {
        let p = ParsedFile::parse("fn f() { g(a, h(b, c), \"x.y\") }");
        let open = p
            .toks
            .iter()
            .position(|t| t.text == "g")
            .map(|i| i + 1)
            .unwrap();
        let args = p.call_args(open).unwrap();
        assert_eq!(args.len(), 3);
        // Second arg spans the whole nested call.
        let (lo, hi) = args[1];
        assert_eq!(p.toks[lo].text, "h");
        assert_eq!(p.toks[hi].text, ")");
        // Third arg is the string literal.
        let (slo, shi) = args[2];
        assert_eq!(slo, shi);
        assert_eq!(p.toks[slo].kind, TokKind::Str);
    }

    #[test]
    fn calls_in_reports_calls_not_defs_or_macros() {
        let p = ParsedFile::parse("fn f() { g(); x.h(); panic!(\"no\"); }");
        let body = p.fns[0].body.unwrap();
        let names: Vec<String> = p.calls_in(body).into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, ["g", "h"]);
    }

    #[test]
    fn spawn_closure_ranges_cover_closure_bodies() {
        let p = ParsedFile::parse(
            "fn f() { let n = 0; scope(|s| { s.spawn(|| { n.load(); }); }); n.store(1); }",
        );
        let ranges = p.spawn_closure_ranges();
        assert_eq!(ranges.len(), 1);
        let (lo, hi) = ranges[0];
        let inside: Vec<&str> = p.toks[lo..=hi].iter().map(|t| t.text.as_str()).collect();
        assert!(inside.contains(&"load"));
        assert!(!inside.contains(&"store"));
    }

    #[test]
    fn use_decls_flattened() {
        let p = ParsedFile::parse("use std::sync::{Mutex, RwLock};\nuse crate::task::execute;");
        assert_eq!(p.uses.len(), 2);
        assert_eq!(p.uses[0].prefix, ["std", "sync"]);
        assert_eq!(p.uses[0].leaves, ["Mutex", "RwLock"]);
        assert_eq!(p.uses[1].leaves, ["execute"]);
    }

    #[test]
    fn doc_string_test_does_not_trigger_test_exclusion() {
        let p = ParsedFile::parse("#[doc = \"test\"]\nfn f() { x.unwrap(); }");
        let unwrap = p.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(!p.test_excluded[unwrap]);
        let p2 = ParsedFile::parse("#[test]\nfn f() { x.unwrap(); }");
        let unwrap2 = p2.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(p2.test_excluded[unwrap2]);
    }
}
