//! `cackle-lint`: a dependency-free determinism & cost-hygiene static
//! analyzer for this workspace.
//!
//! The simulator's headline claims — byte-identical reruns and exact
//! cost accounting — are invariants no type system enforces, so this
//! crate enforces them mechanically at the source level. It is a
//! *lexical* analyzer, not a parser: source is tokenized with comments,
//! strings, and char literals stripped, and rules match identifier/
//! punctuation patterns. That keeps the crate at zero external
//! dependencies (no `syn`, no `regex`) while being immune to the
//! classic grep failure modes (matches inside strings or comments).
//!
//! # Rules
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | L1 | no `Instant` / `SystemTime` (host clock) | everywhere except `crates/bench` and `crates/cloud/src/time.rs` |
//! | L2 | no `thread_rng` / `from_entropy` / `rand::` (unseeded RNG) | everywhere |
//! | L3 | no order-revealing iteration of `HashMap` / `HashSet` | `crates/engine`, `crates/core`, `crates/telemetry` |
//! | L4 | no raw `f64` arithmetic or `==` on cost-named bindings | `crates/cloud` (except `ledger.rs`, `pricing.rs`), `crates/engine`, `examples` |
//! | L5 | no `unwrap()` / `expect()` / `panic!` on hot paths | `crates/cloud/src`, `crates/telemetry/src`, `crates/faults/src`, `core/{system,transport}.rs`, `engine/{task,shuffle,table,executor}.rs` |
//! | L6 | no `thread::spawn` / `thread::scope` (ad-hoc threading) | everywhere except `crates/engine/src/executor.rs` |
//!
//! `tests/`, `benches/`, and `#[cfg(test)]` / `#[test]` items are
//! skipped everywhere: test code may use the host clock, unwraps, and
//! hash iteration freely.
//!
//! # Suppressions
//!
//! A finding is suppressed by an inline comment on the offending line:
//!
//! ```text
//! .unwrap_or_else(|| panic!("no such table")) // cackle-lint: allow(L5)
//! ```
//!
//! Multiple ids may be listed: `// cackle-lint: allow(L1,L5)`.
//!
//! # Baseline
//!
//! Pre-existing debt is carried in `lint-baseline.txt` at the workspace
//! root as `<lint-id> <path> <count>` lines. The lint fails only on
//! violations *beyond* the baseline, so new debt cannot land while old
//! debt is paid down incrementally.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;

use lexer::{lex, TokKind, Token};

/// The rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Host clock access.
    L1,
    /// Nondeterministic RNG source.
    L2,
    /// Order-revealing hash-collection iteration.
    L3,
    /// Raw dollar arithmetic outside the billing layer.
    L4,
    /// Panic paths (`unwrap`/`expect`/`panic!`) on hot paths.
    L5,
    /// Ad-hoc threading outside the deterministic stage executor.
    L6,
}

impl LintId {
    /// All rules, in report order.
    pub const ALL: [LintId; 6] = [
        LintId::L1,
        LintId::L2,
        LintId::L3,
        LintId::L4,
        LintId::L5,
        LintId::L6,
    ];

    /// Parse `"L1"`..`"L6"`.
    pub fn parse(s: &str) -> Option<LintId> {
        match s.trim() {
            "L1" => Some(LintId::L1),
            "L2" => Some(LintId::L2),
            "L3" => Some(LintId::L3),
            "L4" => Some(LintId::L4),
            "L5" => Some(LintId::L5),
            "L6" => Some(LintId::L6),
            _ => None,
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintId::L1 => "L1",
            LintId::L2 => "L2",
            LintId::L3 => "L3",
            LintId::L4 => "L4",
            LintId::L5 => "L5",
            LintId::L6 => "L6",
        };
        f.write_str(s)
    }
}

/// One diagnostic: `file:line lint-id message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the linted root, with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// The violated rule.
    pub id: LintId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.path, self.line, self.id, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

fn applies(id: LintId, path: &str) -> bool {
    match id {
        LintId::L1 => !path.starts_with("crates/bench/") && path != "crates/cloud/src/time.rs",
        LintId::L2 => true,
        LintId::L3 => {
            path.starts_with("crates/engine/")
                || path.starts_with("crates/core/")
                || path.starts_with("crates/telemetry/")
        }
        LintId::L4 => {
            (path.starts_with("crates/cloud/")
                && path != "crates/cloud/src/ledger.rs"
                && path != "crates/cloud/src/pricing.rs")
                || path.starts_with("crates/engine/")
                || path.starts_with("examples/")
        }
        LintId::L5 => {
            path.starts_with("crates/cloud/src/")
                || path.starts_with("crates/telemetry/src/")
                || path.starts_with("crates/faults/src/")
                || matches!(
                    path,
                    "crates/core/src/system.rs"
                        | "crates/core/src/transport.rs"
                        | "crates/engine/src/task.rs"
                        | "crates/engine/src/shuffle.rs"
                        | "crates/engine/src/table.rs"
                        | "crates/engine/src/executor.rs"
                )
        }
        // All threading goes through the deterministic stage executor:
        // an ad-hoc thread has no index-ordered result slot, no telemetry
        // shard, and no keyed fault stream, so its effects depend on the
        // scheduler.
        LintId::L6 => path != "crates/engine/src/executor.rs",
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Per-line suppressed rule ids, from `// cackle-lint: allow(L1,L5)`
/// comments. Scans raw source lines (the lexer strips comments).
fn suppressions(source: &str) -> BTreeMap<usize, BTreeSet<LintId>> {
    let mut out: BTreeMap<usize, BTreeSet<LintId>> = BTreeMap::new();
    for (i, raw) in source.lines().enumerate() {
        let Some(at) = raw.find("cackle-lint: allow(") else {
            continue;
        };
        let rest = &raw[at + "cackle-lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let ids = rest[..close]
            .split(',')
            .filter_map(LintId::parse)
            .collect::<BTreeSet<_>>();
        if !ids.is_empty() {
            out.entry(i + 1).or_default().extend(ids);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Test-item exclusion
// ---------------------------------------------------------------------------

/// Marks token indices covered by `#[test]` / `#[cfg(test)]` items
/// (the attribute, the item header, and its `{ ... }` body or trailing
/// `;`). `#[cfg(not(test))]` is conservatively treated the same — that
/// only risks a missed finding, never a false positive.
fn test_excluded(toks: &[Token]) -> Vec<bool> {
    let mut excluded = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" {
            i += 1;
            continue;
        }
        // Parse the attribute `#[ ... ]` and look for a `test` token.
        let attr_start = i;
        let mut j = i + 1;
        if j >= toks.len() || toks[j].text != "[" {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut is_test_attr = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then cover the item to its end:
        // the matching close of its first `{`, or a `;` that comes first.
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
            let mut d = 0usize;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut end = k;
        let mut brace = 0usize;
        while end < toks.len() {
            match toks[end].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                ";" if brace == 0 => break,
                _ => {}
            }
            end += 1;
        }
        for slot in excluded
            .iter_mut()
            .take((end + 1).min(toks.len()))
            .skip(attr_start)
        {
            *slot = true;
        }
        i = end + 1;
    }
    excluded
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

const ARITH: [&str; 10] = ["*", "/", "+", "-", "==", "+=", "-=", "*=", "/=", "%"];
const ORDER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
];

fn is_cost_named(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    ["dollar", "cost", "price", "usd"]
        .iter()
        .any(|k| lower.contains(k))
}

/// Lint one file's source. `rel_path` selects which rules apply.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let toks = lex(source);
    let excluded = test_excluded(&toks);
    let suppressed = suppressions(source);
    let mut findings = Vec::new();

    let mut push = |id: LintId, line: usize, message: String| {
        if !applies(id, rel_path) {
            return;
        }
        if suppressed.get(&line).is_some_and(|ids| ids.contains(&id)) {
            return;
        }
        findings.push(Finding {
            path: rel_path.to_string(),
            line,
            id,
            message,
        });
    };

    // L3 needs the set of identifiers declared with hash-collection types.
    let hash_bindings = collect_hash_bindings(&toks, &excluded);

    for i in 0..toks.len() {
        if excluded[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let next = toks.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
        let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };

        // L1: host clock.
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                LintId::L1,
                t.line,
                format!(
                    "host clock `{}`: use the simulated clock in cackle-cloud",
                    t.text
                ),
            );
        }

        // L2: nondeterministic RNG.
        if matches!(
            t.text.as_str(),
            "thread_rng" | "from_entropy" | "ThreadRng" | "OsRng"
        ) || (t.text == "rand" && next == "::")
        {
            push(
                LintId::L2,
                t.line,
                format!(
                    "unseeded RNG `{}`: use cackle_prng::Pcg32::seed_from_u64",
                    t.text
                ),
            );
        }

        // L3: order-revealing hash iteration.
        if hash_bindings.contains(t.text.as_str()) {
            if next == "." {
                if let Some(m) = toks.get(i + 2) {
                    if ORDER_METHODS.contains(&m.text.as_str())
                        && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(")
                    {
                        push(
                            LintId::L3,
                            m.line,
                            format!(
                                "iteration over hash collection `{}` (`.{}`): order is \
                                 nondeterministic, use a BTree collection",
                                t.text, m.text
                            ),
                        );
                    }
                }
            }
            // `for (k, v) in &map {` / `for k in map {`
            if (prev == "in" || (prev == "&" && i >= 2 && toks[i - 2].text == "in")) && next == "{"
            {
                push(
                    LintId::L3,
                    t.line,
                    format!(
                        "iteration over hash collection `{}`: order is nondeterministic, \
                         use a BTree collection",
                        t.text
                    ),
                );
            }
        }

        // L4: raw dollar arithmetic.
        if is_cost_named(&t.text) && (ARITH.contains(&next) || ARITH.contains(&prev)) {
            push(
                LintId::L4,
                t.line,
                format!(
                    "raw arithmetic on cost-named `{}`: route dollars through CostLedger",
                    t.text
                ),
            );
        }

        // L5: panic paths.
        if (t.text == "unwrap" || t.text == "expect") && next == "(" && prev == "." {
            push(
                LintId::L5,
                t.line,
                format!(
                    "`.{}()` on a hot path: return a fallible variant or handle the None/Err",
                    t.text
                ),
            );
        }
        if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && next == "!"
        {
            push(
                LintId::L5,
                t.line,
                format!(
                    "`{}!` on a hot path: handle the case or debug_assert",
                    t.text
                ),
            );
        }

        // L6: ad-hoc threading (`thread::spawn` / `thread::scope`).
        if matches!(t.text.as_str(), "spawn" | "scope")
            && prev == "::"
            && i >= 2
            && toks[i - 2].text == "thread"
        {
            push(
                LintId::L6,
                t.line,
                format!(
                    "`thread::{}` outside the stage executor: route parallel work \
                     through cackle_engine::executor::Executor",
                    t.text
                ),
            );
        }
    }

    findings
}

/// Identifiers declared with a `HashMap` / `HashSet` type in this file:
/// `name: ...HashMap<...>` (fields, params) and
/// `let [mut] name = ...HashMap::new()`-style initializers.
fn collect_hash_bindings(toks: &[Token], excluded: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if excluded[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name : ... HashMap` within a few tokens, before any delimiter.
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some(":") {
            for t in toks.iter().skip(i + 2).take(8) {
                match t.text.as_str() {
                    "HashMap" | "HashSet" => {
                        names.insert(toks[i].text.clone());
                        break;
                    }
                    "," | ";" | ")" | "{" | "}" | "=" => break,
                    _ => {}
                }
            }
        }
        // `let [mut] name ... = ... HashMap ... ;`
        if toks[i].text == "let" {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let mut k = j + 1;
                while k < toks.len() && toks[k].text != ";" {
                    if toks[k].text == "HashMap" || toks[k].text == "HashSet" {
                        names.insert(name.text.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Collect the workspace's lintable `.rs` files (sorted, relative,
/// forward-slash paths). Skips `target/`, hidden dirs, `tests/` and
/// `benches/` dirs, and `crates/lint` itself (its fixtures contain
/// deliberate violations).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(root.join(rel))?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.file_name())
        .collect();
    entries.sort();
    for name in entries {
        let name_str = name.to_string_lossy().into_owned();
        let rel_child = rel.join(&name);
        let abs = root.join(&rel_child);
        if abs.is_dir() {
            if name_str.starts_with('.')
                || matches!(
                    name_str.as_str(),
                    "target" | "tests" | "benches" | "results"
                )
                || rel_child == Path::new("crates/lint")
            {
                continue;
            }
            walk(root, &rel_child, out)?;
        } else if name_str.ends_with(".rs") {
            out.push(rel_child);
        }
    }
    Ok(())
}

/// Lint every file under `root`, returning findings sorted by
/// (path, line, rule).
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in collect_files(root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(lint_source(&rel_str, &source));
    }
    findings.sort();
    Ok(findings)
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Accepted debt: `(rule, path) -> count`.
pub type Baseline = BTreeMap<(LintId, String), u64>;

/// Parse `lint-baseline.txt` content: `<lint-id> <path> <count>` lines,
/// `#` comments and blank lines ignored. Malformed lines are errors —
/// a silently dropped baseline entry would mask real debt.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(id), Some(path), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `<lint-id> <path> <count>`",
                i + 1
            ));
        };
        let id = LintId::parse(id)
            .ok_or_else(|| format!("baseline line {}: unknown lint id `{id}`", i + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        out.insert((id, path.to_string()), count);
    }
    Ok(out)
}

/// Findings that exceed the baseline — the ones that fail the build.
/// Also returns stale baseline entries (debt that has been paid down)
/// so the file can be trimmed.
pub fn diff_baseline(findings: &[Finding], baseline: &Baseline) -> (Vec<Finding>, Vec<String>) {
    let mut counts: BTreeMap<(LintId, String), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        counts.entry((f.id, f.path.clone())).or_default().push(f);
    }
    let mut new_violations = Vec::new();
    for (key, group) in &counts {
        let allowed = baseline.get(key).copied().unwrap_or(0) as usize;
        if group.len() > allowed {
            // Report the trailing findings as new (deterministic choice).
            new_violations.extend(group[allowed..].iter().map(|f| (*f).clone()));
        }
    }
    let mut stale = Vec::new();
    for ((id, path), &allowed) in baseline {
        let current = counts.get(&(*id, path.clone())).map_or(0, |g| g.len()) as u64;
        if current < allowed {
            stale.push(format!(
                "{id} {path}: baseline allows {allowed}, found {current}"
            ));
        }
    }
    new_violations.sort();
    (new_violations, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_flagged_outside_time_rs() {
        let src = "fn f() { let t = Instant::now(); }";
        let f = lint_source("crates/engine/src/task.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, LintId::L1);
        assert_eq!(f[0].line, 1);
        assert!(lint_source("crates/cloud/src/time.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn clock_in_comment_or_string_ignored() {
        let src = "// Instant::now is banned\nfn f() { let s = \"Instant::now\"; }";
        assert!(lint_source("crates/core/src/model.rs", src).is_empty());
    }

    #[test]
    fn rng_sources_flagged_everywhere() {
        let src = "fn f() { let mut r = rand::thread_rng(); }";
        let f = lint_source("crates/bench/src/bin/x.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L2), "{f:?}");
    }

    #[test]
    fn hash_iteration_flagged_in_engine_only() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for v in s.m.values() { let _ = v; } }";
        let f = lint_source("crates/engine/src/shuffle.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L3 && f.line == 2), "{f:?}");
        assert!(lint_source("crates/workload/src/demand.rs", src)
            .iter()
            .all(|f| f.id != LintId::L3));
    }

    #[test]
    fn hash_lookup_without_iteration_ok() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Option<&u32> { s.m.get(&1) }";
        assert!(lint_source("crates/engine/src/table.rs", src)
            .iter()
            .all(|f| f.id != LintId::L3));
    }

    #[test]
    fn dollar_arithmetic_flagged() {
        let src = "fn f(n: u64, s3_put_cost: f64) -> f64 { n as f64 * s3_put_cost }";
        let f = lint_source("crates/cloud/src/vm.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L4), "{f:?}");
        // The billing layer itself is exempt.
        assert!(lint_source("crates/cloud/src/ledger.rs", src).is_empty());
    }

    #[test]
    fn cost_equality_flagged() {
        let src = "fn f(cost: f64) -> bool { cost == 1.0 }";
        let f = lint_source("crates/engine/src/codec.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L4));
    }

    #[test]
    fn unwrap_flagged_on_hot_paths_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(lint_source("crates/cloud/src/vm.rs", src).len(), 1);
        assert!(lint_source("crates/workload/src/traces.rs", src).is_empty());
        // `unwrap_or_else` is a different identifier, not flagged.
        let ok = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }";
        assert!(lint_source("crates/cloud/src/vm.rs", ok).is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let src = "fn f() { panic!(\"boom\"); }";
        let f = lint_source("crates/core/src/system.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, LintId::L5);
    }

    #[test]
    fn telemetry_crate_is_covered() {
        // The observability layer feeds the golden-dump determinism test,
        // so it gets the same hash-iteration and panic-path guarantees.
        let hash = "struct S { m: HashMap<String, u64> }\n\
                    fn f(s: &S) { for v in s.m.values() { let _ = v; } }";
        let f = lint_source("crates/telemetry/src/lib.rs", hash);
        assert!(f.iter().any(|f| f.id == LintId::L3), "{f:?}");
        let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_source("crates/telemetry/src/json.rs", unwrap);
        assert!(f.iter().any(|f| f.id == LintId::L5), "{f:?}");
    }

    #[test]
    fn cfg_test_items_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { let t = Instant::now(); }\n}\n\
                   fn g() { let x: Option<u32> = None; x.unwrap(); }";
        let f = lint_source("crates/cloud/src/pool.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L5);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn test_attribute_skips_one_fn() {
        let src = "#[test]\nfn t() { Instant::now(); }\nfn g() { Instant::now(); }";
        let f = lint_source("crates/core/src/oracle.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn thread_spawn_flagged_outside_executor() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let f = lint_source("crates/core/src/live.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L6);
        // `thread::scope` is the same hazard.
        let scope = "fn f() { std::thread::scope(|_| {}); }";
        assert!(lint_source("crates/cloud/src/vm.rs", scope)
            .iter()
            .any(|f| f.id == LintId::L6));
        // The blessed executor is the one place threads may be made.
        assert!(lint_source("crates/engine/src/executor.rs", src)
            .iter()
            .all(|f| f.id != LintId::L6));
        // Test items may thread freely (e.g. store sharing tests).
        let test_src = "#[test]\nfn t() { std::thread::spawn(|| {}); }";
        assert!(lint_source("crates/cloud/src/object_store.rs", test_src).is_empty());
        // An unrelated `spawn` method is not flagged.
        let method = "fn f(p: &Pool) { p.spawn(); }";
        assert!(lint_source("crates/core/src/live.rs", method).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_exact_rule() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cackle-lint: allow(L5)";
        assert!(lint_source("crates/cloud/src/vm.rs", src).is_empty());
        // The wrong id does not suppress.
        let wrong = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cackle-lint: allow(L1)";
        assert_eq!(lint_source("crates/cloud/src/vm.rs", wrong).len(), 1);
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let b = parse_baseline("# comment\nL5 crates/cloud/src/vm.rs 2\n").unwrap();
        assert_eq!(b.len(), 1);
        let f = |line| Finding {
            path: "crates/cloud/src/vm.rs".into(),
            line,
            id: LintId::L5,
            message: "m".into(),
        };
        let (new, stale) = diff_baseline(&[f(1), f(2)], &b);
        assert!(new.is_empty() && stale.is_empty());
        let (new, _) = diff_baseline(&[f(1), f(2), f(3)], &b);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 3);
        let (new, stale) = diff_baseline(&[f(1)], &b);
        assert!(new.is_empty());
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn malformed_baseline_rejected() {
        assert!(parse_baseline("L9 foo 1").is_err());
        assert!(parse_baseline("L1 foo").is_err());
        assert!(parse_baseline("L1 foo one").is_err());
    }
}
