//! `cackle-lint`: a dependency-free determinism & cost-hygiene static
//! analyzer for this workspace.
//!
//! The simulator's headline claims — byte-identical reruns and exact
//! cost accounting — are invariants no type system enforces, so this
//! crate enforces them mechanically at the source level. Since v2 it is
//! a small *analyzer*, not just a lexer: source is tokenized
//! ([`lexer`]), brace-matched into items, blocks, statements, and call
//! sites ([`parser`]), indexed across the workspace into fn items and
//! an approximate call graph ([`index`]), and the rule families
//! ([`rules`]) match on whichever layer they need. The crate still has
//! zero external dependencies (no `syn`, no `regex`) and is immune to
//! the classic grep failure modes (matches inside strings or comments).
//!
//! # Rules
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | L1 | no `Instant` / `SystemTime` (host clock) | everywhere except `crates/bench` and `crates/cloud/src/time.rs` |
//! | L2 | no `thread_rng` / `from_entropy` / `rand::` (unseeded RNG) | everywhere |
//! | L3 | no order-revealing iteration of `HashMap` / `HashSet` | `crates/engine`, `crates/core`, `crates/telemetry` |
//! | L4 | *(retired — subsumed by L11)* | — |
//! | L5 | no `unwrap()` / `expect()` / `panic!` on hot paths | `crates/cloud/src`, `crates/telemetry/src`, `crates/faults/src`, `crates/serve/src`, `core/{system,transport}.rs`, `engine/{task,shuffle,table,executor}.rs` |
//! | L6 | no `thread::spawn` / `thread::scope` (ad-hoc threading) | everywhere except `engine/src/executor.rs`, `lint/src/index.rs` |
//! | L7 | no lock-order cycles (static deadlock detector) | `crates/engine`, `crates/core` |
//! | L8 | no `Ordering::Relaxed` on atomics shared with worker closures | `crates/engine`, `crates/core` |
//! | L9 | no sequential fault draws reachable from `execute_task_buffered` | `crates/engine`, `crates/core`, `crates/cloud` |
//! | L10 | metric names are literals matching the DESIGN §7 grammar | everywhere |
//! | L11 | no raw money arithmetic / call-site price formulas | everywhere except `cloud/src/{ledger,pricing}.rs`, `core/src/prices.rs`, `crates/bench` |
//! | L12 | no mixing of units (usd/seconds/bytes/rows/count) in arithmetic | everywhere except `crates/bench` |
//! | L13 | every PRNG seed derives from the RunSpec seed / a salt | everywhere except `crates/prng`, `crates/bench` |
//! | L14 | no per-iteration allocation on engine hot paths | `crates/engine`, `crates/serve` |
//! | L15 | no narrowing `as` casts on unit-carrying values | everywhere except `crates/bench` |
//! | L16 | pooled scratch checkouts balance with recycles per fn | `crates/engine` except `kernels/pool.rs` |
//! | L17 | no parallel-phase writes to shared registries (telemetry / shuffle / ledger) | `crates/engine`, `crates/core`, `crates/cloud` |
//! | L18 | draws with a `_keyed` twin must use it in parallel-phase code | `crates/engine`, `crates/core`, `crates/cloud` |
//! | L19 | `pure(...)`-annotated fns uphold their purity contract | everywhere except `crates/bench` |
//!
//! L12–L15 sit on the intra-procedural dataflow layer ([`dataflow`]):
//! a per-function assignment graph over the parser's statement/scope
//! extents, with units and seed-taint propagated interprocedurally via
//! per-function summaries on the call graph. Unit inference can be
//! overridden per binding with `// cackle-lint: unit(usd|seconds|bytes|\
//! rows|count|none)` ([`units`]); `unit(none)` marks a binding as
//! explicitly dimensionless.
//!
//! L17–L19 sit on the interprocedural layer: every fn BFS-reachable
//! from `execute_task_buffered` is classified *parallel-phase*, and
//! such code may neither write shared registries directly (L17) nor
//! call a draw whose `_keyed` twin exists (L18). `// cackle-lint:
//! pure(param, ...)` on the line above a fn declares a purity contract
//! — no mutable statics, no interior mutability, no unannotated
//! workspace callees, draw keys derived only from the declared
//! parameters — that L19 verifies (see [`rules::purity`]).
//!
//! `tests/`, `benches/`, and `#[cfg(test)]` / `#[test]` items are
//! skipped by default: test code may use the host clock, unwraps, and
//! hash iteration freely. With `--include-tests`, files under `tests/`
//! and `benches/` are linted against the restricted rule set {L2, L10}
//! (a test that seeds from entropy or emits an off-schema metric is a
//! flake factory even though panics there are fine).
//!
//! # Suppressions
//!
//! A finding is suppressed by an inline comment on the offending line:
//!
//! ```text
//! .unwrap_or_else(|| panic!("no such table")) // cackle-lint: allow(L5)
//! ```
//!
//! A suppression on its own comment line also covers the statement
//! beginning on the next line (however the formatter wraps it), so a
//! longer justification can sit above the flagged code:
//!
//! ```text
//! // cackle-lint: allow(L10) — name comes from the literal table above
//! telemetry.counter_add(metrics.vms_started_total, n);
//! ```
//!
//! Multiple ids may be listed: `// cackle-lint: allow(L1,L5)`. A
//! malformed list — unknown id, duplicate id, trailing comma, empty
//! list, missing `)` — is itself a hard error (reported as `SUP`, which
//! cannot be suppressed): a typo'd allow that silently does nothing is
//! worse than no allow at all.
//!
//! # Baseline
//!
//! Pre-existing debt is carried in `lint-baseline.txt` at the workspace
//! root as `<lint-id> <path> <count>` lines. The lint fails only on
//! violations *beyond* the baseline, so new debt cannot land while old
//! debt is paid down incrementally. A baseline entry larger than the
//! current finding count is *stale* and is an error in its own right
//! (exit code 3): the file's header promises entries only ever shrink.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub mod dataflow;
pub mod fix;
pub mod index;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod units;

use index::Workspace;

pub use rules::explain;

/// The rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// Host clock access.
    L1,
    /// Nondeterministic RNG source.
    L2,
    /// Order-revealing hash-collection iteration.
    L3,
    /// Retired: raw dollar arithmetic, path-scoped (subsumed by L11).
    /// Still parses in baselines; never fires.
    L4,
    /// Panic paths (`unwrap`/`expect`/`panic!`) on hot paths.
    L5,
    /// Ad-hoc threading outside the deterministic stage executor.
    L6,
    /// Lock-order cycles (static deadlock detector).
    L7,
    /// `Ordering::Relaxed` on atomics shared with worker closures.
    L8,
    /// Sequential fault draws reachable from the parallel phase.
    L9,
    /// Telemetry metric-name schema violations.
    L10,
    /// Ledger hygiene: money arithmetic outside the billing layer.
    L11,
    /// Unit-of-measure conformance (usd/seconds/bytes/rows/count).
    L12,
    /// Seed provenance: every PRNG stream derives from the RunSpec seed.
    L13,
    /// Per-iteration allocation on engine hot paths.
    L14,
    /// Narrowing `as` casts on unit-carrying values.
    L15,
    /// Pooled scratch buffers checked out but never recycled.
    L16,
    /// Phase discipline: parallel-phase writes to shared registries.
    L17,
    /// Keyed-draw completeness: a `_keyed` twin exists but is unused.
    L18,
    /// Purity contracts: `pure(...)`-annotated fns must stay pure.
    L19,
    /// Malformed suppression comment (cannot itself be suppressed).
    Sup,
}

impl LintId {
    /// All rules, in report order.
    pub const ALL: [LintId; 20] = [
        LintId::L1,
        LintId::L2,
        LintId::L3,
        LintId::L4,
        LintId::L5,
        LintId::L6,
        LintId::L7,
        LintId::L8,
        LintId::L9,
        LintId::L10,
        LintId::L11,
        LintId::L12,
        LintId::L13,
        LintId::L14,
        LintId::L15,
        LintId::L16,
        LintId::L17,
        LintId::L18,
        LintId::L19,
        LintId::Sup,
    ];

    /// Parse `"L1"`..`"L11"`. `"SUP"` is deliberately not parseable:
    /// it can appear in neither a baseline nor an allow list.
    pub fn parse(s: &str) -> Option<LintId> {
        match s.trim() {
            "L1" => Some(LintId::L1),
            "L2" => Some(LintId::L2),
            "L3" => Some(LintId::L3),
            "L4" => Some(LintId::L4),
            "L5" => Some(LintId::L5),
            "L6" => Some(LintId::L6),
            "L7" => Some(LintId::L7),
            "L8" => Some(LintId::L8),
            "L9" => Some(LintId::L9),
            "L10" => Some(LintId::L10),
            "L11" => Some(LintId::L11),
            "L12" => Some(LintId::L12),
            "L13" => Some(LintId::L13),
            "L14" => Some(LintId::L14),
            "L15" => Some(LintId::L15),
            "L16" => Some(LintId::L16),
            "L17" => Some(LintId::L17),
            "L18" => Some(LintId::L18),
            "L19" => Some(LintId::L19),
            _ => None,
        }
    }

    /// Diagnostic severity. Every rule guards an invariant whose
    /// violation breaks reruns or billing, so everything is an error —
    /// the field exists so the JSON schema has room for advisory rules
    /// later without a format break.
    pub fn severity(self) -> &'static str {
        "error"
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintId::L1 => "L1",
            LintId::L2 => "L2",
            LintId::L3 => "L3",
            LintId::L4 => "L4",
            LintId::L5 => "L5",
            LintId::L6 => "L6",
            LintId::L7 => "L7",
            LintId::L8 => "L8",
            LintId::L9 => "L9",
            LintId::L10 => "L10",
            LintId::L11 => "L11",
            LintId::L12 => "L12",
            LintId::L13 => "L13",
            LintId::L14 => "L14",
            LintId::L15 => "L15",
            LintId::L16 => "L16",
            LintId::L17 => "L17",
            LintId::L18 => "L18",
            LintId::L19 => "L19",
            LintId::Sup => "SUP",
        };
        f.write_str(s)
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the linted root, with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// The violated rule.
    pub id: LintId,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
    /// Machine-applicable byte-span edits realizing the suggestion —
    /// empty when the rule has no mechanical rewrite for this site.
    /// Sorts/compares last, so diagnostics order is unchanged.
    pub fix: Vec<fix::Edit>,
}

impl Finding {
    /// Does `cackle-lint fix` have a mechanical rewrite for this site?
    pub fn fixable(&self) -> bool {
        !self.fix.is_empty()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.path, self.line, self.id, self.message
        )?;
        if !self.suggestion.is_empty() {
            write!(f, " — {}", self.suggestion)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

fn applies(id: LintId, path: &str) -> bool {
    let engine_or_core = path.starts_with("crates/engine/") || path.starts_with("crates/core/");
    match id {
        LintId::L1 => !path.starts_with("crates/bench/") && path != "crates/cloud/src/time.rs",
        LintId::L2 => true,
        LintId::L3 => engine_or_core || path.starts_with("crates/telemetry/"),
        // Retired: everything L4 flagged is now L11's job.
        LintId::L4 => false,
        LintId::L5 => {
            path.starts_with("crates/cloud/src/")
                || path.starts_with("crates/telemetry/src/")
                || path.starts_with("crates/faults/src/")
                || path.starts_with("crates/serve/src/")
                || matches!(
                    path,
                    "crates/core/src/system.rs"
                        | "crates/core/src/transport.rs"
                        | "crates/engine/src/task.rs"
                        | "crates/engine/src/shuffle.rs"
                        | "crates/engine/src/table.rs"
                        | "crates/engine/src/executor.rs"
                )
        }
        // All threading goes through the deterministic stage executor —
        // an ad-hoc thread has no index-ordered result slot, no telemetry
        // shard, and no keyed fault stream, so its effects depend on the
        // scheduler. The lint driver's own parser pool is the second
        // blessed site: it copies the executor's claim-by-index pattern
        // and merges results in input order.
        LintId::L6 => path != "crates/engine/src/executor.rs" && path != "crates/lint/src/index.rs",
        LintId::L7 | LintId::L8 => engine_or_core,
        // crates/faults is the sequential primitives' home — the draws
        // defined (and wrapped) there are the API, not misuse of it.
        LintId::L9 => engine_or_core || path.starts_with("crates/cloud/"),
        LintId::L10 => true,
        LintId::L11 => {
            path != "crates/cloud/src/ledger.rs"
                && path != "crates/cloud/src/pricing.rs"
                && path != "crates/core/src/prices.rs"
                && !path.starts_with("crates/bench/")
        }
        LintId::L12 | LintId::L15 => !path.starts_with("crates/bench/"),
        // crates/prng defines the primitive: seeding it *is* its job.
        LintId::L13 => !path.starts_with("crates/prng/") && !path.starts_with("crates/bench/"),
        // Hot paths are an engine concept — plus the serving layer's
        // per-second admission/dispatch loops, which run once per
        // simulated second per tenant; elsewhere a loop allocation is a
        // style question, not a throughput bug.
        LintId::L14 => path.starts_with("crates/engine/") || path.starts_with("crates/serve/"),
        // The pool lives in kernels/pool.rs: its own internals move
        // buffers in and out by definition, everywhere else pairs them.
        LintId::L16 => {
            path.starts_with("crates/engine/") && path != "crates/engine/src/kernels/pool.rs"
        }
        // Phase discipline and keyed-draw completeness share L9's scope:
        // the parallel phase is an engine concept, and the registries it
        // must not touch live in core/cloud. crates/faults and
        // crates/telemetry define the shard/merge and keyed primitives —
        // their internals are the API, not misuse of it.
        LintId::L17 | LintId::L18 => engine_or_core || path.starts_with("crates/cloud/"),
        // Purity contracts are opt-in annotations; wherever one is
        // written it must hold (bench code never annotates).
        LintId::L19 => !path.starts_with("crates/bench/"),
        LintId::Sup => true,
    }
}

/// Rules that still apply inside `tests/` / `benches/` files when those
/// are linted at all (`--include-tests`): entropy-seeded randomness and
/// off-schema metric names make tests flaky / dumps unstable, while
/// panics and host clocks are fine there.
fn applies_in_test_dir(id: LintId) -> bool {
    matches!(id, LintId::L2 | LintId::L10 | LintId::Sup)
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Parse `// cackle-lint: allow(L1,L5)` comments. Returns per-line
/// suppressed ids plus a finding for every malformed suppression:
/// unknown id, duplicate id, trailing comma / empty element, empty
/// list, or missing `)`.
fn suppressions(rel_path: &str, source: &str) -> (BTreeMap<usize, BTreeSet<LintId>>, Vec<Finding>) {
    const MARKER: &str = "cackle-lint:";
    let mut map: BTreeMap<usize, BTreeSet<LintId>> = BTreeMap::new();
    let mut bad = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let Some(at) = raw.find(MARKER) else {
            continue;
        };
        let mut err = |what: String| {
            bad.push(Finding {
                fix: Vec::new(),
                path: rel_path.to_string(),
                line,
                id: LintId::Sup,
                message: what,
                suggestion: "write `// cackle-lint: allow(L1,...)` with known, unique rule ids"
                    .into(),
            });
        };
        let rest = raw[at + MARKER.len()..].trim_start();
        // `unit(...)` / `pure(...)` annotations share the marker; they
        // are parsed (and their malformations reported) by
        // [`units::annotations`] / [`rules::purity::annotations`].
        if rest.starts_with("unit(") || rest.starts_with("pure(") {
            continue;
        }
        let Some(list) = rest.strip_prefix("allow(") else {
            err(format!(
                "malformed suppression: expected `allow(...)`, `unit(...)`, or `pure(...)` after `{MARKER}`"
            ));
            continue;
        };
        let Some(close) = list.find(')') else {
            err("malformed suppression: missing `)`".into());
            continue;
        };
        let body = &list[..close];
        if body.trim().is_empty() {
            err("malformed suppression: empty allow list".into());
            continue;
        }
        let mut ids = BTreeSet::new();
        let mut ok = true;
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                err("malformed suppression: empty element (trailing comma?)".into());
                ok = false;
                break;
            }
            let Some(id) = LintId::parse(part) else {
                err(format!("malformed suppression: unknown rule id `{part}`"));
                ok = false;
                break;
            };
            if !ids.insert(id) {
                err(format!("malformed suppression: duplicate rule id `{id}`"));
                ok = false;
                break;
            }
        }
        if ok {
            map.entry(line).or_default().extend(ids.iter().copied());
            // A suppression on its own comment line also covers the next
            // line, so the justification can sit above the flagged code
            // (a trailing comment covers only its own line).
            let prefix = raw[..at].trim();
            if !prefix.is_empty() && prefix.chars().all(|c| c == '/' || c == '!') {
                map.entry(line + 1).or_default().extend(ids);
            }
        }
    }
    (map, bad)
}

// ---------------------------------------------------------------------------
// The analyzer pipeline
// ---------------------------------------------------------------------------

/// Wall-clock time of one analyzer phase (for the JSON `meta` block).
#[derive(Debug, Clone)]
pub struct PhaseTime {
    /// Phase name: `collect`, `parse`, `dataflow`, `rules`, `filter`.
    pub name: &'static str,
    /// Elapsed milliseconds.
    pub ms: u128,
}

/// Run metadata accompanying the findings in `--format json`.
#[derive(Debug, Clone, Default)]
pub struct LintMeta {
    /// Number of files linted.
    pub files: usize,
    /// Per-phase wall-clock timings, pipeline order.
    pub phases: Vec<PhaseTime>,
    /// Parse-stage parallelism accounting (workers, busy vs wall time).
    pub parallel: index::ParallelStats,
}

impl LintMeta {
    /// Zero every machine-dependent field — wall-clock timings *and*
    /// the worker count — so `--timings none` output is byte-identical
    /// across runs and machines.
    pub fn zero_timings(&mut self) {
        for p in &mut self.phases {
            p.ms = 0;
        }
        self.parallel = index::ParallelStats::default();
    }
}

/// Lint a set of `(rel_path, source)` files as one workspace: parse and
/// index everything, build the dataflow layer, run every rule family,
/// then centrally apply rule scoping, `#[test]`-item exclusion, the
/// tests-dir restricted rule set, and inline suppressions. Findings
/// come back sorted by (path, line, rule), with per-phase timings.
pub fn lint_files_with_meta(inputs: Vec<(String, String)>) -> (Vec<Finding>, LintMeta) {
    let files = inputs.len();
    let t = Instant::now();
    let (ws, parallel) = Workspace::build_with_stats(inputs);
    let parse_ms = t.elapsed().as_millis();

    let t = Instant::now();
    let flows = dataflow::Flows::build(&ws);
    let dataflow_ms = t.elapsed().as_millis();

    let t = Instant::now();
    let raw = rules::run(&ws, &flows);
    let rules_ms = t.elapsed().as_millis();

    let t = Instant::now();
    let mut findings = Vec::new();

    let mut suppressed = Vec::with_capacity(ws.files.len());
    for file in &ws.files {
        let (map, bad) = suppressions(&file.rel_path, &file.source);
        findings.extend(bad);
        suppressed.push(map);
        // Malformed `unit(...)` annotations are hard errors too: a typo'd
        // unit silently falling back to convention inference is exactly
        // the quiet failure the annotation exists to prevent.
        for (line, what) in units::annotations(&file.source).errors {
            findings.push(Finding {
                fix: Vec::new(),
                path: file.rel_path.clone(),
                line,
                id: LintId::Sup,
                message: what,
                suggestion: "write `// cackle-lint: unit(usd|seconds|bytes|rows|count|none)`"
                    .into(),
            });
        }
        // Same treatment for `pure(...)`: a typo'd purity annotation
        // that silently verifies nothing defeats the contract.
        for (line, what) in rules::purity::annotations(&file.source).errors {
            findings.push(Finding { fix: Vec::new(),
                path: file.rel_path.clone(),
                line,
                id: LintId::Sup,
                message: what,
                suggestion: "write `// cackle-lint: pure(param, ...)` listing unique declared parameter names".into(),
            });
        }
    }

    for r in raw {
        let file = &ws.files[r.file];
        if file
            .parsed
            .test_excluded
            .get(r.tok)
            .copied()
            .unwrap_or(false)
        {
            continue;
        }
        if file.is_test_dir && !applies_in_test_dir(r.id) {
            continue;
        }
        if !applies(r.id, &file.rel_path) {
            continue;
        }
        let line = file.parsed.toks[r.tok].line;
        // A suppression counts on the finding's own line or on the first
        // line of its statement — an own-line allow comment above a
        // statement covers it however the formatter wraps it.
        let stmt_line = file.parsed.toks[file.parsed.statement_start(r.tok)].line;
        if [line, stmt_line].iter().any(|l| {
            suppressed[r.file]
                .get(l)
                .is_some_and(|ids| ids.contains(&r.id))
        }) {
            continue;
        }
        findings.push(Finding {
            fix: r.fix,
            path: file.rel_path.clone(),
            line,
            id: r.id,
            message: r.message,
            suggestion: r.suggestion,
        });
    }
    findings.sort();
    // Nested fns are indexed as their own items *and* scanned as part of
    // their enclosing fn's body, so site-anchored rules can report the
    // same (path, line, rule, message) twice. One site, one finding.
    findings.dedup();
    let filter_ms = t.elapsed().as_millis();

    let meta = LintMeta {
        files,
        phases: vec![
            PhaseTime {
                name: "parse",
                ms: parse_ms,
            },
            PhaseTime {
                name: "dataflow",
                ms: dataflow_ms,
            },
            PhaseTime {
                name: "rules",
                ms: rules_ms,
            },
            PhaseTime {
                name: "filter",
                ms: filter_ms,
            },
        ],
        parallel,
    };
    (findings, meta)
}

/// [`lint_files_with_meta`] without the metadata.
pub fn lint_files(inputs: Vec<(String, String)>) -> Vec<Finding> {
    lint_files_with_meta(inputs).0
}

/// Lint one file's source. `rel_path` selects which rules apply. The
/// file is its own one-file workspace, so cross-file rules see only
/// local structure.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lint_files(vec![(rel_path.to_string(), source.to_string())])
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Collect the workspace's lintable `.rs` files (sorted, relative,
/// forward-slash paths). Skips `target/`, hidden dirs, and
/// `crates/lint` itself (its fixtures contain deliberate violations);
/// skips `tests/` and `benches/` dirs unless `include_tests`.
pub fn collect_files_with(root: &Path, include_tests: bool) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, Path::new(""), include_tests, &mut out)?;
    out.sort();
    Ok(out)
}

/// [`collect_files_with`] without test dirs.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    collect_files_with(root, false)
}

fn walk(
    root: &Path,
    rel: &Path,
    include_tests: bool,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(root.join(rel))?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.file_name())
        .collect();
    entries.sort();
    for name in entries {
        let name_str = name.to_string_lossy().into_owned();
        let rel_child = rel.join(&name);
        let abs = root.join(&rel_child);
        if abs.is_dir() {
            if name_str.starts_with('.')
                || matches!(name_str.as_str(), "target" | "results")
                || (!include_tests && matches!(name_str.as_str(), "tests" | "benches"))
                || rel_child == Path::new("crates/lint")
            {
                continue;
            }
            walk(root, &rel_child, include_tests, out)?;
        } else if name_str.ends_with(".rs") {
            out.push(rel_child);
        }
    }
    Ok(())
}

/// Lint every file under `root` as one workspace, returning findings
/// sorted by (path, line, rule) plus per-phase timings (including the
/// file-collection phase).
pub fn lint_root_with_meta(
    root: &Path,
    include_tests: bool,
) -> std::io::Result<(Vec<Finding>, LintMeta)> {
    let t = Instant::now();
    let mut inputs = Vec::new();
    for rel in collect_files_with(root, include_tests)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(root.join(&rel))?;
        inputs.push((rel_str, source));
    }
    let collect_ms = t.elapsed().as_millis();
    let (findings, mut meta) = lint_files_with_meta(inputs);
    meta.phases.insert(
        0,
        PhaseTime {
            name: "collect",
            ms: collect_ms,
        },
    );
    Ok((findings, meta))
}

/// [`lint_root_with_meta`] without the metadata.
pub fn lint_root_with(root: &Path, include_tests: bool) -> std::io::Result<Vec<Finding>> {
    Ok(lint_root_with_meta(root, include_tests)?.0)
}

/// [`lint_root_with`] without test dirs.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    lint_root_with(root, false)
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Accepted debt: `(rule, path) -> count`.
pub type Baseline = BTreeMap<(LintId, String), u64>;

/// Parse `lint-baseline.txt` content: `<lint-id> <path> <count>` lines,
/// `#` comments and blank lines ignored. Malformed lines are errors —
/// a silently dropped baseline entry would mask real debt.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(id), Some(path), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `<lint-id> <path> <count>`",
                i + 1
            ));
        };
        let id = LintId::parse(id)
            .ok_or_else(|| format!("baseline line {}: unknown lint id `{id}`", i + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
        out.insert((id, path.to_string()), count);
    }
    Ok(out)
}

/// Findings that exceed the baseline — the ones that fail the build.
/// Also returns stale baseline entries (debt that has been paid down)
/// so the file can be trimmed; staleness is itself a CI failure.
pub fn diff_baseline(findings: &[Finding], baseline: &Baseline) -> (Vec<Finding>, Vec<String>) {
    let mut counts: BTreeMap<(LintId, String), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        counts.entry((f.id, f.path.clone())).or_default().push(f);
    }
    let mut new_violations = Vec::new();
    for (key, group) in &counts {
        let allowed = baseline.get(key).copied().unwrap_or(0) as usize;
        if group.len() > allowed {
            // Report the trailing findings as new (deterministic choice).
            new_violations.extend(group[allowed..].iter().map(|f| (*f).clone()));
        }
    }
    let mut stale = Vec::new();
    for ((id, path), &allowed) in baseline {
        let current = counts.get(&(*id, path.clone())).map_or(0, |g| g.len()) as u64;
        if current < allowed {
            stale.push(format!(
                "{id} {path}: baseline allows {allowed}, found {current}"
            ));
        }
    }
    new_violations.sort();
    (new_violations, stale)
}

/// Render the canonical `lint-baseline.txt` content for a finding set:
/// the standard header plus one `<lint-id> <path> <count>` line per
/// (rule, path) group, sorted — byte-stable for identical findings.
/// `SUP` findings are never baselinable (they are hard errors) and are
/// excluded.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(LintId, &str), u64> = BTreeMap::new();
    for f in findings {
        if f.id == LintId::Sup {
            continue;
        }
        *counts.entry((f.id, f.path.as_str())).or_default() += 1;
    }
    let mut out = String::from(
        "# cackle-lint accepted debt: `<lint-id> <path> <count>` per line.\n\
         #\n\
         # The tree currently lints clean — keep it that way. If a rule must be\n\
         # bent locally, prefer an inline `// cackle-lint: allow(Lx)` with a\n\
         # justification over adding an entry here; baseline entries are for\n\
         # pre-existing debt only and should only ever shrink.\n",
    );
    for ((id, path), n) in &counts {
        out.push_str(&format!("{id} {path} {n}\n"));
    }
    out
}

// ---------------------------------------------------------------------------
// JSON diagnostics
// ---------------------------------------------------------------------------

/// Render findings as the deterministic machine-readable document
/// emitted by `--format json`: one finding object per line, keys in
/// fixed order, `BTreeMap` ordering throughout — byte-identical across
/// runs on identical input by construction, except for the `meta`
/// block's wall-clock `ms` values (CI normalizes those before
/// comparing).
pub fn render_json(
    findings: &[Finding],
    new_violations: &[Finding],
    stale: &[String],
    meta: &LintMeta,
) -> String {
    let is_new: BTreeSet<&Finding> = new_violations.iter().collect();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.id.to_string()).or_default() += 1;
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"cackle-lint\",\n  \"version\": 4,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": ");
        json_str(&mut out, &f.path);
        out.push_str(&format!(", \"line\": {}, \"rule\": \"{}\", ", f.line, f.id));
        out.push_str(&format!(
            "\"severity\": \"{}\", \"baselined\": {}, \"message\": ",
            f.id.severity(),
            !is_new.contains(f)
        ));
        json_str(&mut out, &f.message);
        out.push_str(", \"suggestion\": ");
        json_str(&mut out, &f.suggestion);
        out.push_str(&format!(", \"fixable\": {}", f.fixable()));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_baseline\": [");
    for (i, s) in stale.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_str(&mut out, s);
    }
    out.push_str("],\n  \"counts\": {");
    for (i, (id, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_str(&mut out, id);
        out.push_str(&format!(": {n}"));
    }
    out.push_str("},\n  \"meta\": {");
    out.push_str(&format!("\"files\": {}, \"rules\": {{", meta.files));
    for (i, (id, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_str(&mut out, id);
        out.push_str(&format!(": {n}"));
    }
    out.push_str("}, \"phases\": [");
    for (i, p) in meta.phases.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"name\": \"{}\", \"ms\": {}}}", p.name, p.ms));
    }
    out.push_str(&format!(
        "], \"parallel\": {{\"workers\": {}, \"task_ms\": {}, \"wall_ms\": {}, \
         \"speedup_milli\": {}}}",
        meta.parallel.workers,
        meta.parallel.task_ms,
        meta.parallel.wall_ms,
        meta.parallel.speedup_milli()
    ));
    out.push_str("}\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_flagged_outside_time_rs() {
        let src = "fn f() { let t = Instant::now(); }";
        let f = lint_source("crates/engine/src/task.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, LintId::L1);
        assert_eq!(f[0].line, 1);
        assert!(lint_source("crates/cloud/src/time.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn clock_in_comment_or_string_ignored() {
        let src = "// Instant::now is banned\nfn f() { let s = \"Instant::now\"; }";
        assert!(lint_source("crates/core/src/model.rs", src).is_empty());
    }

    #[test]
    fn rng_sources_flagged_everywhere() {
        let src = "fn f() { let mut r = rand::thread_rng(); }";
        let f = lint_source("crates/bench/src/bin/x.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L2), "{f:?}");
    }

    #[test]
    fn hash_iteration_flagged_in_engine_only() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for v in s.m.values() { let _ = v; } }";
        let f = lint_source("crates/engine/src/shuffle.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L3 && f.line == 2), "{f:?}");
        assert!(lint_source("crates/workload/src/demand.rs", src)
            .iter()
            .all(|f| f.id != LintId::L3));
    }

    #[test]
    fn hash_lookup_without_iteration_ok() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> Option<&u32> { s.m.get(&1) }";
        assert!(lint_source("crates/engine/src/table.rs", src)
            .iter()
            .all(|f| f.id != LintId::L3));
    }

    #[test]
    fn dollar_arithmetic_flagged_as_l11() {
        let src = "fn f(n: u64, s3_put_cost: f64) -> f64 { n as f64 * s3_put_cost }";
        let f = lint_source("crates/cloud/src/vm.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L11), "{f:?}");
        // The billing layer itself is exempt.
        assert!(lint_source("crates/cloud/src/ledger.rs", src).is_empty());
        // L11 is workspace-wide: the same code in core (outside L4's old
        // scope) is flagged too.
        assert!(lint_source("crates/core/src/meta.rs", src)
            .iter()
            .any(|f| f.id == LintId::L11));
        // L4 itself is retired — it never fires.
        assert!(f.iter().all(|f| f.id != LintId::L4));
    }

    #[test]
    fn cost_equality_flagged() {
        let src = "fn f(cost: f64) -> bool { cost == 1.0 }";
        let f = lint_source("crates/engine/src/codec.rs", src);
        assert!(f.iter().any(|f| f.id == LintId::L11));
    }

    #[test]
    fn cost_sum_of_costs_allowed() {
        let src = "fn f(&self) -> f64 { self.vm_cost + self.store_cost }";
        assert!(lint_source("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_on_hot_paths_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(lint_source("crates/cloud/src/vm.rs", src).len(), 1);
        assert!(lint_source("crates/workload/src/traces.rs", src).is_empty());
        // `unwrap_or_else` is a different identifier, not flagged.
        let ok = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }";
        assert!(lint_source("crates/cloud/src/vm.rs", ok).is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let src = "fn f() { panic!(\"boom\"); }";
        let f = lint_source("crates/core/src/system.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].id, LintId::L5);
    }

    #[test]
    fn telemetry_crate_is_covered() {
        // The observability layer feeds the golden-dump determinism test,
        // so it gets the same hash-iteration and panic-path guarantees.
        let hash = "struct S { m: HashMap<String, u64> }\n\
                    fn f(s: &S) { for v in s.m.values() { let _ = v; } }";
        let f = lint_source("crates/telemetry/src/lib.rs", hash);
        assert!(f.iter().any(|f| f.id == LintId::L3), "{f:?}");
        let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = lint_source("crates/telemetry/src/json.rs", unwrap);
        assert!(f.iter().any(|f| f.id == LintId::L5), "{f:?}");
    }

    #[test]
    fn cfg_test_items_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f() { let t = Instant::now(); }\n}\n\
                   fn g() { let x: Option<u32> = None; x.unwrap(); }";
        let f = lint_source("crates/cloud/src/pool.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L5);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn test_attribute_skips_one_fn() {
        let src = "#[test]\nfn t() { Instant::now(); }\nfn g() { Instant::now(); }";
        let f = lint_source("crates/core/src/oracle.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn thread_spawn_flagged_outside_executor() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let f = lint_source("crates/core/src/live.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::L6);
        // `thread::scope` is the same hazard.
        let scope = "fn f() { std::thread::scope(|_| {}); }";
        assert!(lint_source("crates/cloud/src/vm.rs", scope)
            .iter()
            .any(|f| f.id == LintId::L6));
        // The blessed executor is the one place threads may be made.
        assert!(lint_source("crates/engine/src/executor.rs", src)
            .iter()
            .all(|f| f.id != LintId::L6));
        // Test items may thread freely (e.g. store sharing tests).
        let test_src = "#[test]\nfn t() { std::thread::spawn(|| {}); }";
        assert!(lint_source("crates/cloud/src/object_store.rs", test_src).is_empty());
        // An unrelated `spawn` method is not flagged.
        let method = "fn f(p: &Pool) { p.spawn(); }";
        assert!(lint_source("crates/core/src/live.rs", method).is_empty());
    }

    #[test]
    fn inline_allow_suppresses_exact_rule() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cackle-lint: allow(L5)";
        assert!(lint_source("crates/cloud/src/vm.rs", src).is_empty());
        // The wrong id does not suppress.
        let wrong = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cackle-lint: allow(L1)";
        assert_eq!(lint_source("crates/cloud/src/vm.rs", wrong).len(), 1);
    }

    #[test]
    fn own_line_allow_covers_the_next_statement() {
        // A suppression on a comment-only line covers the statement that
        // begins on the following line, so the justification can sit
        // above the flagged code.
        let src = "fn f(x: Option<u32>) -> u32 {\n    // cackle-lint: allow(L5) — reason\n    x.unwrap()\n}";
        assert!(lint_source("crates/cloud/src/vm.rs", src).is_empty());
        // Even when the formatter wraps the statement so the flagged
        // token is several lines below the comment.
        let wrapped = "fn f(s: &S) {\n    // cackle-lint: allow(L5) — reason\n    s.telemetry\n        .thing()\n        .unwrap();\n}";
        assert!(
            lint_source("crates/cloud/src/vm.rs", wrapped).is_empty(),
            "{:?}",
            lint_source("crates/cloud/src/vm.rs", wrapped)
        );
        // It does NOT leak into the following statement.
        let far = "fn f(x: Option<u32>) -> u32 {\n    // cackle-lint: allow(L5)\n    let _y = 1;\n    x.unwrap()\n}";
        assert_eq!(lint_source("crates/cloud/src/vm.rs", far).len(), 1);
        // A trailing comment covers only its own line, not the next.
        let trailing = "fn f(x: Option<u32>) -> u32 { // cackle-lint: allow(L5)\n    x.unwrap()\n}";
        assert_eq!(lint_source("crates/cloud/src/vm.rs", trailing).len(), 1);
    }

    #[test]
    fn malformed_suppressions_are_hard_errors() {
        // Unknown id.
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f() {} // cackle-lint: allow(L99)",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::Sup);
        assert!(f[0].message.contains("unknown rule id `L99`"));
        // Trailing comma.
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f() {} // cackle-lint: allow(L5,)",
        );
        assert!(f.iter().any(|f| f.id == LintId::Sup), "{f:?}");
        // Duplicate id.
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f() {} // cackle-lint: allow(L5,L5)",
        );
        assert!(f.iter().any(|f| f.id == LintId::Sup), "{f:?}");
        // Empty list.
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f() {} // cackle-lint: allow()",
        );
        assert!(f.iter().any(|f| f.id == LintId::Sup), "{f:?}");
        // Missing close paren.
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f() {} // cackle-lint: allow(L5",
        );
        assert!(f.iter().any(|f| f.id == LintId::Sup), "{f:?}");
        // Marker without allow() at all.
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f() {} // cackle-lint: allowed(L5)",
        );
        assert!(f.iter().any(|f| f.id == LintId::Sup), "{f:?}");
        // SUP cannot be suppressed (it is not a parseable id).
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f() {} // cackle-lint: allow(SUP)",
        );
        assert!(f.iter().any(|f| f.id == LintId::Sup), "{f:?}");
        // A malformed suppression does NOT suppress the finding it rode on.
        let f = lint_source(
            "crates/cloud/src/vm.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // cackle-lint: allow(L5,)",
        );
        assert!(f.iter().any(|f| f.id == LintId::L5), "{f:?}");
        assert!(f.iter().any(|f| f.id == LintId::Sup), "{f:?}");
        // Well-formed multi-id lists still work.
        let ok = "fn f() { Instant::now(); } // cackle-lint: allow(L1,L5)";
        assert!(lint_source("crates/cloud/src/vm.rs", ok).is_empty());
    }

    #[test]
    fn test_dir_files_use_restricted_rule_set() {
        // Panics / clocks are fine in tests...
        let src = "fn t() { Instant::now(); let x: Option<u32> = None; x.unwrap(); }";
        assert!(lint_source("crates/cloud/tests/chaos.rs", src).is_empty());
        // ...but entropy-seeded RNG and off-schema metric names are not.
        let rng = "fn t() { let r = rand::thread_rng(); }";
        let f = lint_source("crates/cloud/tests/chaos.rs", rng);
        assert!(f.iter().any(|f| f.id == LintId::L2), "{f:?}");
        let metric = "fn t(reg: &Registry) { reg.counter_add(&format!(\"x.{}\", 1), 1); }";
        let f = lint_source("crates/cloud/tests/chaos.rs", metric);
        assert!(f.iter().any(|f| f.id == LintId::L10), "{f:?}");
    }

    #[test]
    fn workspace_pass_links_files_for_reachability_rules() {
        // `store_error` has no keyed twin → L9; `store_attempts` has
        // one → L18. Both draw on the cross-file call graph.
        let f = lint_files(vec![
            (
                "crates/engine/src/task.rs".to_string(),
                "pub fn execute_task_buffered() { helper(); }".to_string(),
            ),
            (
                "crates/core/src/system.rs".to_string(),
                "pub fn helper(faults: &FaultInjector) {\n\
                 faults.store_error(op);\n\
                 faults.store_attempts(op);\n\
                 }"
                .to_string(),
            ),
        ]);
        assert!(f.iter().any(|f| f.id == LintId::L9), "{f:?}");
        assert!(f.iter().any(|f| f.id == LintId::L18), "{f:?}");
        assert_eq!(f[0].path, "crates/core/src/system.rs");
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let b = parse_baseline("# comment\nL5 crates/cloud/src/vm.rs 2\n").unwrap();
        assert_eq!(b.len(), 1);
        let f = |line| Finding {
            path: "crates/cloud/src/vm.rs".into(),
            line,
            id: LintId::L5,
            message: "m".into(),
            suggestion: String::new(),
            fix: Vec::new(),
        };
        let (new, stale) = diff_baseline(&[f(1), f(2)], &b);
        assert!(new.is_empty() && stale.is_empty());
        let (new, _) = diff_baseline(&[f(1), f(2), f(3)], &b);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 3);
        let (new, stale) = diff_baseline(&[f(1)], &b);
        assert!(new.is_empty());
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn malformed_baseline_rejected() {
        assert!(parse_baseline("L99 foo 1").is_err());
        assert!(parse_baseline("SUP foo 1").is_err());
        assert!(parse_baseline("L1 foo").is_err());
        assert!(parse_baseline("L1 foo one").is_err());
        // New rule ids parse.
        assert!(parse_baseline("L11 foo 1\nL7 bar 2").is_ok());
    }

    #[test]
    fn json_rendering_is_escaped_and_stable() {
        let f = vec![Finding {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            id: LintId::L10,
            message: "metric name \"bad\nname\" rejected".into(),
            suggestion: "fix \\ it".into(),
            fix: vec![fix::Edit::insert(0, "x".to_string())],
        }];
        let meta = LintMeta {
            files: 1,
            phases: vec![PhaseTime {
                name: "parse",
                ms: 7,
            }],
            parallel: index::ParallelStats {
                workers: 4,
                task_ms: 10,
                wall_ms: 4,
            },
        };
        let a = render_json(&f, &f, &[], &meta);
        let b = render_json(&f, &f, &[], &meta);
        assert_eq!(a, b);
        assert!(a.contains("\\\"bad\\nname\\\""), "{a}");
        assert!(a.contains("fix \\\\ it"), "{a}");
        assert!(a.contains("\"baselined\": false"));
        assert!(a.contains("\"fixable\": true"), "{a}");
        assert!(a.contains("\"counts\": {\"L10\": 1}"));
        assert!(
            a.contains(
                "\"meta\": {\"files\": 1, \"rules\": {\"L10\": 1}, \
                        \"phases\": [{\"name\": \"parse\", \"ms\": 7}], \
                        \"parallel\": {\"workers\": 4, \"task_ms\": 10, \"wall_ms\": 4, \
                        \"speedup_milli\": 2500}}"
            ),
            "{a}"
        );
        // Empty-findings document is well-formed too; zeroed timings
        // (the `--timings none` shape) render all-zero parallel stats.
        let empty = render_json(&[], &[], &[], &LintMeta::default());
        assert!(empty.contains("\"findings\": []"), "{empty}");
        assert!(empty.contains("\"phases\": []"), "{empty}");
        assert!(
            empty.contains(
                "\"parallel\": {\"workers\": 0, \"task_ms\": 0, \"wall_ms\": 0, \
                 \"speedup_milli\": 0}"
            ),
            "{empty}"
        );
    }

    #[test]
    fn baseline_rendering_is_sorted_and_excludes_sup() {
        let f = |path: &str, id, line| Finding {
            path: path.into(),
            line,
            id,
            message: "m".into(),
            suggestion: String::new(),
            fix: Vec::new(),
        };
        let findings = vec![
            f("crates/cloud/src/vm.rs", LintId::L5, 9),
            f("crates/cloud/src/vm.rs", LintId::L5, 3),
            f("crates/core/src/stats.rs", LintId::L12, 1),
            f("crates/core/src/stats.rs", LintId::Sup, 2),
        ];
        let text = render_baseline(&findings);
        assert!(text.starts_with("# cackle-lint accepted debt"), "{text}");
        let entries: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();
        assert_eq!(
            entries,
            [
                "L5 crates/cloud/src/vm.rs 2",
                "L12 crates/core/src/stats.rs 1"
            ]
        );
        // The rendered content re-parses into the same debt.
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(
            parsed.get(&(LintId::L5, "crates/cloud/src/vm.rs".into())),
            Some(&2)
        );
        // Byte-stable for identical findings.
        assert_eq!(text, render_baseline(&findings));
        // No findings → header only, which parses to an empty baseline.
        let empty = render_baseline(&[]);
        assert!(parse_baseline(&empty).unwrap().is_empty());
    }

    #[test]
    fn new_rules_scoped_and_suppressible() {
        // L12 fires in core, not in bench. (Bytes vs seconds, so the
        // check exercised is L12 alone — money would also trip L11.)
        let mix =
            "fn f(payload_bytes: f64, elapsed_secs: f64) -> f64 { payload_bytes + elapsed_secs }";
        assert!(lint_source("crates/core/src/stats.rs", mix)
            .iter()
            .any(|f| f.id == LintId::L12));
        assert!(lint_source("crates/bench/src/lib.rs", mix).is_empty());
        // Suppressible like any other rule.
        let allowed = "fn f(payload_bytes: f64, elapsed_secs: f64) -> f64 { payload_bytes + elapsed_secs } // cackle-lint: allow(L12)";
        assert!(lint_source("crates/core/src/stats.rs", allowed).is_empty());
        // L13 fires in core, not in the prng crate or in #[test] items.
        let seed = "fn f() -> Pcg32 { Pcg32::seed_from_u64(42) }";
        assert!(lint_source("crates/core/src/model.rs", seed)
            .iter()
            .any(|f| f.id == LintId::L13));
        assert!(lint_source("crates/prng/src/lib.rs", seed).is_empty());
        let test_seed = "#[test]\nfn t() { let r = Pcg32::seed_from_u64(42); }";
        assert!(lint_source("crates/core/src/model.rs", test_seed).is_empty());
        // L14 is engine-only even for reachable code.
        let hot = "pub fn execute_task_buffered(n: usize) { for i in 0..n { let v: Vec<u32> = (0..i).collect(); } }";
        assert!(lint_source("crates/engine/src/task.rs", hot)
            .iter()
            .any(|f| f.id == LintId::L14));
        assert!(lint_source("crates/core/src/system.rs", hot)
            .iter()
            .all(|f| f.id != LintId::L14));
        // L15 fires outside bench.
        let cast = "fn f(total_cost: f64) -> f32 { total_cost as f32 }";
        assert!(lint_source("crates/core/src/stats.rs", cast)
            .iter()
            .any(|f| f.id == LintId::L15));
        assert!(lint_source("crates/bench/src/lib.rs", cast).is_empty());
    }

    #[test]
    fn unit_annotations_coexist_with_allow_and_malformed_units_are_sup() {
        // A unit annotation is not a malformed suppression.
        let ok =
            "fn f() -> f64 {\n    // cackle-lint: unit(usd)\n    let budget = 10.0;\n    budget\n}";
        assert!(
            lint_source("crates/core/src/stats.rs", ok).is_empty(),
            "{:?}",
            lint_source("crates/core/src/stats.rs", ok)
        );
        // A malformed unit annotation is a SUP hard error.
        let bad = "fn f() -> f64 {\n    let b = 1.0; // cackle-lint: unit(furlongs)\n    b\n}";
        let f = lint_source("crates/core/src/stats.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, LintId::Sup);
        assert!(f[0].message.contains("furlongs"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn meta_reports_files_and_all_phases() {
        let (_, meta) = lint_files_with_meta(vec![(
            "crates/core/src/x.rs".to_string(),
            "fn f() {}".to_string(),
        )]);
        assert_eq!(meta.files, 1);
        let names: Vec<&str> = meta.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["parse", "dataflow", "rules", "filter"]);
    }
}
