//! The unit-of-measure lattice behind L12/L15: which physical dimension
//! an identifier, API argument, or metric name carries.
//!
//! Units are inferred from three sources, in priority order:
//!
//! 1. an explicit `// cackle-lint: unit(usd|seconds|bytes|rows|count|none)`
//!    annotation on the binding's line (or, as an own-line comment, on
//!    the line above it) — `unit(none)` marks a binding as explicitly
//!    dimensionless, defeating a misleading name;
//! 2. the billing / telemetry API signature table below (`charge`'s
//!    amount is dollars whatever the argument is called);
//! 3. identifier naming conventions (`*_cost` is dollars, `*_secs` is
//!    seconds, `*_bytes` is bytes, ...), aligned with L11's
//!    cost-naming so the two rules never disagree about money.
//!
//! Rate-shaped names (`vm_per_sec`, `bytes_per_row`) are deliberately
//! *not* assigned a base unit: a rate times a duration is exactly the
//! arithmetic Pricing performs, and flagging it would force noise
//! suppressions inside the billing layer.

use std::collections::BTreeMap;

/// A base unit of measure. There is no algebra here — rates and
/// products are simply "no unit" — because the rules only need to catch
/// *mixing* base units, not verify dimensional correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Dollars (aligned with L11's cost-naming).
    Usd,
    /// Wall-clock / simulated seconds.
    Seconds,
    /// Payload or memory sizes.
    Bytes,
    /// Row counts flowing through operators.
    Rows,
    /// Generic cardinalities (requests, retries, workers).
    Count,
}

impl Unit {
    /// Human name, also the annotation spelling.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Usd => "usd",
            Unit::Seconds => "seconds",
            Unit::Bytes => "bytes",
            Unit::Rows => "rows",
            Unit::Count => "count",
        }
    }

    /// Parse an annotation spelling. `none` is handled by the caller
    /// (it is an explicit absence, not a unit).
    pub fn parse(s: &str) -> Option<Unit> {
        match s {
            "usd" => Some(Unit::Usd),
            "seconds" => Some(Unit::Seconds),
            "bytes" => Some(Unit::Bytes),
            "rows" => Some(Unit::Rows),
            "count" => Some(Unit::Count),
            _ => None,
        }
    }

    /// Units where adding a bare numeric literal is (almost) always a
    /// bug: `cost + 1.0`, `secs + 5`, `bytes + 100` hide a constant
    /// that deserves a name and a unit. Cardinalities are exempt —
    /// `rows + 1` / `count - 1` are ordinary index arithmetic.
    pub fn scalar_add_suspicious(self) -> bool {
        matches!(self, Unit::Usd | Unit::Seconds | Unit::Bytes)
    }

    /// Units where a narrowing cast can silently truncate a quantity
    /// the paper's claims depend on (L15). `Count` is exempt: casting
    /// small cardinalities for indexing is ubiquitous and harmless.
    pub fn narrowing_suspicious(self) -> bool {
        matches!(self, Unit::Usd | Unit::Seconds | Unit::Bytes | Unit::Rows)
    }
}

/// Unit conventionally carried by an identifier, or `None` when the
/// name is unit-less or rate-shaped.
pub fn of_ident(name: &str) -> Option<Unit> {
    let lower = name.to_ascii_lowercase();
    // Rates carry no base unit (`vm_per_sec`, `bytes_per_row`).
    if lower.contains("_per_") || lower.contains("per_sec") {
        return None;
    }
    // Std conversion methods are representation changes, not byte
    // quantities: `x.to_le_bytes()` yields an array, and hashing it
    // does not make the hash bytes-dimensioned.
    if matches!(
        lower.as_str(),
        "to_le_bytes"
            | "to_be_bytes"
            | "to_ne_bytes"
            | "from_le_bytes"
            | "from_be_bytes"
            | "from_ne_bytes"
            | "as_bytes"
            | "into_bytes"
    ) {
        return None;
    }
    // Money first: aligned with L11's `is_cost_named` plus billing
    // vocabulary (`vm_billed`).
    if ["dollar", "cost", "price", "usd", "billed"]
        .iter()
        .any(|k| lower.contains(k))
    {
        return Some(Unit::Usd);
    }
    if lower.contains("bytes") || lower.ends_with("byte_size") {
        return Some(Unit::Bytes);
    }
    if lower.contains("rows") || lower == "nrows" || lower.ends_with("row_count") {
        return Some(Unit::Rows);
    }
    if lower.ends_with("_secs")
        || lower.ends_with("_seconds")
        || lower.ends_with("_sec")
        || lower == "secs"
        || lower == "seconds"
        || lower.contains("duration")
        || lower.contains("latency")
    {
        return Some(Unit::Seconds);
    }
    if lower.ends_with("_count") || lower == "count" {
        return Some(Unit::Count);
    }
    None
}

/// Unit an API argument must carry: `(callee, zero-based arg index)`.
/// This is how `charge(category, amount)` assigns dollars to `amount`
/// even when the caller names it `x`.
pub fn arg_unit(callee: &str, arg_idx: usize) -> Option<Unit> {
    match (callee, arg_idx) {
        ("charge", 1) | ("try_charge", 1) => Some(Unit::Usd),
        ("charge_requests", 1) => Some(Unit::Count),
        ("charge_requests", 2) => Some(Unit::Usd),
        _ => None,
    }
}

/// Unit a well-known API call returns, for callees whose *name* does
/// not already encode it (`Pricing::vm_cost` is covered by
/// [`of_ident`]).
pub fn return_unit_api(callee: &str) -> Option<Unit> {
    match callee {
        "byte_size" => Some(Unit::Bytes),
        "num_rows" => Some(Unit::Rows),
        _ => None,
    }
}

/// Unit implied by a telemetry metric name (DESIGN §7 grammar):
/// inferred from the final dot-segment with the cumulative `_total`
/// suffix stripped, so `engine.task_rows_out_total` is rows and
/// `pool.queue_wait_seconds` is seconds.
pub fn metric_unit(name: &str) -> Option<Unit> {
    let last = name.rsplit('.').next().unwrap_or(name);
    let stripped = last.strip_suffix("_total").unwrap_or(last);
    of_ident(stripped)
}

/// Parsed `// cackle-lint: unit(...)` annotations for one file.
#[derive(Debug, Default)]
pub struct UnitAnnots {
    /// Line → declared unit (`None` = explicitly dimensionless).
    /// An own-line annotation comment also covers the next line, the
    /// same convention `allow(...)` uses.
    pub by_line: BTreeMap<usize, Option<Unit>>,
    /// Malformed annotations: `(line, what)` — surfaced as SUP.
    pub errors: Vec<(usize, String)>,
}

/// Scan a file's source for unit annotations.
pub fn annotations(source: &str) -> UnitAnnots {
    const MARKER: &str = "cackle-lint:";
    let mut out = UnitAnnots::default();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let Some(at) = raw.find(MARKER) else {
            continue;
        };
        let rest = raw[at + MARKER.len()..].trim_start();
        let Some(list) = rest.strip_prefix("unit(") else {
            continue; // `allow(...)` and malformed markers are lib.rs's job
        };
        let Some(close) = list.find(')') else {
            out.errors
                .push((line, "malformed unit annotation: missing `)`".into()));
            continue;
        };
        let body = list[..close].trim();
        let unit = if body == "none" {
            None
        } else {
            match Unit::parse(body) {
                Some(u) => Some(u),
                None => {
                    out.errors.push((
                        line,
                        format!(
                            "malformed unit annotation: unknown unit `{body}` \
                             (expected usd|seconds|bytes|rows|count|none)"
                        ),
                    ));
                    continue;
                }
            }
        };
        out.by_line.insert(line, unit);
        let prefix = raw[..at].trim();
        if !prefix.is_empty() && prefix.chars().all(|c| c == '/' || c == '!') {
            out.by_line.insert(line + 1, unit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_conventions() {
        assert_eq!(of_ident("vm_cost"), Some(Unit::Usd));
        assert_eq!(of_ident("total_usd"), Some(Unit::Usd));
        assert_eq!(of_ident("shuffle_billed"), Some(Unit::Usd));
        assert_eq!(of_ident("elapsed_secs"), Some(Unit::Seconds));
        assert_eq!(of_ident("queue_latency"), Some(Unit::Seconds));
        assert_eq!(of_ident("payload_bytes"), Some(Unit::Bytes));
        assert_eq!(of_ident("rows_out"), Some(Unit::Rows));
        assert_eq!(of_ident("num_rows"), Some(Unit::Rows));
        assert_eq!(of_ident("row_count"), Some(Unit::Rows));
        assert_eq!(of_ident("retry_count"), Some(Unit::Count));
        // Rates carry no base unit.
        assert_eq!(of_ident("vm_per_sec"), None);
        assert_eq!(of_ident("bytes_per_row"), None);
        // Near-misses stay unit-less.
        assert_eq!(of_ident("discount_x"), None);
        assert_eq!(of_ident("secondary"), None);
        assert_eq!(of_ident("x"), None);
        // Representation conversions are not byte quantities: a hash of
        // `x.to_le_bytes()` must not come out bytes-dimensioned.
        assert_eq!(of_ident("to_le_bytes"), None);
        assert_eq!(of_ident("from_be_bytes"), None);
        assert_eq!(of_ident("as_bytes"), None);
    }

    #[test]
    fn api_signature_table() {
        assert_eq!(arg_unit("charge", 1), Some(Unit::Usd));
        assert_eq!(arg_unit("charge", 0), None);
        assert_eq!(arg_unit("charge_requests", 1), Some(Unit::Count));
        assert_eq!(arg_unit("charge_requests", 2), Some(Unit::Usd));
        assert_eq!(return_unit_api("byte_size"), Some(Unit::Bytes));
        assert_eq!(return_unit_api("len"), None);
    }

    #[test]
    fn metric_name_units() {
        assert_eq!(metric_unit("pool.queue_wait_seconds"), Some(Unit::Seconds));
        assert_eq!(metric_unit("engine.task_rows_out_total"), Some(Unit::Rows));
        assert_eq!(
            metric_unit("shuffle_fleet.bytes_written_total"),
            Some(Unit::Bytes)
        );
        assert_eq!(metric_unit("run.cost_usd"), Some(Unit::Usd));
        assert_eq!(metric_unit("engine.tasks_total"), None);
    }

    #[test]
    fn annotation_scanning() {
        let src = "\
// cackle-lint: unit(seconds)\n\
let budget = 5.0;\n\
let x = 1; // cackle-lint: unit(bytes)\n\
let count = 3; // cackle-lint: unit(none)\n\
let bad = 0; // cackle-lint: unit(furlongs)\n\
let worse = 0; // cackle-lint: unit(usd\n";
        let a = annotations(src);
        // Own-line comment covers its own line and the next.
        assert_eq!(a.by_line.get(&1), Some(&Some(Unit::Seconds)));
        assert_eq!(a.by_line.get(&2), Some(&Some(Unit::Seconds)));
        // Trailing comment covers its line only.
        assert_eq!(a.by_line.get(&3), Some(&Some(Unit::Bytes)));
        assert_eq!(a.by_line.get(&4), Some(&None));
        assert_eq!(a.errors.len(), 2, "{:?}", a.errors);
        assert!(a.errors[0].1.contains("furlongs"));
        assert!(a.errors[1].1.contains("missing"));
    }
}
