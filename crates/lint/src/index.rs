//! Workspace symbol index: per-file parse results, fn items, `use`
//! edges, lock/atomic bindings, and an approximate call graph.
//!
//! The call graph is resolved **by bare name**: a call `foo(...)` or
//! `.foo(...)` is an edge to every workspace `fn foo`. That is the
//! honest trade for staying dependency-free (no type information): it
//! over-approximates — trait-object dispatch like `dyn ShuffleTransport`
//! is exactly why over-approximation is the *right* direction for the
//! concurrency rules (a missed edge hides a deadlock; an extra edge at
//! worst widens a scope). A small stoplist of pure-std utility names
//! (`new`, `clone`, `push`, ...) keeps ubiquitous std methods from
//! connecting everything to everything; names that can plausibly host
//! lock or fault-draw behaviour (`read`, `write`, `get`, `lock`) are
//! deliberately NOT stoplisted.

use crate::parser::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Std-utility method names excluded from call-graph edges. Everything
/// here is a name no workspace fn should reuse for lock-taking or
/// fault-drawing behaviour; `tests/fixtures` exercise the consequence.
const CALL_EDGE_STOPLIST: [&str; 40] = [
    "new",
    "default",
    "clone",
    "fmt",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "collect",
    "map",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "min",
    "max",
    "sum",
    "abs",
    "to_string",
    "as_str",
    "as_ref",
    "from",
    "into",
    "eq",
    "cmp",
    "partial_cmp",
    "sort",
    "retain",
    "take",
    "replace",
];

/// One source file of the linted tree.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the linted root, forward slashes.
    pub rel_path: String,
    /// Raw source (the suppression scanner reads lines).
    pub source: String,
    /// Lexed + structured form.
    pub parsed: ParsedFile,
    /// File stem (`shuffle` for `crates/engine/src/shuffle.rs`) —
    /// qualifies lock identities across files.
    pub stem: String,
    /// Lives under a `tests/` or `benches/` directory (restricted rule
    /// set).
    pub is_test_dir: bool,
}

/// A call site inside an indexed fn.
#[derive(Debug, Clone)]
pub struct Call {
    /// Bare callee name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Token index of the opening `(`.
    pub open: usize,
}

/// One `fn` of the workspace, addressed as (file, item).
#[derive(Debug)]
pub struct IndexedFn {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub item: usize,
    /// Call sites in the body, source order.
    pub calls: Vec<Call>,
}

/// The cross-file symbol index.
#[derive(Debug, Default)]
pub struct Index {
    /// Every fn item in the workspace.
    pub fns: Vec<IndexedFn>,
    /// Bare fn name → fn ids defining it (any file, any impl).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per file: identifiers bound with `Mutex`/`RwLock` types.
    pub lock_names: Vec<BTreeSet<String>>,
    /// Per file: identifiers bound with `Atomic*` types.
    pub atomic_names: Vec<BTreeSet<String>>,
}

/// The whole linted tree: parsed files plus the symbol index.
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub index: Index,
}

/// Wall-clock accounting for the parallel lex+parse stage: `task_ms`
/// is the sum of per-worker busy time, `wall_ms` the elapsed time of
/// the whole stage, so `task_ms / wall_ms` is the realized speedup.
/// All three zero out under `--timings none` (worker count is
/// machine-dependent, so determinism requires hiding it too).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelStats {
    /// Worker threads used (1 = serial path).
    pub workers: usize,
    /// Sum of per-worker busy milliseconds.
    pub task_ms: u128,
    /// Elapsed milliseconds of the parse stage.
    pub wall_ms: u128,
}

impl ParallelStats {
    /// Realized parse-stage speedup ×1000 (`2500` = 2.5×), `0` when
    /// the stage was too fast to measure.
    pub fn speedup_milli(&self) -> u128 {
        if self.wall_ms == 0 {
            0
        } else {
            self.task_ms * 1000 / self.wall_ms
        }
    }
}

fn parse_one(rel_path: String, source: String) -> SourceFile {
    let parsed = ParsedFile::parse(&source);
    let stem = rel_path
        .rsplit('/')
        .next()
        .unwrap_or(&rel_path)
        .trim_end_matches(".rs")
        .to_string();
    let is_test_dir = rel_path.split('/').any(|c| c == "tests" || c == "benches");
    SourceFile {
        rel_path,
        source,
        parsed,
        stem,
        is_test_dir,
    }
}

impl Workspace {
    /// Parse and index `(rel_path, source)` pairs.
    pub fn build(inputs: Vec<(String, String)>) -> Workspace {
        Workspace::build_with_stats(inputs).0
    }

    /// [`Workspace::build`] plus parse-stage parallelism accounting.
    ///
    /// Lex+parse is embarrassingly parallel (per-file, no shared
    /// state), so files are claimed by index from a
    /// `std::thread::scope` pool — the same claim-by-index pattern as
    /// the engine executor, and the second blessed L6 site. Results
    /// land in index-ordered slots and the symbol index is built
    /// serially afterwards, so the workspace — and every finding and
    /// byte of output derived from it — is identical at any worker
    /// count.
    pub fn build_with_stats(inputs: Vec<(String, String)>) -> (Workspace, ParallelStats) {
        let wall = Instant::now();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
            .min(inputs.len().max(1));
        let (files, task_ms) = if workers < 2 {
            let t = Instant::now();
            let files = inputs
                .into_iter()
                .map(|(p, s)| parse_one(p, s))
                .collect::<Vec<_>>();
            (files, t.elapsed().as_millis())
        } else {
            let n = inputs.len();
            let next = AtomicUsize::new(0);
            let busy_ms = AtomicU64::new(0);
            let mut slots: Vec<Option<SourceFile>> = Vec::new();
            slots.resize_with(n, || None);
            let parsed: Vec<(usize, SourceFile)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let t = Instant::now();
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::SeqCst);
                                if i >= n {
                                    break;
                                }
                                let (p, src) = &inputs[i];
                                local.push((i, parse_one(p.clone(), src.clone())));
                            }
                            busy_ms.fetch_add(t.elapsed().as_millis() as u64, Ordering::SeqCst);
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("parser worker panicked"))
                    .collect()
            });
            for (i, file) in parsed {
                slots[i] = Some(file);
            }
            let files = slots
                .into_iter()
                .map(|f| f.expect("every input index claimed exactly once"))
                .collect();
            (files, busy_ms.load(Ordering::SeqCst) as u128)
        };
        let stats = ParallelStats {
            workers,
            task_ms,
            wall_ms: wall.elapsed().as_millis(),
        };

        let mut index = Index::default();
        for (fi, f) in files.iter().enumerate() {
            index.lock_names.push(typed_bindings(&f.parsed, &|name| {
                name == "Mutex" || name == "RwLock"
            }));
            index.atomic_names.push(typed_bindings(&f.parsed, &|name| {
                name.starts_with("Atomic") && name.len() > "Atomic".len()
            }));
            for (ii, item) in f.parsed.fns.iter().enumerate() {
                let calls = match item.body {
                    Some(body) => f
                        .parsed
                        .calls_in(body)
                        .into_iter()
                        .map(|(name, name_tok, open)| Call {
                            name,
                            name_tok,
                            open,
                        })
                        .collect(),
                    None => Vec::new(),
                };
                let id = index.fns.len();
                index.fns.push(IndexedFn {
                    file: fi,
                    item: ii,
                    calls,
                });
                index
                    .by_name
                    .entry(f.parsed.fns[ii].name.clone())
                    .or_default()
                    .push(id);
            }
        }
        (Workspace { files, index }, stats)
    }

    /// The fn item record for fn id `id`.
    pub fn fn_item(&self, id: usize) -> &crate::parser::FnItem {
        let f = &self.index.fns[id];
        &self.files[f.file].parsed.fns[f.item]
    }

    /// Call-graph successors of fn `id` (stoplist applied), as fn ids.
    pub fn callees(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for call in &self.index.fns[id].calls {
            if CALL_EDGE_STOPLIST.contains(&call.name.as_str()) {
                continue;
            }
            if let Some(ids) = self.index.by_name.get(&call.name) {
                out.extend(ids.iter().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Fn ids reachable from every fn named `root` (roots included),
    /// following name-resolved call edges.
    pub fn reachable_from(&self, root: &str) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut work: Vec<usize> = self
            .index
            .by_name
            .get(root)
            .map(|ids| ids.clone())
            .unwrap_or_default();
        while let Some(id) = work.pop() {
            if !seen.insert(id) {
                continue;
            }
            work.extend(self.callees(id));
        }
        seen
    }

    /// Is the call edge through `name` kept in the graph?
    pub fn edge_name_kept(name: &str) -> bool {
        !CALL_EDGE_STOPLIST.contains(&name)
    }
}

/// Identifiers declared with a type accepted by `is_type`:
/// `name: ...Type<...>` (fields, params, statics) and
/// `let [mut] name = ... Type::new(...)`-style initializers.
fn typed_bindings(parsed: &ParsedFile, is_type: &dyn Fn(&str) -> bool) -> BTreeSet<String> {
    let toks = &parsed.toks;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].ident().is_empty() {
            continue;
        }
        // `name : ... Type` within a few tokens, before any delimiter.
        if toks.get(i + 1).map(|t| t.punct()) == Some(":") {
            for t in toks.iter().skip(i + 2).take(8) {
                if is_type(t.ident()) {
                    names.insert(toks[i].text.clone());
                    break;
                }
                if matches!(t.punct(), "," | ";" | ")" | "{" | "}" | "=") {
                    break;
                }
            }
        }
        // `let [mut] name ... = ... Type ... ;`
        if toks[i].ident() == "let" {
            let mut j = i + 1;
            if toks.get(j).map(|t| t.ident()) == Some("mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| !t.ident().is_empty()) {
                let mut k = j + 1;
                while k < toks.len() && toks[k].punct() != ";" {
                    if is_type(toks[k].ident()) {
                        names.insert(name.text.clone());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn cross_file_reachability_by_name() {
        let w = ws(&[
            (
                "crates/engine/src/task.rs",
                "pub fn execute_task_buffered() { helper(); }",
            ),
            (
                "crates/core/src/transport.rs",
                "pub fn helper() { leaf(); }\npub fn leaf() {}",
            ),
            ("crates/core/src/other.rs", "pub fn unrelated() {}"),
        ]);
        let reach = w.reachable_from("execute_task_buffered");
        let names: BTreeSet<&str> = reach
            .iter()
            .map(|&id| w.fn_item(id).name.as_str())
            .collect();
        assert_eq!(
            names,
            ["execute_task_buffered", "helper", "leaf"]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn stoplisted_names_do_not_create_edges() {
        let w = ws(&[
            ("a.rs", "fn root() { x.clone(); target(); }"),
            (
                "b.rs",
                "fn clone() { leak(); }\nfn target() {}\nfn leak() {}",
            ),
        ]);
        let reach = w.reachable_from("root");
        let names: BTreeSet<&str> = reach
            .iter()
            .map(|&id| w.fn_item(id).name.as_str())
            .collect();
        assert!(names.contains("target"));
        assert!(!names.contains("clone"), "{names:?}");
        assert!(!names.contains("leak"));
    }

    #[test]
    fn lock_and_atomic_bindings_collected() {
        let w = ws(&[(
            "crates/engine/src/shuffle.rs",
            "struct S { data: RwLock<u32>, stats: Mutex<u8>, n: AtomicUsize }\n\
             fn f() { let local = Mutex::new(0); let c = AtomicU64::new(0); }",
        )]);
        let locks = &w.index.lock_names[0];
        assert!(locks.contains("data") && locks.contains("stats") && locks.contains("local"));
        assert!(!locks.contains("n"));
        let atomics = &w.index.atomic_names[0];
        assert!(atomics.contains("n") && atomics.contains("c"));
        assert!(!atomics.contains("data"));
    }

    #[test]
    fn parallel_parse_preserves_input_order_and_index() {
        // Enough files that a multi-core machine takes the pooled path;
        // the workspace must come out in input order regardless, with
        // fn ids assigned file-major exactly as the serial path would.
        let inputs: Vec<(String, String)> = (0..40)
            .map(|i| {
                (
                    format!("crates/core/src/f{i:02}.rs"),
                    format!("pub fn f{i:02}() {{ helper(); }}"),
                )
            })
            .collect();
        let (w, stats) = Workspace::build_with_stats(inputs.clone());
        assert!(stats.workers >= 1);
        assert_eq!(w.files.len(), 40);
        for (i, f) in w.files.iter().enumerate() {
            assert_eq!(f.rel_path, inputs[i].0);
        }
        for (id, f) in w.index.fns.iter().enumerate() {
            assert_eq!(f.file, id, "fn ids must be file-major in input order");
        }
        assert_eq!(w.index.by_name.len(), 40);
    }

    #[test]
    fn test_dir_files_flagged() {
        let w = ws(&[
            ("crates/cloud/tests/proptests.rs", "fn t() {}"),
            ("crates/cloud/src/vm.rs", "fn f() {}"),
        ]);
        assert!(w.files[0].is_test_dir);
        assert!(!w.files[1].is_test_dir);
    }
}
