//! Intra-procedural value flow with interprocedural summaries — the
//! analysis layer under L12–L15.
//!
//! Per function, the statement/scope extents from [`crate::parser`] are
//! lifted into an *assignment graph*: parameters, `let` bindings and
//! re-assignments with their right-hand-side token ranges, loop body
//! extents, and return-expression ranges. On top of that:
//!
//! * a transitive **source closure** maps each local to the set of
//!   identifiers (and `call:` callee names) its value was derived from
//!   — the taint machinery behind L13's seed provenance;
//! * a per-function **unit environment** assigns a [`Unit`] to locals
//!   from annotations, naming conventions, and right-hand-side
//!   propagation — the typing machinery behind L12/L15;
//! * per-function **summaries** (`ret_unit`, `seed_derived`) are
//!   iterated to fixpoint over the PR 5 call graph so units and taint
//!   cross function boundaries by bare callee name (the same honest
//!   over-approximation the call graph itself makes, with the same
//!   stoplist so `len()` never donates a unit).
//!
//! Everything here is conservative in the lint direction: failing to
//! model a construct loses information (a local has no unit, a source
//! set is smaller), which can only cost a finding — except for L13,
//! whose *unproven* verdict is deliberately loud and carries its own
//! annotation escape hatch.

use crate::index::Workspace;
use crate::lexer::TokKind;
use crate::parser::{FnItem, ParsedFile};
use crate::units::{self, Unit};
use std::collections::{BTreeMap, BTreeSet};

/// Keywords that never name a value.
const KEYWORDS: [&str; 24] = [
    "let", "mut", "if", "else", "match", "return", "as", "in", "for", "while", "loop", "move",
    "ref", "fn", "impl", "mod", "use", "pub", "break", "continue", "where", "struct", "enum",
    "self",
];

/// One assignment: `target = <rhs tokens>`.
#[derive(Debug, Clone)]
pub struct Assign {
    /// Bound name (terminal identifier for field chains like
    /// `self.total = ...`).
    pub target: String,
    /// Token index of the target name.
    pub target_tok: usize,
    /// Inclusive token range of the right-hand side.
    pub rhs: (usize, usize),
}

/// The per-function value-flow facts.
#[derive(Debug, Default)]
pub struct FnFlow {
    /// `(name, name token)` for each signature parameter.
    pub params: Vec<(String, usize)>,
    /// `let` bindings and re-assignments, source order.
    pub assigns: Vec<Assign>,
    /// Inclusive `{`..`}` token ranges of `for`/`while`/`loop` bodies.
    pub loops: Vec<(usize, usize)>,
    /// Inclusive token ranges of `return <expr>` expressions and the
    /// trailing tail expression (when present).
    pub returns: Vec<(usize, usize)>,
}

impl FnFlow {
    /// Build the flow facts for one fn item.
    pub fn build(p: &ParsedFile, item: &FnItem) -> FnFlow {
        let mut flow = FnFlow::default();
        flow.collect_params(p, item);
        let Some(body) = item.body else {
            return flow;
        };
        flow.collect_assigns(p, body);
        flow.collect_loops(p, body);
        flow.collect_returns(p, body);
        flow
    }

    /// Is token `i` inside one of this fn's loop bodies?
    pub fn in_loop(&self, i: usize) -> bool {
        self.loops.iter().any(|&(lo, hi)| i > lo && i < hi)
    }

    fn collect_params(&mut self, p: &ParsedFile, item: &FnItem) {
        let toks = &p.toks;
        // Signature: `fn name [<generics>] ( params )`.
        let mut j = item.kw + 2;
        if toks.get(j).map(|t| t.punct()) == Some("<") {
            j = skip_angles(toks, j);
        }
        if toks.get(j).map(|t| t.punct()) != Some("(") {
            return;
        }
        let Some(close) = p.close_of(j) else {
            return;
        };
        let mut k = j + 1;
        while k < close {
            let t = &toks[k];
            let pt = t.punct();
            if matches!(pt, "(" | "[" | "{") {
                // Pattern or type group: skip wholesale.
                k = p.close_of(k).filter(|&c| c < close).unwrap_or(close);
            } else if t.kind == TokKind::Ident
                && t.text != "self"
                && t.text != "mut"
                && toks.get(k + 1).map(|t| t.punct()) == Some(":")
            {
                self.params.push((t.text.clone(), k));
                // Skip the type up to the next top-level comma.
                let mut d = k + 2;
                while d < close {
                    let dp = toks[d].punct();
                    if dp == "," {
                        break;
                    }
                    if matches!(dp, "(" | "[" | "{") {
                        d = p.close_of(d).filter(|&c| c < close).unwrap_or(close);
                    } else if dp == "<" {
                        d = skip_angles(toks, d);
                        continue;
                    }
                    d += 1;
                }
                k = d;
            }
            k += 1;
        }
    }

    fn collect_assigns(&mut self, p: &ParsedFile, body: (usize, usize)) {
        let toks = &p.toks;
        let mut i = body.0 + 1;
        while i < body.1 {
            // `let [mut] name [: Ty] = rhs ;` — patterns (`let (a, b)`,
            // `if let Some(x)`) are skipped: destructured halves simply
            // have no recorded source, which only loses information.
            if toks[i].ident() == "let" {
                let mut j = i + 1;
                if toks.get(j).map(|t| t.ident()) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                    let after = toks.get(j + 1).map(|t| t.punct()).unwrap_or("");
                    if after == "=" || after == ":" {
                        let end = p.statement_end(i);
                        // Find the `=` at statement depth (skipping any
                        // type annotation's groups; `==`/`=>`/`..=` are
                        // single tokens, so a bare `=` is unambiguous).
                        let mut e = j + 1;
                        let mut eq = None;
                        while e < end {
                            let ep = toks[e].punct();
                            if ep == "=" {
                                eq = Some(e);
                                break;
                            }
                            if matches!(ep, "(" | "[" | "{") {
                                e = p.close_of(e).filter(|&c| c < end).unwrap_or(end);
                            }
                            e += 1;
                        }
                        if let Some(eq) = eq {
                            if eq + 1 < end {
                                self.assigns.push(Assign {
                                    target: name.text.clone(),
                                    target_tok: j,
                                    rhs: (eq + 1, end - 1),
                                });
                            }
                        }
                        i = j + 1;
                        continue;
                    }
                }
            }
            // Re-assignment / compound assignment at statement start:
            // `name = rhs;`, `x.field += rhs;` (target = terminal ident).
            if toks[i].kind == TokKind::Ident
                && !KEYWORDS.contains(&toks[i].text.as_str())
                && p.statement_start(i) == i
            {
                // Walk a field chain `a.b.c`.
                let mut t = i;
                while toks.get(t + 1).map(|x| x.punct()) == Some(".")
                    && toks.get(t + 2).map(|x| x.kind) == Some(TokKind::Ident)
                {
                    t += 2;
                }
                let op = toks.get(t + 1).map(|x| x.punct()).unwrap_or("");
                if matches!(op, "=" | "+=" | "-=" | "*=" | "/=") {
                    let end = p.statement_end(i);
                    if t + 2 < end {
                        self.assigns.push(Assign {
                            target: toks[t].text.clone(),
                            target_tok: t,
                            rhs: (t + 2, end - 1),
                        });
                    }
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }

    fn collect_loops(&mut self, p: &ParsedFile, body: (usize, usize)) {
        let toks = &p.toks;
        for i in body.0..=body.1 {
            let kw = toks[i].ident();
            if !matches!(kw, "for" | "while" | "loop") {
                continue;
            }
            // Find the loop body `{`, skipping header groups (iterator
            // expressions, closure arguments). Headers cannot contain a
            // bare `{` (rustc forbids struct literals there).
            let mut j = i + 1;
            let open = loop {
                match toks.get(j).map(|t| t.punct()) {
                    Some("{") => break Some(j),
                    Some("(") | Some("[") => {
                        j = match p.close_of(j) {
                            Some(c) if c < body.1 => c + 1,
                            _ => break None,
                        };
                    }
                    Some(";") | Some("}") | None => break None,
                    _ => j += 1,
                }
            };
            if let Some(open) = open {
                if let Some(close) = p.close_of(open) {
                    self.loops.push((open, close));
                }
            }
        }
    }

    fn collect_returns(&mut self, p: &ParsedFile, body: (usize, usize)) {
        let toks = &p.toks;
        for i in body.0 + 1..body.1 {
            if toks[i].ident() == "return" {
                let end = p.statement_end(i);
                if end > i + 1 {
                    self.returns.push((i + 1, end - 1));
                }
            }
        }
        // Tail expression: the final statement when it has no `;`.
        if body.1 > body.0 + 1 {
            let last = body.1 - 1;
            if toks[last].punct() != ";" {
                let mut start = stmt_start_deep(p, last);
                // stmt_start_deep walks back over `}`-closed groups so a
                // tail `match x { ... }` is captured wholesale — but that
                // also drags in a *preceding* block statement (`for b in
                // bytes { ... } h`). Such a block is not part of the tail
                // expression: hop past every leading block construct whose
                // close lands strictly before `last`.
                while let Some(after) = skip_leading_block(p, start, last) {
                    start = after;
                }
                if start > body.0 && start <= last && toks[start].ident() != "return" {
                    self.returns.push((start, last));
                }
            }
        }
    }
}

/// First top-level `{` at or after `j` (skipping `(...)`/`[...]`
/// header groups), or `None` if a `;` or `last` intervenes.
fn block_open(p: &ParsedFile, mut j: usize, last: usize) -> Option<usize> {
    while j <= last {
        match p.toks[j].punct() {
            "{" => return Some(j),
            "(" | "[" => j = p.close_of(j)? + 1,
            ";" => return None,
            _ => j += 1,
        }
    }
    None
}

/// When the range `start..=last` begins with a block construct
/// (`for`/`while`/`loop`/`if`/`match`/`unsafe` or a bare `{ ... }`
/// block) used as a *statement* — i.e. its block (including any
/// `else` chain) closes strictly before `last` — return the index just
/// past it. Returns `None` when the construct is itself the tail.
fn skip_leading_block(p: &ParsedFile, start: usize, last: usize) -> Option<usize> {
    let toks = &p.toks;
    let kw = toks[start].ident();
    let open = if toks[start].punct() == "{" {
        start
    } else if matches!(kw, "for" | "while" | "loop" | "if" | "match" | "unsafe") {
        block_open(p, start + 1, last)?
    } else {
        return None;
    };
    let mut close = p.close_of(open)?;
    // `if ... {} else if ... {} else {}` chains are one construct.
    while kw == "if" && toks.get(close + 1).map(|t| t.ident()) == Some("else") {
        let open = block_open(p, close + 2, last)?;
        close = p.close_of(open)?;
    }
    if close < last {
        Some(close + 1)
    } else {
        None
    }
}

/// Like [`ParsedFile::statement_start`], but also skips `}`-closed
/// groups (so a tail `match x { ... }` is captured wholesale).
fn stmt_start_deep(p: &ParsedFile, i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let prev = p.toks[j - 1].punct();
        if prev == ";" {
            return j;
        }
        if prev == ")" || prev == "]" || prev == "}" {
            match (0..j - 1).rev().find(|&k| p.close_of(k) == Some(j - 1)) {
                Some(open) => j = open,
                None => return j,
            }
            continue;
        }
        if prev == "{" {
            return j;
        }
        j -= 1;
    }
    0
}

/// Skip a `<...>` generic group by depth counting (same contract as the
/// parser's private helper: bails at `{` / `;`).
fn skip_angles(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].punct() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            "{" | ";" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// The value-source identifiers of a token range: plain identifiers
/// (path prefixes, macro names, struct-literal field labels and
/// post-`as` type names excluded) plus `call:<name>` entries for call
/// sites, so callers can consult interprocedural summaries.
pub fn sources_in(p: &ParsedFile, range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let toks = &p.toks;
    let hi = range.1.min(toks.len().saturating_sub(1));
    for i in range.0..=hi {
        if toks[i].kind != TokKind::Ident || KEYWORDS.contains(&toks[i].text.as_str()) {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.punct()).unwrap_or("");
        if next == "!" {
            continue; // macro name
        }
        if i > 0 && toks[i - 1].ident() == "as" {
            continue; // cast target type
        }
        if next == "(" || (next == "::" && toks.get(i + 2).map(|t| t.punct()) == Some("<")) {
            out.insert(format!("call:{}", toks[i].text));
            continue;
        }
        if next == "::" {
            continue; // path prefix (`Pcg32::`, `faults::`)
        }
        if next == ":" {
            continue; // struct-literal field label / type ascription
        }
        out.insert(toks[i].text.clone());
    }
    out
}

/// Transitive closure of each assigned name's sources within one fn:
/// `target -> every ident / call its value derives from`, following
/// chains of local assignments to fixpoint (cycles are fine — the sets
/// only grow).
pub fn source_closure(p: &ParsedFile, flow: &FnFlow) -> BTreeMap<String, BTreeSet<String>> {
    let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for a in &flow.assigns {
        map.entry(a.target.clone())
            .or_default()
            .extend(sources_in(p, a.rhs));
    }
    loop {
        let mut changed = false;
        let snapshot = map.clone();
        for set in map.values_mut() {
            let expand: Vec<&BTreeSet<String>> =
                set.iter().filter_map(|s| snapshot.get(s)).collect();
            let before = set.len();
            for e in expand {
                set.extend(e.iter().cloned());
            }
            changed |= set.len() > before;
        }
        if !changed {
            return map;
        }
    }
}

/// The workspace-wide dataflow results: one [`FnFlow`] + source closure
/// + unit environment per indexed fn, per-file unit annotations, and
/// the interprocedural summaries.
#[derive(Debug)]
pub struct Flows {
    /// Per fn id (parallel to `ws.index.fns`).
    pub flows: Vec<FnFlow>,
    /// Per fn id: transitive source sets of its locals.
    pub closures: Vec<BTreeMap<String, BTreeSet<String>>>,
    /// Per fn id: unit of each local (params + assign targets).
    pub env: Vec<BTreeMap<String, Unit>>,
    /// Per fn id: locals declared `unit(none)` — explicitly
    /// dimensionless, blocking convention inference at use sites.
    pub no_unit: Vec<BTreeSet<String>>,
    /// Per fn id: summary — unit of the return value, if consistently
    /// inferable.
    pub ret_unit: Vec<Option<Unit>>,
    /// Per fn id: summary — does the return value derive from a
    /// seed/salt-named source?
    pub seed_derived: Vec<bool>,
    /// Per file: `unit(...)` annotation lines (errors are surfaced by
    /// lib.rs, not here).
    pub annots: Vec<BTreeMap<usize, Option<Unit>>>,
}

impl Flows {
    /// Build flows, environments, and summaries for the workspace.
    /// Summaries iterate a small fixed number of global rounds — enough
    /// for the call-chain depths in this tree, and convergence beyond
    /// that only loses findings, never fabricates them.
    pub fn build(ws: &Workspace) -> Flows {
        let annots: Vec<BTreeMap<usize, Option<Unit>>> = ws
            .files
            .iter()
            .map(|f| units::annotations(&f.source).by_line)
            .collect();

        let n = ws.index.fns.len();
        let mut flows = Vec::with_capacity(n);
        let mut closures = Vec::with_capacity(n);
        for id in 0..n {
            let f = &ws.index.fns[id];
            let p = &ws.files[f.file].parsed;
            let flow = FnFlow::build(p, ws.fn_item(id));
            closures.push(source_closure(p, &flow));
            flows.push(flow);
        }

        let mut fl = Flows {
            flows,
            closures,
            env: vec![BTreeMap::new(); n],
            no_unit: vec![BTreeSet::new(); n],
            ret_unit: vec![None; n],
            seed_derived: vec![false; n],
            annots,
        };

        // Seed the environments from annotations + naming conventions.
        // An explicit `unit(none)` blocks convention inference.
        for id in 0..n {
            let f = &ws.index.fns[id];
            let p = &ws.files[f.file].parsed;
            let ann = &fl.annots[f.file];
            let bind = |env: &mut BTreeMap<String, Unit>,
                        blocked: &mut BTreeSet<String>,
                        name: &str,
                        tok: usize| {
                match ann.get(&p.toks[tok].line) {
                    Some(Some(u)) => {
                        env.insert(name.to_string(), *u);
                    }
                    Some(None) => {
                        blocked.insert(name.to_string());
                        env.remove(name);
                    }
                    None => {
                        if !blocked.contains(name) && !env.contains_key(name) {
                            if let Some(u) = units::of_ident(name) {
                                env.insert(name.to_string(), u);
                            }
                        }
                    }
                }
            };
            let (env, blocked) = (&mut fl.env[id], &mut fl.no_unit[id]);
            for (name, tok) in &fl.flows[id].params {
                bind(env, blocked, name, *tok);
            }
            for a in &fl.flows[id].assigns {
                bind(env, blocked, &a.target, a.target_tok);
            }
        }

        // Interleaved rounds: propagate units through assignments using
        // callee return-unit summaries, then refresh the summaries.
        for _ in 0..3 {
            for id in 0..n {
                let f = &ws.index.fns[id];
                let p = &ws.files[f.file].parsed;
                let mut updates = Vec::new();
                for a in &fl.flows[id].assigns {
                    if fl.env[id].contains_key(&a.target) || fl.no_unit[id].contains(&a.target) {
                        continue;
                    }
                    if let Some(u) = fl.range_unit(ws, p, id, a.rhs) {
                        updates.push((a.target.clone(), u));
                    }
                }
                fl.env[id].extend(updates);
                fl.ret_unit[id] = fl.infer_ret_unit(ws, id);
            }
        }

        // Seed-taint summaries to fixpoint (monotone: flags only set).
        loop {
            let mut changed = false;
            for id in 0..n {
                if fl.seed_derived[id] {
                    continue;
                }
                let f = &ws.index.fns[id];
                let p = &ws.files[f.file].parsed;
                let derived = fl.flows[id].returns.iter().any(|&r| {
                    fl.expr_sources(p, id, r)
                        .iter()
                        .any(|s| fl.source_is_seed_derived(ws, s))
                });
                if derived {
                    fl.seed_derived[id] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        fl
    }

    /// Transitive sources of an expression range in fn `id`: direct
    /// sources plus the closure of any local among them.
    pub fn expr_sources(
        &self,
        p: &ParsedFile,
        id: usize,
        range: (usize, usize),
    ) -> BTreeSet<String> {
        let mut out = sources_in(p, range);
        let expand: Vec<BTreeSet<String>> = out
            .iter()
            .filter_map(|s| self.closures[id].get(s).cloned())
            .collect();
        for e in expand {
            out.extend(e);
        }
        out
    }

    /// Is a source entry seed-derived? Plain identifiers by naming
    /// convention (`seed`, `*_salt`, `op_key`-style keys); `call:`
    /// entries by callee summary.
    pub fn source_is_seed_derived(&self, ws: &Workspace, source: &str) -> bool {
        if let Some(callee) = source.strip_prefix("call:") {
            if !Workspace::edge_name_kept(callee) {
                return false;
            }
            return ws
                .index
                .by_name
                .get(callee)
                .is_some_and(|ids| ids.iter().any(|&c| self.seed_derived[c]));
        }
        is_seed_named(source)
    }

    /// Unit of the value produced by a call to `name`, from the API
    /// table, the callee's name convention, or its return summary.
    /// Stoplisted names (`len`, `clone`, ...) never donate a unit —
    /// `ColumnData::len` must not make every `len()` a row count.
    pub fn call_unit(&self, ws: &Workspace, name: &str) -> Option<Unit> {
        if let Some(u) = units::return_unit_api(name) {
            return Some(u);
        }
        if !Workspace::edge_name_kept(name) {
            return None;
        }
        if let Some(u) = units::of_ident(name) {
            return Some(u);
        }
        let ids = ws.index.by_name.get(name)?;
        let mut found: Option<Unit> = None;
        for &c in ids {
            match (found, self.ret_unit[c]) {
                (_, None) => return None,
                (None, u) => found = u,
                (Some(a), Some(b)) if a != b => return None,
                _ => {}
            }
        }
        found
    }

    /// Unit of local `name` in fn `id` (environment lookup, then naming
    /// convention for non-locals like struct fields). A `unit(none)`
    /// declaration blocks the convention fallback.
    pub fn ident_unit(&self, id: usize, name: &str) -> Option<Unit> {
        if let Some(u) = self.env[id].get(name) {
            return Some(*u);
        }
        if self.no_unit[id].contains(name) {
            return None;
        }
        units::of_ident(name)
    }

    /// Unit of an expression range: the consistent unit of its terminal
    /// identifiers and calls. Ranges containing top-level `*` or `/`
    /// are rates/products and have no base unit.
    pub fn range_unit(
        &self,
        ws: &Workspace,
        p: &ParsedFile,
        id: usize,
        range: (usize, usize),
    ) -> Option<Unit> {
        let toks = &p.toks;
        let hi = range.1.min(toks.len().saturating_sub(1));
        let mut j = range.0;
        let mut found: Option<Unit> = None;
        while j <= hi {
            let t = &toks[j];
            let pt = t.punct();
            if matches!(pt, "*" | "/") && j > range.0 {
                let prev = &toks[j - 1];
                if prev.kind != TokKind::Punct || matches!(prev.punct(), ")" | "]") {
                    return None; // binary product / quotient: a rate
                }
            }
            if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                let next = toks.get(j + 1).map(|t| t.punct()).unwrap_or("");
                let unit = if next == "("
                    || (next == "::" && toks.get(j + 2).map(|t| t.punct()) == Some("<"))
                {
                    let u = self.call_unit(ws, &t.text);
                    // Skip the argument list: its idents belong to the
                    // callee.
                    let open = if next == "(" {
                        j + 1
                    } else {
                        skip_angles(toks, j + 2)
                    };
                    j = p.close_of(open).filter(|&c| c <= hi).unwrap_or(hi);
                    u
                } else if next == "::" || next == ":" || next == "!" {
                    None
                } else if j > 0 && toks[j - 1].ident() == "as" {
                    None
                } else {
                    self.ident_unit(id, &t.text)
                };
                if let Some(u) = unit {
                    match found {
                        None => found = Some(u),
                        Some(f) if f != u => return None,
                        _ => {}
                    }
                }
            }
            j += 1;
        }
        found
    }

    /// Resolve the operand ending just before token `op` (so for a
    /// binary operator, pass the operator's index). Walks back over a
    /// `x as u64` cast to the cast subject, resolves `f(...)` /
    /// `x.method(...)` results through call summaries, and field chains
    /// (`self.a.total_cost`) through their terminal identifier.
    pub fn operand_left(&self, ws: &Workspace, p: &ParsedFile, id: usize, op: usize) -> Operand {
        if op == 0 {
            return Operand::Unknown;
        }
        let toks = &p.toks;
        let mut i = op - 1;
        // `x as u64 <op>`: the operand is the cast subject.
        if toks[i].kind == TokKind::Ident && i >= 2 && toks[i - 1].ident() == "as" {
            if i < 2 {
                return Operand::Unknown;
            }
            i -= 2;
        }
        let t = &toks[i];
        if t.kind == TokKind::Number {
            return Operand::Scalar;
        }
        if matches!(t.punct(), ")" | "]") {
            // A call result `f(...)` / `x.m(...)`: resolve by summary.
            if t.punct() == ")" {
                if let Some(open) = (0..i).rev().find(|&k| p.close_of(k) == Some(i)) {
                    if open > 0 && toks[open - 1].kind == TokKind::Ident {
                        return match self.call_unit(ws, &toks[open - 1].text) {
                            Some(u) => Operand::Unit(u),
                            None => Operand::Unknown,
                        };
                    }
                }
            }
            return Operand::Unknown;
        }
        if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            return match self.ident_unit(id, &t.text) {
                Some(u) => Operand::Unit(u),
                None => Operand::Unknown,
            };
        }
        Operand::Unknown
    }

    /// Resolve the operand starting just after token `op`.
    pub fn operand_right(&self, ws: &Workspace, p: &ParsedFile, id: usize, op: usize) -> Operand {
        let toks = &p.toks;
        let mut j = op + 1;
        // Borrows and unary minus are transparent.
        while toks.get(j).map(|t| t.punct()) == Some("&")
            || toks.get(j).map(|t| t.punct()) == Some("-")
        {
            j += 1;
        }
        let Some(t) = toks.get(j) else {
            return Operand::Unknown;
        };
        if t.kind == TokKind::Number {
            return Operand::Scalar;
        }
        if t.kind != TokKind::Ident {
            return Operand::Unknown;
        }
        // `self.field` / `self.method()` chains resolve through their
        // terminal; a bare keyword is unresolvable.
        if KEYWORDS.contains(&t.text.as_str())
            && !(t.text == "self" && toks.get(j + 1).map(|t| t.punct()) == Some("."))
        {
            return Operand::Unknown;
        }
        // Walk a field / method chain to its terminal.
        let mut term = j;
        while toks.get(term + 1).map(|t| t.punct()) == Some(".")
            && toks.get(term + 2).map(|t| t.kind) == Some(TokKind::Ident)
        {
            term += 2;
        }
        let name = &toks[term].text;
        let next = toks.get(term + 1).map(|t| t.punct()).unwrap_or("");
        if next == "(" || (next == "::" && toks.get(term + 2).map(|t| t.punct()) == Some("<")) {
            return match self.call_unit(ws, name) {
                Some(u) => Operand::Unit(u),
                None => Operand::Unknown,
            };
        }
        if next == "::" || next == "!" {
            return Operand::Unknown;
        }
        match self.ident_unit(id, name) {
            Some(u) => Operand::Unit(u),
            None => Operand::Unknown,
        }
    }

    fn infer_ret_unit(&self, ws: &Workspace, id: usize) -> Option<Unit> {
        let item = ws.fn_item(id);
        if let Some(u) = units::of_ident(&item.name) {
            return Some(u);
        }
        if let Some(u) = units::return_unit_api(&item.name) {
            return Some(u);
        }
        let f = &ws.index.fns[id];
        let p = &ws.files[f.file].parsed;
        let mut found: Option<Unit> = None;
        for &r in &self.flows[id].returns {
            match (found, self.range_unit(ws, p, id, r)) {
                (_, None) => return None,
                (None, u) => found = u,
                (Some(a), Some(b)) if a != b => return None,
                _ => {}
            }
        }
        found
    }
}

/// A resolved arithmetic operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Carries a known unit of measure.
    Unit(Unit),
    /// A bare numeric literal.
    Scalar,
    /// Anything the analysis cannot type.
    Unknown,
}

/// Does this identifier name a seed, salt, or derivation key?
pub fn is_seed_named(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("seed") || lower.contains("salt") || lower == "key" || lower.ends_with("_key")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    fn one(src: &str) -> (Workspace, Flows) {
        let w = ws(&[("crates/core/src/x.rs", src)]);
        let f = Flows::build(&w);
        (w, f)
    }

    #[test]
    fn params_assigns_and_loops_collected() {
        let (w, f) = one("fn f(seed: u64, mut total_cost: f64) -> u64 {\n\
                 let mut s = seed ^ 1;\n\
                 for i in 0..4 { s += i; }\n\
                 while s > 0 { s /= 2; }\n\
                 total_cost = 0.0;\n\
                 s\n\
             }");
        let flow = &f.flows[0];
        let names: Vec<&str> = flow.params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["seed", "total_cost"]);
        // `let s`, `s +=`, `s /=`, `total_cost =`.
        assert_eq!(flow.assigns.len(), 4, "{:?}", flow.assigns);
        assert_eq!(flow.loops.len(), 2);
        // Tail expression return.
        assert_eq!(flow.returns.len(), 1);
        let p = &w.files[0].parsed;
        let (lo, hi) = flow.returns[0];
        assert_eq!(lo, hi);
        assert_eq!(p.toks[lo].text, "s");
    }

    #[test]
    fn tail_expression_excludes_preceding_block_statements() {
        // The fnv1a shape: a fold over a byte buffer, tail `h`. The
        // loop header's `bytes` ident must not leak into the return
        // range, or the hash comes out bytes-dimensioned.
        let (w, f) = one("fn fnv1a(bytes: &[u8]) -> u64 {\n\
                 let mut h: u64 = 1;\n\
                 for &b in bytes {\n\
                     h ^= b as u64;\n\
                 }\n\
                 h\n\
             }");
        let flow = &f.flows[0];
        assert_eq!(flow.returns.len(), 1, "{:?}", flow.returns);
        let (lo, hi) = flow.returns[0];
        assert_eq!(lo, hi);
        assert_eq!(w.files[0].parsed.toks[lo].text, "h");
        assert_eq!(f.ret_unit[0], None);

        // An `if/else if/else` chain *used as the tail* keeps its
        // (shallow) capture — the range still starts inside the final
        // block, exactly as before the hop-over fix.
        let (w, f) = one("fn pick(total_bytes: u64) -> u64 {\n\
                 let x = total_bytes;\n\
                 if x > 1 { x } else if x > 0 { 1 } else { 0 }\n\
             }");
        let (lo, _) = f.flows[0].returns[0];
        assert_eq!(w.files[0].parsed.toks[lo].text, "0");

        // ... but the same chain used as a statement before the tail is
        // hopped over.
        let (w, f) = one("fn g(total_bytes: u64) -> u64 {\n\
                 let mut n = 0;\n\
                 if total_bytes > 1 { n += 1 } else { n += 2 }\n\
                 n\n\
             }");
        let (lo, hi) = f.flows[0].returns[0];
        assert_eq!(lo, hi);
        assert_eq!(w.files[0].parsed.toks[lo].text, "n");
        assert_eq!(f.ret_unit[0], None);
    }

    #[test]
    fn source_closure_is_transitive() {
        let (_, f) = one("fn f(seed: u64, salt: u64) -> u64 {\n\
                 let mut s = seed ^ salt;\n\
                 let point = splitmix64(&mut s);\n\
                 let k = point ^ 7;\n\
                 k\n\
             }");
        let k = &f.closures[0]["k"];
        assert!(k.contains("seed"), "{k:?}");
        assert!(k.contains("salt"));
        assert!(k.contains("call:splitmix64"));
    }

    #[test]
    fn unit_env_from_names_annotations_and_propagation() {
        let (_, f) = one("fn f(elapsed_secs: f64) -> f64 {\n\
                 // cackle-lint: unit(usd)\n\
                 let budget = 10.0;\n\
                 let t = elapsed_secs;\n\
                 let rate = budget / t;\n\
                 t\n\
             }");
        let env = &f.env[0];
        assert_eq!(env.get("elapsed_secs"), Some(&Unit::Seconds));
        assert_eq!(env.get("budget"), Some(&Unit::Usd));
        // Propagated through the assignment graph.
        assert_eq!(env.get("t"), Some(&Unit::Seconds));
        // A quotient is a rate: no base unit.
        assert_eq!(env.get("rate"), None);
        // Return summary follows the tail expression.
        assert_eq!(f.ret_unit[0], Some(Unit::Seconds));
    }

    #[test]
    fn unit_none_annotation_blocks_convention() {
        let (_, f) = one("fn f() -> u64 {\n\
                 let count = worker_slot(); // cackle-lint: unit(none)\n\
                 count\n\
             }");
        assert_eq!(f.env[0].get("count"), None);
    }

    #[test]
    fn ret_unit_summary_crosses_files() {
        let w = ws(&[
            (
                "crates/cloud/src/pricing.rs",
                "pub fn window_total(&self) -> f64 { self.acc_cost }",
            ),
            (
                "crates/core/src/report.rs",
                "fn f(p: &Pricing) -> f64 { let x = p.window_total(); x }",
            ),
        ]);
        let f = Flows::build(&w);
        // window_total returns acc_cost → usd; report's `x` inherits it.
        let report_id = w
            .index
            .by_name
            .get("f")
            .and_then(|ids| ids.first())
            .copied()
            .unwrap();
        assert_eq!(f.env[report_id].get("x"), Some(&Unit::Usd));
    }

    #[test]
    fn stoplisted_call_never_donates_a_unit() {
        let w = ws(&[
            (
                "crates/engine/src/column.rs",
                "impl ColumnData { pub fn len(&self) -> usize { self.rows } }",
            ),
            (
                "crates/core/src/other.rs",
                "fn f(v: &[u8]) -> usize { let n = v.len(); n }",
            ),
        ]);
        let f = Flows::build(&w);
        let id = w.index.by_name["f"][0];
        assert_eq!(f.env[id].get("n"), None);
    }

    #[test]
    fn seed_taint_summary_through_helpers() {
        let w = ws(&[(
            "crates/faults/src/lib.rs",
            "fn expand(seed: u64, salt: u64) -> u64 {\n\
                 let mut s = seed ^ salt;\n\
                 splitmix64(&mut s)\n\
             }\n\
             fn splitmix64(state: &mut u64) -> u64 { *state }\n\
             fn opaque() -> u64 { 4 }",
        )]);
        let f = Flows::build(&w);
        let expand = w.index.by_name["expand"][0];
        let opaque = w.index.by_name["opaque"][0];
        assert!(f.seed_derived[expand]);
        assert!(!f.seed_derived[opaque]);
    }
}
