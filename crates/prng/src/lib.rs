//! Deterministic, dependency-free pseudo-random numbers.
//!
//! Every randomized component of the reproduction — workload arrival
//! sampling, trace synthesis, the TPC-H generator, the meta-strategy's
//! expert draws, spot-interruption ablations — threads an explicit seed
//! through a [`Pcg32`]. There is deliberately no `thread_rng`-style
//! ambient generator: constructing a generator without a seed is
//! impossible, which is what makes two identically-configured simulation
//! runs byte-identical (the determinism invariant `cackle-lint` rule L2
//! enforces).
//!
//! The generator is PCG-XSH-RR (O'Neill 2014): a 64-bit LCG state with a
//! 32-bit output permutation. Seeds are expanded into the (state,
//! increment) pair with SplitMix64, so small or correlated seeds (0, 1,
//! 2, ...) still land in well-separated streams.

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
///
/// Used for seed expansion; also handy as a one-shot hash of a `u64`.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

/// A PCG-XSH-RR 32-bit generator with a SplitMix64-expanded seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Build a generator from a 64-bit seed. Identical seeds yield
    /// identical streams; nearby seeds yield unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let initstate = splitmix64(&mut sm);
        let initseq = splitmix64(&mut sm);
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform bits (two 32-bit outputs).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`, integer or float). Panics on an empty range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// `true` with probability `numerator / denominator`, computed in
    /// integer arithmetic (no float rounding). Panics when
    /// `denominator` is zero or `numerator > denominator`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio: need 0 <= {numerator}/{denominator} <= 1"
        );
        self.bounded_u64(denominator as u64) < numerator as u64
    }

    /// A uniform `u64` in `[0, bound)` by 128-bit widening multiply.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Range types [`Pcg32::gen_range`] accepts, yielding samples of type
/// `T`. The output type is a trait parameter (not an associated type),
/// and the range impls are blanket impls over [`UniformSample`], so
/// integer literals in ranges unify with the call site's expected type
/// exactly as they would with a concrete function argument.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Pcg32) -> T;
}

/// Scalar types drawable uniformly from an interval.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform over `[lo, hi)`. Callers guarantee `lo < hi`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut Pcg32) -> Self;
    /// Uniform over `[lo, hi]`. Callers guarantee `lo <= hi`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut Pcg32) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut Pcg32) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut Pcg32) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut Pcg32) -> Self {
        let v = lo + rng.gen_f64() * (hi - lo);
        // Guard the open upper bound against rounding.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut Pcg32) -> Self {
        lo + rng.gen_f64() * (hi - lo)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut Pcg32) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut Pcg32) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Pcg32::seed_from_u64(43);
        let differs = (0..10).any(|_| a.next_u32() != c.next_u32());
        assert!(differs, "seeds 42 and 43 produced the same stream");
    }

    #[test]
    fn nearby_seeds_decorrelated() {
        // SplitMix64 expansion: consecutive seeds shouldn't share prefixes.
        let first: Vec<u32> = (0..16)
            .map(|s| Pcg32::seed_from_u64(s).next_u32())
            .collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len(), "colliding first outputs");
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = Pcg32::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
        let mut hit_ends = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(-1i64..=1) {
                -1 => hit_ends.0 = true,
                1 => hit_ends.1 = true,
                _ => {}
            }
        }
        assert!(hit_ends.0 && hit_ends.1, "inclusive endpoints never drawn");
    }

    #[test]
    fn float_range_uniformish() {
        let mut rng = Pcg32::seed_from_u64(3);
        let n = 100_000;
        let mut below = 0;
        for _ in 0..n {
            let v = rng.gen_range(0.0..2.0);
            assert!((0.0..2.0).contains(&v));
            if v < 1.0 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "half-split fraction {frac}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Pcg32::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "p=0.3 hit fraction {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.1), "p>=1 must always hit");
    }

    #[test]
    fn full_u64_range_supported() {
        let mut rng = Pcg32::seed_from_u64(5);
        // Must not overflow the span arithmetic.
        let v = rng.gen_range(0u64..=u64::MAX);
        let _ = v;
        let w = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = w;
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Pcg32::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference vector from the canonical splitmix64.c with seed
        // 1234567: checked against the published test values.
        let mut s = 1234567u64;
        let got: Vec<u64> = (0..3).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(got[0], 6457827717110365317);
        assert_eq!(got[1], 3203168211198807973);
        assert_eq!(got[2], 9817491932198370423);
    }
}
