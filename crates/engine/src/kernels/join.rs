//! Hash-join build and probe kernels.
//!
//! The legacy join encoded an owned byte key per row on both the build
//! and probe side. The kernel keeps the same canonical encoding but adds
//! a direct `i64` map for the dominant single-integer-key case and a
//! reused scratch buffer for the general byte-key probe, so the per-row
//! probe allocates nothing.
//!
//! Output ordering is preserved exactly: build rows enter each key's
//! bucket in row order, and [`probe_pairs`] emits matches in probe-row
//! order, so the delegating `JoinHashTable` produces byte-identical
//! batches.

use crate::column::{Column, ColumnData};
use crate::kernels::hash::FastBuildHasher;
use crate::rowkey::{encode_row, encode_row_into};
use std::collections::HashMap;

/// Typed key → build-row index over the concatenated build side.
pub enum KeyIndex {
    /// Single `i64` join key: direct integer map, no byte encoding.
    I64(HashMap<i64, Vec<u32>, FastBuildHasher>),
    /// General case: canonical row-key bytes.
    Bytes(HashMap<Vec<u8>, Vec<u32>, FastBuildHasher>),
}

impl KeyIndex {
    /// Index `nrows` build rows by their evaluated key columns. Rows
    /// with a null key are excluded (SQL join semantics: null keys match
    /// nothing) — which is what makes the `i64` fast path safe even for
    /// nullable keys; unlike grouping, joins never need a null-key
    /// identity.
    pub fn build(key_cols: &[&Column], nrows: usize) -> KeyIndex {
        if key_cols.len() == 1 {
            if let ColumnData::I64(vals) = &key_cols[0].data {
                let key = key_cols[0];
                let mut map: HashMap<i64, Vec<u32>, FastBuildHasher> = HashMap::default();
                for (row, &k) in vals.iter().enumerate().take(nrows) {
                    if key.is_valid(row) {
                        map.entry(k).or_default().push(row as u32);
                    }
                }
                return KeyIndex::I64(map);
            }
        }
        let mut map: HashMap<Vec<u8>, Vec<u32>, FastBuildHasher> = HashMap::default();
        'rows: for row in 0..nrows {
            for k in key_cols {
                if !k.is_valid(row) {
                    continue 'rows;
                }
            }
            map.entry(encode_row(key_cols, row))
                .or_default()
                .push(row as u32);
        }
        KeyIndex::Bytes(map)
    }

    /// The build rows matching probe row `row`, or `None` for a null key
    /// or no match. `scratch` is the reused key-encoding buffer.
    pub fn hits<'a>(
        &'a self,
        key_cols: &[&Column],
        row: usize,
        scratch: &mut Vec<u8>,
    ) -> Option<&'a [u32]> {
        match self {
            KeyIndex::I64(map) => {
                let key = key_cols[0];
                if !key.is_valid(row) {
                    return None;
                }
                map.get(&key.i64s()[row]).map(Vec::as_slice)
            }
            KeyIndex::Bytes(map) => {
                for k in key_cols {
                    if !k.is_valid(row) {
                        return None;
                    }
                }
                encode_row_into(scratch, key_cols, row);
                map.get(scratch.as_slice()).map(Vec::as_slice)
            }
        }
    }

    /// Number of distinct (non-null) keys indexed.
    pub fn distinct_keys(&self) -> usize {
        match self {
            KeyIndex::I64(map) => map.len(),
            KeyIndex::Bytes(map) => map.len(),
        }
    }
}

/// Fill `mask` (cleared first) with the Semi/Anti keep decision per
/// probe row: `true` where the row's match status equals `want_match`.
pub fn semi_anti_mask(
    index: &KeyIndex,
    key_cols: &[&Column],
    nrows: usize,
    want_match: bool,
    mask: &mut Vec<bool>,
    scratch: &mut Vec<u8>,
) {
    mask.clear();
    for row in 0..nrows {
        let matched = index.hits(key_cols, row, scratch).is_some();
        mask.push(matched == want_match);
    }
}

/// Collect matched `(probe, build)` row pairs in probe-row order into
/// `probe_idx`/`build_idx`, and — when `unmatched` is `Some` (Left
/// join) — the probe rows with no match, in row order.
pub fn probe_pairs(
    index: &KeyIndex,
    key_cols: &[&Column],
    nrows: usize,
    probe_idx: &mut Vec<usize>,
    build_idx: &mut Vec<usize>,
    mut unmatched: Option<&mut Vec<usize>>,
    scratch: &mut Vec<u8>,
) {
    for row in 0..nrows {
        match index.hits(key_cols, row, scratch) {
            Some(rows) => {
                for &b in rows {
                    probe_idx.push(row);
                    build_idx.push(b as usize);
                }
            }
            None => {
                if let Some(u) = unmatched.as_deref_mut() {
                    u.push(row);
                }
            }
        }
    }
}
