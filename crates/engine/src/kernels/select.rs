//! Filter-by-selection-bitmap kernels.
//!
//! The selection convention: a predicate produces a keep-mask
//! (`Vec<bool>`, one entry per row, `true` = keep — a null predicate
//! result is already folded to `false` by `predicate_mask`). The mask is
//! turned into a selection vector (`Vec<usize>` of kept row indices)
//! exactly once, then every column is gathered through it. The legacy
//! `Batch::filter` recomputed the index list per column.

use crate::batch::Batch;
use crate::kernels::pool::ScratchArena;
use crate::schema::SchemaRef;

/// Fill `sel` (cleared first) with the indices of `true` mask entries.
pub fn selection_from_mask(mask: &[bool], sel: &mut Vec<usize>) {
    sel.clear();
    for (i, &keep) in mask.iter().enumerate() {
        if keep {
            sel.push(i);
        }
    }
}

/// Keep the rows of `batch` selected by `mask`, using a pooled selection
/// vector. Output equals `batch.filter(mask)`.
pub fn filter_batch(batch: &Batch, mask: &[bool], arena: &mut ScratchArena) -> Batch {
    assert_eq!(mask.len(), batch.num_rows(), "filter mask length mismatch");
    let mut sel = arena.checkout_idx(batch.num_rows());
    selection_from_mask(mask, &mut sel);
    let out = batch.take(&sel);
    arena.recycle_idx(sel);
    out
}

/// Filter and project in one pass: gather only the projected columns
/// through one shared selection vector (via a borrowed
/// [`crate::batch::BatchView`] — unprojected columns are never touched).
/// Output equals `batch.filter(mask)` followed by a column projection
/// onto `indices`.
pub fn filter_project(
    batch: &Batch,
    mask: &[bool],
    indices: &[usize],
    out_schema: SchemaRef,
    arena: &mut ScratchArena,
) -> Batch {
    assert_eq!(mask.len(), batch.num_rows(), "filter mask length mismatch");
    let view = batch.project_view(out_schema, indices);
    let mut sel = arena.checkout_idx(batch.num_rows());
    selection_from_mask(mask, &mut sel);
    let out = view.gather(&sel);
    arena.recycle_idx(sel);
    out
}
