//! Reusable typed scratch buffers, checked out per task.
//!
//! Operators need index vectors, keep-masks, and key buffers once per
//! batch. Allocating them fresh per batch is exactly the shape lint L14
//! polices; the arena makes its `reuse-buffer:` suggestion the default
//! instead: a buffer is checked out (cleared, capacity preserved), used,
//! and recycled back, so steady-state execution of a task allocates
//! nothing per batch.
//!
//! Ownership rules (enforced by lint L16):
//!
//! * every `checkout_*` call must be paired with a `recycle_*` call of
//!   the same type suffix in the same function — a checkout never
//!   outlives the task, and never crosses a function boundary implicitly;
//! * recycled buffers keep their capacity; `checkout_*` clears content
//!   only, so a buffer must never be read before it is refilled;
//! * the arena is single-threaded by construction: it lives in a
//!   `TaskContext` and tasks never share contexts across threads.

/// Cumulative counters describing how well reuse is working.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (fresh or reused).
    pub checkouts: u64,
    /// Checkouts served from the free list without allocating.
    pub reuses: u64,
    /// Checkouts that had to allocate a new buffer.
    pub fresh: u64,
}

/// Free lists of typed scratch buffers plus reuse accounting.
///
/// One arena lives in each [`crate::task::TaskContext`]; kernels that
/// need scratch space take `&mut ScratchArena` and must return every
/// buffer before they return (see the module docs for the rules).
#[derive(Debug, Default)]
pub struct ScratchArena {
    idx: Vec<Vec<usize>>,
    masks: Vec<Vec<bool>>,
    bytes: Vec<Vec<u8>>,
    stats: PoolStats,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// Check out an index buffer with at least `cap` capacity, cleared.
    pub fn checkout_idx(&mut self, cap: usize) -> Vec<usize> {
        self.stats.checkouts += 1;
        match self.idx.pop() {
            Some(mut v) => {
                self.stats.reuses += 1;
                v.clear();
                v.reserve(cap);
                v
            }
            None => {
                self.stats.fresh += 1;
                Vec::with_capacity(cap)
            }
        }
    }

    /// Return an index buffer to the free list.
    pub fn recycle_idx(&mut self, buf: Vec<usize>) {
        self.idx.push(buf);
    }

    /// Check out a boolean mask buffer with at least `cap` capacity, cleared.
    pub fn checkout_mask(&mut self, cap: usize) -> Vec<bool> {
        self.stats.checkouts += 1;
        match self.masks.pop() {
            Some(mut v) => {
                self.stats.reuses += 1;
                v.clear();
                v.reserve(cap);
                v
            }
            None => {
                self.stats.fresh += 1;
                Vec::with_capacity(cap)
            }
        }
    }

    /// Return a mask buffer to the free list.
    pub fn recycle_mask(&mut self, buf: Vec<bool>) {
        self.masks.push(buf);
    }

    /// Check out a byte buffer (row-key scratch) with at least `cap`
    /// capacity, cleared.
    pub fn checkout_bytes(&mut self, cap: usize) -> Vec<u8> {
        self.stats.checkouts += 1;
        match self.bytes.pop() {
            Some(mut v) => {
                self.stats.reuses += 1;
                v.clear();
                v.reserve(cap);
                v
            }
            None => {
                self.stats.fresh += 1;
                Vec::with_capacity(cap)
            }
        }
    }

    /// Return a byte buffer to the free list.
    pub fn recycle_bytes(&mut self, buf: Vec<u8>) {
        self.bytes.push(buf);
    }

    /// A snapshot of the reuse counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_recycled_buffers() {
        let mut arena = ScratchArena::new();
        let mut a = arena.checkout_idx(16);
        a.push(7);
        let ptr = a.as_ptr();
        arena.recycle_idx(a);
        let b = arena.checkout_idx(8);
        // Same backing allocation, content cleared.
        assert_eq!(b.as_ptr(), ptr);
        assert!(b.is_empty());
        assert!(b.capacity() >= 16);
        arena.recycle_idx(b);
        let s = arena.stats();
        assert_eq!(s.checkouts, 2);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.fresh, 1);
    }

    #[test]
    fn typed_free_lists_are_independent() {
        let mut arena = ScratchArena::new();
        let m = arena.checkout_mask(4);
        let k = arena.checkout_bytes(4);
        arena.recycle_mask(m);
        arena.recycle_bytes(k);
        assert_eq!(arena.stats().fresh, 2);
        let m2 = arena.checkout_mask(4);
        let k2 = arena.checkout_bytes(4);
        arena.recycle_mask(m2);
        arena.recycle_bytes(k2);
        assert_eq!(arena.stats().reuses, 2);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let mut arena = ScratchArena::new();
        for _ in 0..100 {
            let v = arena.checkout_idx(32);
            arena.recycle_idx(v);
        }
        assert_eq!(arena.stats().fresh, 1);
        assert_eq!(arena.stats().reuses, 99);
    }
}
