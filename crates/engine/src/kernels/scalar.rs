//! Column ⊕ scalar compute kernels.
//!
//! The expression evaluator used to broadcast every literal operand into
//! a full column (`vec![lit; n]` — a per-row `String` clone for string
//! literals) and then run the column ⊕ column path. These kernels apply
//! the scalar directly against the column's typed slice, producing bytes
//! identical to the broadcast-then-evaluate path: the type-dispatch arms
//! below mirror `expr::eval_arith` / `expr::eval_cmp` arm by arm, and the
//! result validity is the column's validity (a non-null literal
//! contributes an all-valid side to the merge).

use crate::column::{Column, ColumnData};
use crate::expr::{BinOp, LikePattern};
use crate::types::Value;
use std::cmp::Ordering;

/// Apply `col ⊕ scalar` (or `scalar ⊕ col` when `scalar_is_lhs`) for any
/// non-Kleene binary operator. `scalar` must not be [`Value::Null`] —
/// null literals keep the materialized path so null-propagation bytes
/// stay identical.
pub fn binary_col_scalar(op: BinOp, col: &Column, scalar: &Value, scalar_is_lhs: bool) -> Column {
    use BinOp::*;
    match op {
        And | Or => panic!("Kleene ops have no scalar kernel"),
        Add | Sub | Mul | Div | Mod => arith_col_scalar(op, col, scalar, scalar_is_lhs),
        Eq | Neq | Lt | LtEq | Gt | GtEq => cmp_col_scalar(op, col, scalar, scalar_is_lhs),
    }
}

/// Arithmetic against a scalar; arms mirror `expr::eval_arith`.
pub fn arith_col_scalar(op: BinOp, col: &Column, scalar: &Value, scalar_is_lhs: bool) -> Column {
    let data = match (&col.data, scalar, op, scalar_is_lhs) {
        // Division always goes to f64, SQL-decimal style.
        (ColumnData::I64(a), Value::I64(y), BinOp::Div, false) => {
            ColumnData::F64(a.iter().map(|x| *x as f64 / *y as f64).collect())
        }
        (ColumnData::I64(b), Value::I64(x), BinOp::Div, true) => {
            ColumnData::F64(b.iter().map(|y| *x as f64 / *y as f64).collect())
        }
        (ColumnData::I64(a), Value::I64(y), BinOp::Mod, false) => {
            ColumnData::I64(a.iter().map(|x| x % y).collect())
        }
        (ColumnData::I64(b), Value::I64(x), BinOp::Mod, true) => {
            ColumnData::I64(b.iter().map(|y| x % y).collect())
        }
        (ColumnData::I64(a), Value::I64(y), _, false) => {
            ColumnData::I64(a.iter().map(|x| apply_i64(op, *x, *y)).collect())
        }
        (ColumnData::I64(b), Value::I64(x), _, true) => {
            ColumnData::I64(b.iter().map(|y| apply_i64(op, *x, *y)).collect())
        }
        (ColumnData::Date(a), Value::I64(y), BinOp::Add, false) => {
            ColumnData::Date(a.iter().map(|x| x + *y as i32).collect())
        }
        (ColumnData::Date(a), Value::I64(y), BinOp::Sub, false) => {
            ColumnData::Date(a.iter().map(|x| x - *y as i32).collect())
        }
        (ColumnData::I64(b), Value::Date(x), BinOp::Add, true) => {
            ColumnData::Date(b.iter().map(|y| x + *y as i32).collect())
        }
        (ColumnData::I64(b), Value::Date(x), BinOp::Sub, true) => {
            ColumnData::Date(b.iter().map(|y| x - *y as i32).collect())
        }
        // The dominant float arm gets a direct loop: the boxed-iterator
        // fallback below costs a virtual call per element.
        (ColumnData::F64(a), Value::F64(y), _, false) => {
            ColumnData::F64(a.iter().map(|x| apply_f64(op, *x, *y)).collect())
        }
        (ColumnData::F64(b), Value::F64(x), _, true) => {
            ColumnData::F64(b.iter().map(|y| apply_f64(op, *x, *y)).collect())
        }
        (a, s, _, false) => {
            // Everything else coerces to f64.
            let y = scalar_to_f64(s);
            ColumnData::F64(f64_iter(a).map(|x| apply_f64(op, x, y)).collect())
        }
        (b, s, _, true) => {
            let x = scalar_to_f64(s);
            ColumnData::F64(f64_iter(b).map(|y| apply_f64(op, x, y)).collect())
        }
    };
    match &col.validity {
        Some(v) => Column::with_validity(data, v.clone()),
        None => Column::new(data),
    }
}

/// Comparison against a scalar; arms mirror `expr::eval_cmp`.
pub fn cmp_col_scalar(op: BinOp, col: &Column, scalar: &Value, scalar_is_lhs: bool) -> Column {
    let want = |o: Ordering| match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::Neq => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::LtEq => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::GtEq => o != Ordering::Less,
        _ => unreachable!(),
    };
    // `x cmp y` with the scalar on the left is the reverse of the scalar
    // on the right; flipping the ordering keeps one loop per type arm.
    let orient = |o: Ordering| if scalar_is_lhs { o.reverse() } else { o };
    let vals: Vec<bool> = match (&col.data, scalar) {
        (ColumnData::I64(a), Value::I64(y)) => a.iter().map(|x| want(orient(x.cmp(y)))).collect(),
        (ColumnData::Date(a), Value::Date(y)) => a.iter().map(|x| want(orient(x.cmp(y)))).collect(),
        (ColumnData::F64(a), Value::F64(y)) => a
            .iter()
            .map(|x| x.partial_cmp(y).map(orient).is_some_and(&want))
            .collect(),
        (ColumnData::Str(a), Value::Str(y)) => a
            .iter()
            .map(|x| want(orient(x.as_str().cmp(y.as_str()))))
            .collect(),
        (ColumnData::Bool(a), Value::Bool(y)) => a.iter().map(|x| want(orient(x.cmp(y)))).collect(),
        (a, s) => {
            let y = scalar_to_f64(s);
            f64_iter(a)
                .map(|x| x.partial_cmp(&y).map(orient).is_some_and(&want))
                .collect()
        }
    };
    match &col.validity {
        Some(v) => Column::with_validity(ColumnData::Bool(vals), v.clone()),
        None => Column::new(ColumnData::Bool(vals)),
    }
}

/// Append the keep-mask of `col ⊕ scalar` (`valid AND true` per row)
/// directly to `mask`, skipping the intermediate Bool column that
/// [`cmp_col_scalar`] materializes. This is the inner loop of every
/// scan filter, so each operator is spelled as a direct comparison
/// instead of an `Ordering` round-trip; the decisions are exactly those
/// of [`cmp_col_scalar`] folded with validity — an incomparable pair
/// (NaN) yields `false` for every operator, including `Neq`.
pub fn cmp_scalar_mask_into(
    op: BinOp,
    col: &Column,
    scalar: &Value,
    scalar_is_lhs: bool,
    mask: &mut Vec<bool>,
) {
    // `scalar op col` is `col flip(op) scalar`.
    let op = if scalar_is_lhs { flip_cmp(op) } else { op };
    let validity = col.validity.as_deref();
    match (&col.data, scalar) {
        (ColumnData::I64(a), Value::I64(y)) => cmp_mask_typed(a, *y, op, validity, mask),
        (ColumnData::Date(a), Value::Date(y)) => cmp_mask_typed(a, *y, op, validity, mask),
        (ColumnData::F64(a), Value::F64(y)) => cmp_mask_typed(a, *y, op, validity, mask),
        (ColumnData::Bool(a), Value::Bool(y)) => cmp_mask_typed(a, *y, op, validity, mask),
        (ColumnData::Str(a), Value::Str(y)) => {
            let y = y.as_str();
            match op {
                BinOp::Eq => fill_str_mask(a, validity, mask, |x| x == y),
                BinOp::Neq => fill_str_mask(a, validity, mask, |x| x != y),
                BinOp::Lt => fill_str_mask(a, validity, mask, |x| x < y),
                BinOp::LtEq => fill_str_mask(a, validity, mask, |x| x <= y),
                BinOp::Gt => fill_str_mask(a, validity, mask, |x| x > y),
                BinOp::GtEq => fill_str_mask(a, validity, mask, |x| x >= y),
                _ => unreachable!("cmp mask on non-comparison op"),
            }
        }
        (a, s) => {
            // Mixed numeric types coerce to f64, one side materialized
            // (still one buffer fewer than the column path).
            let y = scalar_to_f64(s);
            let vals: Vec<f64> = f64_iter(a).collect();
            cmp_mask_typed(&vals, y, op, validity, mask)
        }
    }
}

/// Mirror a comparison around the operands: `s op c` ⇔ `c flip(op) s`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other, // Eq / Neq are symmetric
    }
}

fn cmp_mask_typed<T: PartialOrd + Copy>(
    vals: &[T],
    y: T,
    op: BinOp,
    validity: Option<&[bool]>,
    mask: &mut Vec<bool>,
) {
    match op {
        BinOp::Eq => fill_mask(vals, validity, mask, |x| x == y),
        // `<`-or-`>` rather than `!=` so NaN comes out false, like the
        // `partial_cmp` path; identical for totally ordered types.
        BinOp::Neq => fill_mask(vals, validity, mask, |x| x < y || x > y),
        BinOp::Lt => fill_mask(vals, validity, mask, |x| x < y),
        BinOp::LtEq => fill_mask(vals, validity, mask, |x| x <= y),
        BinOp::Gt => fill_mask(vals, validity, mask, |x| x > y),
        BinOp::GtEq => fill_mask(vals, validity, mask, |x| x >= y),
        _ => unreachable!("cmp mask on non-comparison op"),
    }
}

fn fill_mask<T: Copy>(
    vals: &[T],
    validity: Option<&[bool]>,
    mask: &mut Vec<bool>,
    pred: impl Fn(T) -> bool,
) {
    match validity {
        None => mask.extend(vals.iter().map(|&x| pred(x))),
        Some(m) => mask.extend(vals.iter().zip(m).map(|(&x, &v)| v && pred(x))),
    }
}

fn fill_str_mask(
    vals: &[String],
    validity: Option<&[bool]>,
    mask: &mut Vec<bool>,
    pred: impl Fn(&str) -> bool,
) {
    match validity {
        None => mask.extend(vals.iter().map(|x| pred(x))),
        Some(m) => mask.extend(vals.iter().zip(m).map(|(x, &v)| v && pred(x.as_str()))),
    }
}

/// Columnar LIKE: match every string against the pattern.
pub fn like_mask(strs: &[String], pattern: &LikePattern, negated: bool) -> Vec<bool> {
    strs.iter().map(|s| pattern.matches(s) != negated).collect()
}

fn apply_i64(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        _ => unreachable!(),
    }
}

fn apply_f64(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Mod => x % y,
        _ => unreachable!(),
    }
}

/// Iterate a numeric column as f64 without materializing a coerced
/// vector (the column ⊕ column path materializes both sides).
fn f64_iter(d: &ColumnData) -> Box<dyn Iterator<Item = f64> + '_> {
    match d {
        ColumnData::I64(v) => Box::new(v.iter().map(|&x| x as f64)),
        ColumnData::F64(v) => Box::new(v.iter().copied()),
        ColumnData::Date(v) => Box::new(v.iter().map(|&x| x as f64)),
        other => panic!("cannot coerce {} to f64", other.data_type()),
    }
}

fn scalar_to_f64(v: &Value) -> f64 {
    match v {
        Value::I64(x) => *x as f64,
        Value::F64(x) => *x,
        Value::Date(x) => *x as f64,
        other => panic!("cannot coerce {other:?} to f64"),
    }
}
