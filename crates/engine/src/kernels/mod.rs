//! Typed columnar compute kernels and the per-task scratch-buffer pool.
//!
//! This is the engine's vectorized operator API. Operators no longer
//! interpret expressions row by row or materialize fresh buffers per
//! batch; they call kernels that work on borrowed typed slices and check
//! scratch space out of a [`pool::ScratchArena`] owned by the running
//! task. Every kernel is bit-compatible with the row-at-a-time path it
//! replaced — golden telemetry dumps stay byte-identical — and the
//! row-at-a-time originals survive in [`crate::reference`] as the
//! differential-test oracle.
//!
//! Layout:
//!
//! * [`pool`] — typed reusable buffers ([`pool::ScratchArena`]) with
//!   reuse accounting; checkout/recycle pairing is enforced by lint L16.
//! * [`select`] — selection-bitmap filtering (mask → selection vector →
//!   gather), including fused filter+project.
//! * [`scalar`] — column ⊕ literal compute without broadcasting the
//!   literal into a column.
//! * [`agg`] — hash group-by: dense group-id assignment plus typed
//!   per-group accumulators.
//! * [`join`] — typed build-side key index and allocation-free probe.
//! * [`sort`] — typed comparators and sort-by-permutation.
//! * [`hash`] — the multiply-mix hasher behind the agg/join maps.

pub mod agg;
pub mod hash;
pub mod join;
pub mod pool;
pub mod scalar;
pub mod select;
pub mod sort;
