//! A fast, non-cryptographic hasher for the engine's hot hash maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose keyed
//! DoS resistance costs real throughput on the group-by and join probe
//! paths where the map lookup *is* the inner loop. The engine's maps
//! key on its own evaluated columns — adversarial key distributions are
//! not a concern — so the kernels use a multiply-mix hasher instead:
//! each written word folds in with an xor + odd-constant multiply, and
//! [`Hasher::finish`] runs a SplitMix64-style finalizer so all input
//! bits avalanche into the bucket-index bits.
//!
//! Swapping the hasher cannot change engine output: group ids are
//! assigned in first-encounter order and probe matches are emitted in
//! build-row insertion order, so map iteration order is never observed.

use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier (the 64-bit golden-ratio constant).
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: full-avalanche bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Multiply-mix [`Hasher`]; see the module docs for the trade-off.
#[derive(Default)]
pub struct FastHasher {
    h: u64,
}

impl FastHasher {
    #[inline]
    fn fold(&mut self, x: u64) {
        self.h = (self.h ^ x).wrapping_mul(K).rotate_left(29);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix(self.h)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
        }
        // Fold in the length so `"ab" + "c"` and `"a" + "bc"` differ.
        self.h ^= bytes.len() as u64;
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.fold(x as u64);
    }
    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.fold(x as u64);
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.fold(x);
    }
    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.fold(x as u64);
    }
    #[inline]
    fn write_i32(&mut self, x: i32) {
        self.fold(x as u64);
    }
    #[inline]
    fn write_i64(&mut self, x: i64) {
        self.fold(x as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]; the state the kernels' maps carry.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distributes_sequential_keys() {
        // Sequential integers (the common group-key shape) must not
        // collide in the low bits after finalization.
        let mut low_bits = std::collections::HashSet::new();
        for k in 0i64..256 {
            let mut h = FastHasher::default();
            h.write_i64(k);
            low_bits.insert(h.finish() & 0xFF);
        }
        assert!(low_bits.len() > 128, "only {} distinct", low_bits.len());
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut m: HashMap<Vec<u8>, u32, FastBuildHasher> = HashMap::default();
        m.insert(b"alpha".to_vec(), 1);
        m.insert(b"beta".to_vec(), 2);
        assert_eq!(m.get(b"alpha".as_slice()), Some(&1));
        assert_eq!(m.get(b"gamma".as_slice()), None);
        // Length folding: same concatenation, different split points.
        let mut a = FastHasher::default();
        a.write(b"ab");
        let mut b = FastHasher::default();
        b.write(b"a");
        b.write(b"b");
        assert_ne!(a.finish(), b.finish());
    }
}
