//! Sort-by-permutation kernel.
//!
//! The legacy sort compared rows by materializing a [`crate::types::Value`]
//! per comparison — a `String` clone per string comparison, an enum
//! round-trip otherwise. The kernel compares borrowed typed slices
//! directly and returns the sorted row permutation; the caller gathers
//! every column through it once.

use crate::column::{Column, ColumnData};
use std::cmp::Ordering;

/// One typed sort key: borrowed column storage plus direction.
pub struct SortKeyCol<'a> {
    data: &'a ColumnData,
    validity: Option<&'a [bool]>,
    descending: bool,
}

impl<'a> SortKeyCol<'a> {
    /// Borrow `col` as a sort key.
    pub fn new(col: &'a Column, descending: bool) -> SortKeyCol<'a> {
        SortKeyCol {
            data: &col.data,
            validity: col.validity.as_deref(),
            descending,
        }
    }

    /// Compare rows `a` and `b` with the engine's SQL ordering: NULLS
    /// LAST ascending (first descending — the whole ordering reverses),
    /// f64 panicking on NaN exactly like `Value::sql_cmp` through the
    /// legacy `cmp_values`.
    pub fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        let av = self.validity.is_none_or(|m| m[a]);
        let bv = self.validity.is_none_or(|m| m[b]);
        let ord = match (av, bv) {
            (false, false) => Ordering::Equal,
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (true, true) => match self.data {
                ColumnData::I64(v) => v[a].cmp(&v[b]),
                ColumnData::F64(v) => v[a].partial_cmp(&v[b]).expect("comparable sort keys"),
                ColumnData::Str(v) => v[a].cmp(&v[b]),
                ColumnData::Date(v) => v[a].cmp(&v[b]),
                ColumnData::Bool(v) => v[a].cmp(&v[b]),
            },
        };
        if self.descending {
            ord.reverse()
        } else {
            ord
        }
    }
}

/// The row permutation that sorts by `keys`, ties broken by row index.
/// The index tiebreak makes the comparator a total order, so an unstable
/// sort yields the exact permutation a stable sort would — output bytes
/// match the legacy `sort_by` path.
pub fn sort_permutation(keys: &[SortKeyCol<'_>], nrows: usize, limit: Option<usize>) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..nrows).collect();
    indices.sort_unstable_by(|&a, &b| {
        for k in keys {
            let ord = k.cmp_rows(a, b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b)
    });
    if let Some(l) = limit {
        indices.truncate(l);
    }
    indices
}
