//! Hash-group-by kernel: group-id assignment plus typed accumulators.
//!
//! The legacy aggregation path allocated an owned key per input row and
//! kept a `Vec<AggState>` per group, updating through an enum match per
//! (row, aggregate). The kernel splits the work: a [`Grouper`] maps rows
//! to dense group ids (a direct `i64` map for the dominant
//! single-integer-key case, a reused scratch key buffer otherwise), and
//! each [`Accumulator`] holds its state as typed parallel vectors
//! indexed by group id, updated in one columnar pass per batch.
//!
//! Group ids are assigned in first-encounter order and every finished
//! column goes through `values_to_column`, so output bytes are identical
//! to the legacy path.

use crate::column::{Column, ColumnData};
use crate::kernels::hash::FastBuildHasher;
use crate::ops::aggregate::{values_to_column, AggFunc};
use crate::rowkey::{encode_row, encode_row_into};
use crate::types::{DataType, Value};
use std::collections::{HashMap, HashSet};

enum GroupMap {
    /// Single all-valid `i64` key: no byte encoding at all.
    I64(HashMap<i64, u32, FastBuildHasher>),
    /// General case: canonical row-key bytes, encoded into a reused
    /// scratch buffer and cloned only when a new group is inserted.
    Bytes(HashMap<Vec<u8>, u32, FastBuildHasher>),
}

/// Maps rows to dense group ids in first-encounter order.
pub struct Grouper {
    map: GroupMap,
    /// `(batch, row)` exemplar of each group, in group-id order.
    pub exemplars: Vec<(u32, u32)>,
    key_scratch: Vec<u8>,
}

impl Grouper {
    /// Pick the key strategy for the given evaluated key columns (outer:
    /// batch, inner: key ordinal). The `i64` fast path requires a single
    /// all-valid integer key in *every* batch — group identity must not
    /// switch representations mid-stream.
    pub fn for_keys(key_cols_per_batch: &[Vec<Column>]) -> Grouper {
        let single_i64 = !key_cols_per_batch.is_empty()
            && key_cols_per_batch.iter().all(|cols| {
                cols.len() == 1
                    && matches!(cols[0].data, ColumnData::I64(_))
                    && cols[0].validity.is_none()
            });
        Grouper {
            map: if single_i64 {
                GroupMap::I64(HashMap::default())
            } else {
                GroupMap::Bytes(HashMap::default())
            },
            exemplars: Vec::new(),
            key_scratch: Vec::new(),
        }
    }

    /// Number of distinct groups seen so far.
    pub fn n_groups(&self) -> usize {
        self.exemplars.len()
    }

    /// Append the group id of every row of batch `bi` to `ids`.
    pub fn assign(&mut self, bi: usize, key_cols: &[&Column], nrows: usize, ids: &mut Vec<u32>) {
        match &mut self.map {
            GroupMap::I64(map) => {
                let keys = key_cols[0].i64s();
                for (row, &k) in keys.iter().enumerate().take(nrows) {
                    let gid = match map.get(&k) {
                        Some(&g) => g,
                        None => {
                            let g = self.exemplars.len() as u32;
                            map.insert(k, g);
                            self.exemplars.push((bi as u32, row as u32));
                            g
                        }
                    };
                    ids.push(gid);
                }
            }
            GroupMap::Bytes(map) => {
                for row in 0..nrows {
                    encode_row_into(&mut self.key_scratch, key_cols, row);
                    let gid = match map.get(self.key_scratch.as_slice()) {
                        Some(&g) => g,
                        None => {
                            let g = self.exemplars.len() as u32;
                            // The map owns its key; the scratch encoding is
                            // cloned once per *distinct group*, not per row.
                            // cackle-lint: allow(L14) — owned key once per distinct group
                            map.insert(self.key_scratch.clone(), g);
                            self.exemplars.push((bi as u32, row as u32));
                            g
                        }
                    };
                    ids.push(gid);
                }
            }
        }
    }
}

/// Typed per-group state for one aggregate, updated one batch at a time.
pub enum Accumulator {
    /// COUNT / COUNT(*): `star` counts invalid rows too.
    Count { counts: Vec<i64>, star: bool },
    /// SUM over integers.
    SumI64 { sums: Vec<i64>, seen: Vec<bool> },
    /// SUM over floats (integer inputs coerce, like the legacy path).
    SumF64 { sums: Vec<f64>, seen: Vec<bool> },
    /// AVG as f64.
    Avg { sums: Vec<f64>, counts: Vec<i64> },
    /// MIN/MAX; the best-value storage is typed lazily from the first
    /// input batch.
    MinMax {
        best: Option<MinMaxData>,
        seen: Vec<bool>,
        is_min: bool,
    },
    /// COUNT(DISTINCT): canonical key bytes per group.
    Distinct {
        /// Per-group sets of distinct canonical keys.
        sets: Vec<HashSet<Vec<u8>, FastBuildHasher>>,
    },
}

/// Typed best-value storage for MIN/MAX.
pub enum MinMaxData {
    /// i64 bests.
    I64(Vec<i64>),
    /// f64 bests.
    F64(Vec<f64>),
    /// String bests.
    Str(Vec<String>),
    /// Date bests.
    Date(Vec<i32>),
    /// Bool bests.
    Bool(Vec<bool>),
}

impl MinMaxData {
    fn for_column(data: &ColumnData, n: usize) -> MinMaxData {
        match data {
            ColumnData::I64(_) => MinMaxData::I64(vec![0; n]),
            ColumnData::F64(_) => MinMaxData::F64(vec![0.0; n]),
            ColumnData::Str(_) => MinMaxData::Str(vec![String::new(); n]),
            ColumnData::Date(_) => MinMaxData::Date(vec![0; n]),
            ColumnData::Bool(_) => MinMaxData::Bool(vec![false; n]),
        }
    }

    fn grow(&mut self, n: usize) {
        match self {
            MinMaxData::I64(v) if v.len() < n => v.resize(n, 0),
            MinMaxData::F64(v) if v.len() < n => v.resize(n, 0.0),
            MinMaxData::Str(v) if v.len() < n => v.resize(n, String::new()),
            MinMaxData::Date(v) if v.len() < n => v.resize(n, 0),
            MinMaxData::Bool(v) if v.len() < n => v.resize(n, false),
            _ => {}
        }
    }
}

impl Accumulator {
    /// Fresh state for a function (the input type disambiguates SUM).
    pub fn new(func: AggFunc, input_type: DataType) -> Accumulator {
        match func {
            AggFunc::Sum => match input_type {
                DataType::I64 => Accumulator::SumI64 {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
                _ => Accumulator::SumF64 {
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
            },
            AggFunc::Min | AggFunc::Max => Accumulator::MinMax {
                best: None,
                seen: Vec::new(),
                is_min: func == AggFunc::Min,
            },
            AggFunc::Count => Accumulator::Count {
                counts: Vec::new(),
                star: false,
            },
            AggFunc::CountStar => Accumulator::Count {
                counts: Vec::new(),
                star: true,
            },
            AggFunc::Avg => Accumulator::Avg {
                sums: Vec::new(),
                counts: Vec::new(),
            },
            AggFunc::CountDistinct => Accumulator::Distinct { sets: Vec::new() },
        }
    }

    /// Resize the per-group state to `n` groups (placeholder-initialized;
    /// capacity grows geometrically, once per batch at most).
    pub fn grow(&mut self, n: usize) {
        match self {
            Accumulator::Count { counts, .. } => counts.resize(n, 0),
            Accumulator::SumI64 { sums, seen } => {
                sums.resize(n, 0);
                seen.resize(n, false);
            }
            Accumulator::SumF64 { sums, seen } => {
                sums.resize(n, 0.0);
                seen.resize(n, false);
            }
            Accumulator::Avg { sums, counts } => {
                sums.resize(n, 0.0);
                counts.resize(n, 0);
            }
            Accumulator::MinMax { best, seen, .. } => {
                if let Some(b) = best {
                    b.grow(n);
                }
                seen.resize(n, false);
            }
            Accumulator::Distinct { sets } => sets.resize_with(n, HashSet::default),
        }
    }

    /// Fold one batch in: `ids[i]` is the group of row `i`. `col` is the
    /// evaluated input (`None` only for COUNT(*), which reads no values).
    pub fn update(&mut self, ids: &[u32], col: Option<&Column>) {
        match self {
            Accumulator::Count { counts, star } => {
                if *star {
                    for &g in ids {
                        counts[g as usize] += 1;
                    }
                } else {
                    let col = col.expect("COUNT input column");
                    match &col.validity {
                        None => {
                            for &g in ids {
                                counts[g as usize] += 1;
                            }
                        }
                        Some(m) => {
                            for (i, &g) in ids.iter().enumerate() {
                                if m[i] {
                                    counts[g as usize] += 1;
                                }
                            }
                        }
                    }
                }
            }
            Accumulator::SumI64 { sums, seen } => {
                let col = col.expect("SUM input column");
                let vals = col.i64s();
                match &col.validity {
                    None => {
                        for (i, &g) in ids.iter().enumerate() {
                            sums[g as usize] += vals[i];
                            seen[g as usize] = true;
                        }
                    }
                    Some(m) => {
                        for (i, &g) in ids.iter().enumerate() {
                            if m[i] {
                                sums[g as usize] += vals[i];
                                seen[g as usize] = true;
                            }
                        }
                    }
                }
            }
            Accumulator::SumF64 { sums, seen } => {
                let col = col.expect("SUM input column");
                for_each_f64(col, ids, |g, x| {
                    sums[g] += x;
                    seen[g] = true;
                });
            }
            Accumulator::Avg { sums, counts } => {
                let col = col.expect("AVG input column");
                for_each_f64(col, ids, |g, x| {
                    sums[g] += x;
                    counts[g] += 1;
                });
            }
            Accumulator::MinMax { best, seen, is_min } => {
                let col = col.expect("MIN/MAX input column");
                let n = seen.len();
                let data = best.get_or_insert_with(|| MinMaxData::for_column(&col.data, n));
                data.grow(n);
                update_min_max(data, seen, *is_min, ids, col);
            }
            Accumulator::Distinct { sets } => {
                let col = col.expect("COUNT DISTINCT input column");
                for (i, &g) in ids.iter().enumerate() {
                    if col.is_valid(i) {
                        let set = &mut sets[g as usize];
                        // An owned key enters the set once per distinct
                        // value; duplicates allocate nothing. (encode_row
                        // allocates the probe key; a fully pooled probe
                        // would need a raw-entry API std does not expose.)
                        let key = encode_row(&[col], i);
                        set.insert(key);
                    }
                }
            }
        }
    }

    /// Convert the per-group state to per-group values and build the
    /// output column — the exact `values_to_column` path the legacy
    /// implementation used, so bytes match.
    pub fn finish(self, dtype: DataType) -> Column {
        let values: Vec<Value> = match self {
            Accumulator::Count { counts, .. } => counts.into_iter().map(Value::I64).collect(),
            Accumulator::SumI64 { sums, seen } => sums
                .into_iter()
                .zip(seen)
                .map(|(s, ok)| if ok { Value::I64(s) } else { Value::Null })
                .collect(),
            Accumulator::SumF64 { sums, seen } => sums
                .into_iter()
                .zip(seen)
                .map(|(s, ok)| if ok { Value::F64(s) } else { Value::Null })
                .collect(),
            Accumulator::Avg { sums, counts } => sums
                .into_iter()
                .zip(counts)
                .map(|(s, c)| {
                    if c > 0 {
                        Value::F64(s / c as f64)
                    } else {
                        Value::Null
                    }
                })
                .collect(),
            Accumulator::MinMax { best, seen, .. } => match best {
                None => seen.iter().map(|_| Value::Null).collect(),
                Some(data) => min_max_values(data, &seen),
            },
            Accumulator::Distinct { sets } => sets
                // Iterates the outer Vec (group-id order); set order is
                // never observed, only the cardinality.
                .into_iter() // cackle-lint: allow(L3)
                .map(|s| Value::I64(s.len() as i64))
                .collect(),
        };
        values_to_column(&values, dtype)
    }
}

/// Drive `f(group, value_as_f64)` over the valid rows of a numeric
/// column (f64 or i64 input, like the legacy SUM/AVG coercion).
fn for_each_f64(col: &Column, ids: &[u32], mut f: impl FnMut(usize, f64)) {
    match (&col.data, &col.validity) {
        (ColumnData::F64(vals), None) => {
            for (i, &g) in ids.iter().enumerate() {
                f(g as usize, vals[i]);
            }
        }
        (ColumnData::F64(vals), Some(m)) => {
            for (i, &g) in ids.iter().enumerate() {
                if m[i] {
                    f(g as usize, vals[i]);
                }
            }
        }
        (ColumnData::I64(vals), None) => {
            for (i, &g) in ids.iter().enumerate() {
                f(g as usize, vals[i] as f64);
            }
        }
        (ColumnData::I64(vals), Some(m)) => {
            for (i, &g) in ids.iter().enumerate() {
                if m[i] {
                    f(g as usize, vals[i] as f64);
                }
            }
        }
        (other, _) => panic!("cannot aggregate {} as f64", other.data_type()),
    }
}

fn update_min_max(
    data: &mut MinMaxData,
    seen: &mut [bool],
    is_min: bool,
    ids: &[u32],
    col: &Column,
) {
    // Copy-type arms assign the improved value directly; the Str arm uses
    // `clone_from`, which reuses the accumulator string's buffer.
    macro_rules! fold {
        ($best:expr, $vals:expr, $better:expr) => {{
            let best = $best;
            let vals = $vals;
            for (i, &g) in ids.iter().enumerate() {
                if !col.is_valid(i) {
                    continue;
                }
                let g = g as usize;
                if !seen[g] || $better(&vals[i], &best[g]) {
                    seen[g] = true;
                    best[g] = vals[i];
                }
            }
        }};
    }
    match (data, &col.data) {
        (MinMaxData::I64(best), ColumnData::I64(vals)) => {
            fold!(best, vals, |x: &i64, b: &i64| if is_min {
                x < b
            } else {
                x > b
            })
        }
        (MinMaxData::Date(best), ColumnData::Date(vals)) => {
            fold!(best, vals, |x: &i32, b: &i32| if is_min {
                x < b
            } else {
                x > b
            })
        }
        (MinMaxData::Bool(best), ColumnData::Bool(vals)) => {
            fold!(best, vals, |x: &bool, b: &bool| if is_min {
                !*x & *b
            } else {
                *x & !*b
            })
        }
        (MinMaxData::F64(best), ColumnData::F64(vals)) => {
            // Keep the legacy panic-on-incomparable behavior (NaN inputs).
            fold!(best, vals, |x: &f64, b: &f64| {
                let ord = x.partial_cmp(b).expect("comparable agg inputs");
                if is_min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                }
            })
        }
        (MinMaxData::Str(best), ColumnData::Str(vals)) => {
            for (i, &g) in ids.iter().enumerate() {
                if !col.is_valid(i) {
                    continue;
                }
                let g = g as usize;
                let better = if is_min {
                    vals[i] < best[g]
                } else {
                    vals[i] > best[g]
                };
                if !seen[g] || better {
                    seen[g] = true;
                    best[g].clone_from(&vals[i]);
                }
            }
        }
        (_, other) => panic!(
            "MIN/MAX input type changed mid-stream to {}",
            other.data_type()
        ),
    }
}

fn min_max_values(data: MinMaxData, seen: &[bool]) -> Vec<Value> {
    match data {
        MinMaxData::I64(v) => zip_values(v, seen, Value::I64),
        MinMaxData::F64(v) => zip_values(v, seen, Value::F64),
        MinMaxData::Str(v) => zip_values(v, seen, Value::Str),
        MinMaxData::Date(v) => zip_values(v, seen, Value::Date),
        MinMaxData::Bool(v) => zip_values(v, seen, Value::Bool),
    }
}

fn zip_values<T>(vals: Vec<T>, seen: &[bool], wrap: impl Fn(T) -> Value) -> Vec<Value> {
    vals.into_iter()
        .zip(seen)
        .map(|(v, &ok)| if ok { wrap(v) } else { Value::Null })
        .collect()
}
