//! Shuffle transport abstraction.
//!
//! Tasks exchange intermediate state through a [`ShuffleTransport`]. The
//! engine ships an unbounded in-memory implementation for tests and
//! single-process runs; the Cackle core crate provides the hybrid
//! shuffle-node + object-store transport with capacity fallback (§7.1.3).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

/// Identifies one shuffle partition of one producing stage of one query.
/// Ordered so `BTreeMap`-backed transports iterate deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShuffleKey {
    /// Query id (unique per execution).
    pub query: u64,
    /// Producing stage id.
    pub stage: u32,
    /// Destination partition (equals the consuming task index, or 0 for
    /// broadcast outputs).
    pub partition: u32,
}

/// Aggregate transport statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Partition chunks written.
    pub writes: u64,
    /// Partition chunks read.
    pub reads: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

/// Where intermediate data travels between stages.
pub trait ShuffleTransport: Send + Sync {
    /// Store one producer task's chunk for a partition.
    fn write(&self, key: ShuffleKey, producer_task: u32, data: Vec<u8>);

    /// Fetch every producer's chunk for a partition, in producer-task order.
    fn read(&self, key: ShuffleKey) -> Vec<Arc<[u8]>>;

    /// Drop all state belonging to a query (called when it completes).
    fn delete_query(&self, query: u64);

    /// Transport statistics so far.
    fn stats(&self) -> ShuffleStats;
}

/// One producer task's stored chunk: `(producer_task, bytes)`.
pub type ShuffleChunk = (u32, Arc<[u8]>);

/// Unbounded in-memory shuffle for tests and engine-only execution.
#[derive(Debug, Default)]
pub struct MemoryShuffle {
    data: RwLock<BTreeMap<ShuffleKey, Vec<ShuffleChunk>>>,
    stats: Mutex<ShuffleStats>,
}

impl MemoryShuffle {
    /// An empty transport.
    pub fn new() -> Self {
        Self::default()
    }

    // Poison-forgiving lock access: a panicking task must not wedge the
    // transport for the other executor threads.
    fn data_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<ShuffleKey, Vec<ShuffleChunk>>> {
        self.data.read().unwrap_or_else(|e| e.into_inner())
    }

    fn data_write(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, BTreeMap<ShuffleKey, Vec<ShuffleChunk>>> {
        self.data.write().unwrap_or_else(|e| e.into_inner())
    }

    fn stats_lock(&self) -> std::sync::MutexGuard<'_, ShuffleStats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Bytes currently held.
    pub fn resident_bytes(&self) -> u64 {
        self.data_read()
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, d)| d.len() as u64)
            .sum()
    }
}

impl ShuffleTransport for MemoryShuffle {
    fn write(&self, key: ShuffleKey, producer_task: u32, data: Vec<u8>) {
        let len = data.len() as u64;
        self.data_write()
            .entry(key)
            .or_default()
            .push((producer_task, data.into()));
        let mut s = self.stats_lock();
        s.writes += 1;
        s.bytes_written += len;
    }

    fn read(&self, key: ShuffleKey) -> Vec<Arc<[u8]>> {
        let guard = self.data_read();
        let mut chunks: Vec<ShuffleChunk> = guard.get(&key).cloned().unwrap_or_default();
        drop(guard);
        chunks.sort_by_key(|(t, _)| *t);
        let mut s = self.stats_lock();
        s.reads += chunks.len() as u64;
        s.bytes_read += chunks.iter().map(|(_, d)| d.len() as u64).sum::<u64>();
        chunks.into_iter().map(|(_, d)| d).collect()
    }

    fn delete_query(&self, query: u64) {
        self.data_write().retain(|k, _| k.query != query);
    }

    fn stats(&self) -> ShuffleStats {
        *self.stats_lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_return_in_producer_order() {
        let t = MemoryShuffle::new();
        let key = ShuffleKey {
            query: 1,
            stage: 0,
            partition: 3,
        };
        t.write(key, 2, vec![2]);
        t.write(key, 0, vec![0]);
        t.write(key, 1, vec![1]);
        let chunks = t.read(key);
        assert_eq!(chunks.len(), 3);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c[0], i as u8);
        }
    }

    #[test]
    fn reads_of_missing_partitions_are_empty() {
        let t = MemoryShuffle::new();
        assert!(t
            .read(ShuffleKey {
                query: 9,
                stage: 0,
                partition: 0
            })
            .is_empty());
    }

    #[test]
    fn delete_query_scopes_by_query() {
        let t = MemoryShuffle::new();
        t.write(
            ShuffleKey {
                query: 1,
                stage: 0,
                partition: 0,
            },
            0,
            vec![1; 10],
        );
        t.write(
            ShuffleKey {
                query: 2,
                stage: 0,
                partition: 0,
            },
            0,
            vec![2; 20],
        );
        assert_eq!(t.resident_bytes(), 30);
        t.delete_query(1);
        assert_eq!(t.resident_bytes(), 20);
        assert!(t
            .read(ShuffleKey {
                query: 1,
                stage: 0,
                partition: 0
            })
            .is_empty());
        assert_eq!(
            t.read(ShuffleKey {
                query: 2,
                stage: 0,
                partition: 0
            })
            .len(),
            1
        );
    }

    #[test]
    fn stats_track_traffic() {
        let t = MemoryShuffle::new();
        let key = ShuffleKey {
            query: 1,
            stage: 0,
            partition: 0,
        };
        t.write(key, 0, vec![0; 100]);
        t.read(key);
        let s = t.stats();
        assert_eq!(
            s,
            ShuffleStats {
                writes: 1,
                reads: 1,
                bytes_written: 100,
                bytes_read: 100
            }
        );
    }
}
