//! Physical plans: DAGs of stages.
//!
//! Following Starling's execution model (§3 of the paper): a query is a DAG
//! of *stages*; each stage runs as one or more *tasks* that execute to
//! completion; a stage becomes runnable only when every upstream stage has
//! finished; data crosses stage boundaries through a shuffle exchange
//! (hash-partitioned, broadcast, or gathered to the coordinator). There is
//! no pipelining between stages (§7.1.4).

use crate::expr::Expr;
use crate::ops::aggregate::AggExpr;
use crate::ops::join::JoinType;
use crate::ops::sort::SortKey;
use crate::schema::SchemaRef;

/// Stage identifier, an index into [`StageDag::stages`].
pub type StageId = usize;

/// An operator tree executed within one task.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Scan a base table: optional pushed-down filter (resolved against the
    /// full table schema) then optional projection by column index.
    Scan {
        /// Catalog table name.
        table: String,
        /// Pushed-down predicate over the full table schema.
        filter: Option<Expr>,
        /// Kept column indices, in output order.
        projection: Option<Vec<usize>>,
    },
    /// Read this task's hash partition of an upstream stage's output.
    ShuffleRead {
        /// Upstream stage.
        stage: StageId,
    },
    /// Read the whole (broadcast) output of an upstream stage.
    BroadcastRead {
        /// Upstream stage.
        stage: StageId,
    },
    /// Keep rows satisfying a predicate.
    Filter {
        /// Input operator.
        input: Box<PlanNode>,
        /// The predicate.
        predicate: Expr,
    },
    /// Compute expressions into a new schema.
    Project {
        /// Input operator.
        input: Box<PlanNode>,
        /// One expression per output column.
        exprs: Vec<Expr>,
        /// Output schema (names + types for the computed columns).
        schema: SchemaRef,
    },
    /// Hash aggregation (grouped or global).
    HashAggregate {
        /// Input operator.
        input: Box<PlanNode>,
        /// Group-key expressions (empty = global).
        group_by: Vec<Expr>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
        /// Output schema: group columns then aggregate columns.
        schema: SchemaRef,
    },
    /// Hash join; output is probe columns then build columns
    /// (probe only for semi/anti).
    HashJoin {
        /// Build (hash-table) side.
        build: Box<PlanNode>,
        /// Probe side.
        probe: Box<PlanNode>,
        /// Build-side key expressions.
        build_keys: Vec<Expr>,
        /// Probe-side key expressions.
        probe_keys: Vec<Expr>,
        /// Join type.
        join_type: JoinType,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Sort (optionally top-k).
    Sort {
        /// Input operator.
        input: Box<PlanNode>,
        /// Sort keys.
        keys: Vec<SortKey>,
        /// Keep only the first `limit` rows when set.
        limit: Option<usize>,
    },
    /// Concatenate inputs that share a schema.
    Union {
        /// Input operators.
        inputs: Vec<PlanNode>,
    },
}

impl PlanNode {
    /// Upstream stages this operator tree reads, in discovery order.
    pub fn upstream_stages(&self, out: &mut Vec<StageId>) {
        match self {
            PlanNode::Scan { .. } => {}
            PlanNode::ShuffleRead { stage } | PlanNode::BroadcastRead { stage } => {
                if !out.contains(stage) {
                    out.push(*stage);
                }
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Sort { input, .. } => input.upstream_stages(out),
            PlanNode::HashJoin { build, probe, .. } => {
                build.upstream_stages(out);
                probe.upstream_stages(out);
            }
            PlanNode::Union { inputs } => {
                for i in inputs {
                    i.upstream_stages(out);
                }
            }
        }
    }

    /// Table names scanned by this operator tree.
    pub fn scanned_tables(&self, out: &mut Vec<String>) {
        match self {
            PlanNode::Scan { table, .. } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            PlanNode::ShuffleRead { .. } | PlanNode::BroadcastRead { .. } => {}
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Sort { input, .. } => input.scanned_tables(out),
            PlanNode::HashJoin { build, probe, .. } => {
                build.scanned_tables(out);
                probe.scanned_tables(out);
            }
            PlanNode::Union { inputs } => {
                for i in inputs {
                    i.scanned_tables(out);
                }
            }
        }
    }
}

/// How a stage's output leaves the stage.
#[derive(Debug, Clone)]
pub enum ExchangeMode {
    /// Hash-partition rows by key into `partitions` partitions (one per
    /// consuming task).
    Hash {
        /// Partitioning key expressions over the stage's output schema.
        keys: Vec<Expr>,
        /// Number of output partitions.
        partitions: u32,
    },
    /// Single partition read in full by every consuming task.
    Broadcast,
    /// Return batches to the coordinator (final stage only).
    Gather,
}

/// One stage of a query plan.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage id (must equal its index in the DAG).
    pub id: StageId,
    /// The operator tree each task executes.
    pub root: PlanNode,
    /// Degree of parallelism.
    pub tasks: u32,
    /// Output exchange.
    pub exchange: ExchangeMode,
    /// Schema of the stage's output rows.
    pub output_schema: SchemaRef,
}

impl Stage {
    /// Stages this stage depends on.
    pub fn dependencies(&self) -> Vec<StageId> {
        let mut deps = Vec::new();
        self.root.upstream_stages(&mut deps);
        deps
    }
}

/// A complete physical plan: topologically ordered stages, the last of
/// which gathers the query result.
#[derive(Debug, Clone)]
pub struct StageDag {
    /// Query name (e.g. `"q01"`), used for diagnostics.
    pub name: String,
    /// Stages in topological order.
    pub stages: Vec<Stage>,
}

impl StageDag {
    /// Build and validate a DAG: ids match indices, dependencies point
    /// backwards (topological order), only the last stage gathers, and
    /// hash-exchange partition counts equal their consumers' task counts.
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        let dag = StageDag {
            name: name.into(),
            stages,
        };
        dag.validate();
        dag
    }

    fn validate(&self) {
        assert!(!self.stages.is_empty(), "{}: empty plan", self.name);
        for (i, s) in self.stages.iter().enumerate() {
            assert_eq!(s.id, i, "{}: stage {i} has id {}", self.name, s.id);
            assert!(s.tasks > 0, "{}: stage {i} has zero tasks", self.name);
            for d in s.dependencies() {
                assert!(d < i, "{}: stage {i} depends on later stage {d}", self.name);
            }
            // Read kinds must match the upstream exchange: a ShuffleRead of
            // a broadcast stage would read partition `task` of a single-
            // partition output, and a BroadcastRead of a hash stage would
            // read only partition 0 — both silently lose data.
            Self::validate_reads(&s.root, &self.stages, &self.name, i);
            let is_last = i == self.stages.len() - 1;
            match &s.exchange {
                ExchangeMode::Gather => {
                    assert!(is_last, "{}: inner stage {i} gathers", self.name)
                }
                ExchangeMode::Hash { partitions, .. } => {
                    assert!(!is_last, "{}: final stage must gather", self.name);
                    // Every consumer that ShuffleReads this stage must have
                    // `tasks == partitions`.
                    for c in &self.stages {
                        if Self::reads_via_shuffle(&c.root, i) {
                            assert_eq!(
                                c.tasks, *partitions,
                                "{}: stage {} reads stage {i} but tasks != partitions",
                                self.name, c.id
                            );
                        }
                    }
                }
                ExchangeMode::Broadcast => {
                    assert!(!is_last, "{}: final stage must gather", self.name)
                }
            }
        }
    }

    fn validate_reads(node: &PlanNode, stages: &[Stage], name: &str, reader: usize) {
        match node {
            PlanNode::ShuffleRead { stage } => {
                assert!(
                    matches!(stages[*stage].exchange, ExchangeMode::Hash { .. }),
                    "{name}: stage {reader} ShuffleReads stage {stage}, which does not hash-exchange"
                );
            }
            PlanNode::BroadcastRead { stage } => {
                assert!(
                    matches!(stages[*stage].exchange, ExchangeMode::Broadcast),
                    "{name}: stage {reader} BroadcastReads stage {stage}, which does not broadcast"
                );
            }
            PlanNode::Scan { .. } => {}
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Sort { input, .. } => Self::validate_reads(input, stages, name, reader),
            PlanNode::HashJoin { build, probe, .. } => {
                Self::validate_reads(build, stages, name, reader);
                Self::validate_reads(probe, stages, name, reader);
            }
            PlanNode::Union { inputs } => {
                for i in inputs {
                    Self::validate_reads(i, stages, name, reader);
                }
            }
        }
    }

    fn reads_via_shuffle(node: &PlanNode, stage: StageId) -> bool {
        match node {
            PlanNode::ShuffleRead { stage: s } => *s == stage,
            PlanNode::BroadcastRead { .. } | PlanNode::Scan { .. } => false,
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::Sort { input, .. } => Self::reads_via_shuffle(input, stage),
            PlanNode::HashJoin { build, probe, .. } => {
                Self::reads_via_shuffle(build, stage) || Self::reads_via_shuffle(probe, stage)
            }
            PlanNode::Union { inputs } => inputs.iter().any(|i| Self::reads_via_shuffle(i, stage)),
        }
    }

    /// The final (gather) stage.
    pub fn final_stage(&self) -> &Stage {
        self.stages.last().expect("validated non-empty")
    }

    /// Total task count across all stages.
    pub fn total_tasks(&self) -> u32 {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// All base tables referenced by the plan.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.stages {
            s.root.scanned_tables(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn scan_stage(id: StageId, tasks: u32, partitions: u32) -> Stage {
        Stage {
            id,
            root: PlanNode::Scan {
                table: "t".into(),
                filter: None,
                projection: None,
            },
            tasks,
            exchange: ExchangeMode::Hash {
                keys: vec![Expr::col(0)],
                partitions,
            },
            output_schema: Schema::shared(&[("k", DataType::I64)]),
        }
    }

    fn gather_stage(id: StageId, tasks: u32, from: StageId) -> Stage {
        Stage {
            id,
            root: PlanNode::ShuffleRead { stage: from },
            tasks,
            exchange: ExchangeMode::Gather,
            output_schema: Schema::shared(&[("k", DataType::I64)]),
        }
    }

    #[test]
    fn valid_two_stage_plan() {
        let dag = StageDag::new("t", vec![scan_stage(0, 4, 2), gather_stage(1, 2, 0)]);
        assert_eq!(dag.final_stage().id, 1);
        assert_eq!(dag.total_tasks(), 6);
        assert_eq!(dag.stages[1].dependencies(), vec![0]);
        assert_eq!(dag.tables(), vec!["t".to_string()]);
    }

    #[test]
    #[should_panic(expected = "tasks != partitions")]
    fn partition_task_mismatch_rejected() {
        StageDag::new("t", vec![scan_stage(0, 4, 3), gather_stage(1, 2, 0)]);
    }

    #[test]
    #[should_panic(expected = "depends on later stage")]
    fn forward_dependency_rejected() {
        let mut g = gather_stage(0, 2, 1);
        g.exchange = ExchangeMode::Gather;
        let s = scan_stage(1, 4, 2);
        // gather depends on stage 1 which comes later.
        StageDag::new(
            "t",
            vec![
                g,
                Stage {
                    exchange: ExchangeMode::Gather,
                    ..s
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "final stage must gather")]
    fn final_stage_must_gather() {
        StageDag::new("t", vec![scan_stage(0, 4, 4)]);
    }

    #[test]
    fn upstream_discovery_through_joins() {
        let join = PlanNode::HashJoin {
            build: Box::new(PlanNode::BroadcastRead { stage: 0 }),
            probe: Box::new(PlanNode::ShuffleRead { stage: 1 }),
            build_keys: vec![Expr::col(0)],
            probe_keys: vec![Expr::col(0)],
            join_type: JoinType::Inner,
            schema: Schema::shared(&[("a", DataType::I64), ("b", DataType::I64)]),
        };
        let mut deps = Vec::new();
        join.upstream_stages(&mut deps);
        assert_eq!(deps, vec![0, 1]);
    }
}
