//! In-memory tables and the catalog.
//!
//! Base tables live in memory as partitioned batch lists — the stand-in for
//! the paper's ORC files in S3 (the 100 MB-chunk layout maps to our
//! partitions; scan tasks divide partitions round-robin).

use crate::batch::Batch;
use crate::schema::SchemaRef;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A named, partitioned, immutable table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Schema.
    pub schema: SchemaRef,
    /// Horizontal partitions (the unit of scan parallelism).
    pub partitions: Vec<Batch>,
}

impl Table {
    /// Build a table, validating partition schemas.
    pub fn new(name: impl Into<String>, schema: SchemaRef, partitions: Vec<Batch>) -> Self {
        for (i, p) in partitions.iter().enumerate() {
            assert_eq!(p.schema, schema, "partition {i} schema mismatch");
        }
        Table {
            name: name.into(),
            schema,
            partitions,
        }
    }

    /// Total row count.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.num_rows()).sum()
    }

    /// Approximate size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.partitions.iter().map(|p| p.byte_size()).sum()
    }

    /// The partitions scan task `task` of `num_tasks` is responsible for
    /// (round-robin assignment).
    pub fn partitions_for_task(&self, task: u32, num_tasks: u32) -> Vec<&Batch> {
        self.partitions
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u32) % num_tasks == task)
            .map(|(_, b)| b)
            .collect()
    }
}

/// A shared, thread-safe name → table map.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> RwLockReadGuard<'_, BTreeMap<String, Arc<Table>>> {
        self.tables.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Arc<Table>>> {
        self.tables.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Register (or replace) a table.
    pub fn register(&self, table: Table) {
        self.write().insert(table.name.clone(), Arc::new(table));
    }

    /// Look up a table if it is registered.
    pub fn try_get(&self, name: &str) -> Option<Arc<Table>> {
        self.read().get(name).cloned()
    }

    /// Look up a table, panicking with a clear message if missing (plans
    /// reference tables statically, so a miss is a plan-construction bug).
    pub fn get(&self, name: &str) -> Arc<Table> {
        self.try_get(name)
            .unwrap_or_else(|| panic!("table '{name}' not registered")) // cackle-lint: allow(L5)
    }

    /// Does the catalog contain `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    /// Registered table names, sorted (`BTreeMap` keys are ordered).
    pub fn table_names(&self) -> Vec<String> {
        self.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn table() -> Table {
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let parts = (0..5)
            .map(|i| Batch::new(schema.clone(), vec![Column::from_i64(vec![i, i + 10])]))
            .collect();
        Table::new("t", schema, parts)
    }

    #[test]
    fn round_robin_partition_assignment() {
        let t = table();
        assert_eq!(t.num_rows(), 10);
        let t0 = t.partitions_for_task(0, 2);
        let t1 = t.partitions_for_task(1, 2);
        assert_eq!(t0.len(), 3); // partitions 0, 2, 4
        assert_eq!(t1.len(), 2); // partitions 1, 3
                                 // More tasks than partitions: extra tasks get nothing.
        assert!(t.partitions_for_task(7, 8).is_empty());
    }

    #[test]
    fn catalog_roundtrip() {
        let c = Catalog::new();
        c.register(table());
        assert!(c.contains("t"));
        assert_eq!(c.get("t").num_rows(), 10);
        assert_eq!(c.table_names(), vec!["t".to_string()]);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn missing_table_panics() {
        Catalog::new().get("nope");
    }
}
