//! Hash aggregation: grouped and global, with SQL null semantics
//! (aggregates skip null inputs; `COUNT(*)` counts rows).
//!
//! Grouping and accumulation are delegated to the typed kernels in
//! [`crate::kernels::agg`]: a [`Grouper`] assigns dense group ids per
//! batch and each aggregate folds whole batches into typed per-group
//! vectors. The row-at-a-time original survives as
//! [`crate::reference::row_hash_aggregate`].

use crate::batch::Batch;
use crate::column::{Column, ColumnData};
use crate::expr::Expr;
use crate::kernels::agg::{Accumulator, Grouper};
use crate::schema::SchemaRef;
use crate::types::{DataType, Value};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// SUM(expr), skipping nulls. Output type matches the input type.
    Sum,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
    /// COUNT(expr) — non-null rows.
    Count,
    /// COUNT(*) — all rows (use with any input expression).
    CountStar,
    /// AVG(expr) as f64.
    Avg,
    /// COUNT(DISTINCT expr).
    CountDistinct,
}

/// One aggregate to compute.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// The input expression.
    pub input: Expr,
}

impl AggExpr {
    /// Build an aggregate expression.
    pub fn new(func: AggFunc, input: Expr) -> Self {
        AggExpr { func, input }
    }

    /// The output type given the input type.
    pub fn output_type(&self, input_type: DataType) -> DataType {
        match self.func {
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => input_type,
            AggFunc::Count | AggFunc::CountStar | AggFunc::CountDistinct => DataType::I64,
            AggFunc::Avg => DataType::F64,
        }
    }
}

/// Hash-aggregate `batches`, grouping by `group_by` and computing `aggs`.
///
/// The output schema must list the group columns first (in `group_by`
/// order) followed by one column per aggregate; groups appear in
/// first-encounter order, making single-task output deterministic.
/// With an empty `group_by` this is a global aggregation producing exactly
/// one row (even over zero input rows, per SQL).
pub fn hash_aggregate(
    batches: &[Batch],
    group_by: &[Expr],
    aggs: &[AggExpr],
    output: SchemaRef,
) -> Batch {
    assert_eq!(
        output.len(),
        group_by.len() + aggs.len(),
        "aggregate schema width"
    );
    let global = group_by.is_empty();

    let key_cols_per_batch: Vec<Vec<Column>> = batches
        .iter()
        .map(|b| group_by.iter().map(|e| e.eval(b)).collect())
        .collect();
    // COUNT(*) reads no values, so its input expression (a literal in
    // every plan builder) is never evaluated — the legacy path broadcast
    // a constant column per batch just to ignore it.
    let agg_cols_per_batch: Vec<Vec<Option<Column>>> = batches
        .iter()
        .map(|b| {
            aggs.iter()
                .map(|a| match a.func {
                    AggFunc::CountStar => None,
                    _ => Some(a.input.eval(b)),
                })
                .collect()
        })
        .collect();

    // Infer each aggregate's input type from the output schema (exact
    // for Sum / Min / Max; the others don't depend on it).
    let mut accs: Vec<Accumulator> = aggs
        .iter()
        .enumerate()
        .map(|(ai, a)| Accumulator::new(a.func, output.field(group_by.len() + ai).dtype))
        .collect();

    let mut grouper = Grouper::for_keys(&key_cols_per_batch);
    let mut n_groups = if global { 1 } else { 0 };
    let mut ids: Vec<u32> = Vec::new();
    for (bi, b) in batches.iter().enumerate() {
        let nrows = b.num_rows();
        ids.clear();
        if global {
            ids.resize(nrows, 0);
        } else {
            // The grouper wants &[&Column]; this ref vec is sized by the
            // key count per batch — nothing here is allocated per row.
            // cackle-lint: allow(L14) — key-count-sized ref vec, once per batch
            let key_refs: Vec<&Column> = key_cols_per_batch[bi].iter().collect();
            grouper.assign(bi, &key_refs, nrows, &mut ids);
            n_groups = grouper.n_groups();
        }
        for (ai, acc) in accs.iter_mut().enumerate() {
            acc.grow(n_groups);
            acc.update(&ids, agg_cols_per_batch[bi][ai].as_ref());
        }
    }
    // Zero input batches (or zero groups) still need sized accumulators:
    // a global aggregate produces exactly one row, per SQL.
    for acc in accs.iter_mut() {
        acc.grow(n_groups);
    }

    // Materialize output columns: group exemplars first, then finished
    // aggregates, all through `values_to_column`.
    let mut out_cols: Vec<Column> = Vec::with_capacity(output.len());
    for (ci, _) in group_by.iter().enumerate() {
        // cackle-lint: allow(L14) — one-time gather of each group's exemplar
        let values: Vec<Value> = grouper
            .exemplars
            .iter()
            .map(|&(bi, row)| key_cols_per_batch[bi as usize][ci].value(row as usize))
            .collect();
        out_cols.push(values_to_column(&values, output.field(ci).dtype));
    }
    for (ai, acc) in accs.into_iter().enumerate() {
        out_cols.push(acc.finish(output.field(group_by.len() + ai).dtype));
    }
    Batch::new(output, out_cols)
}

/// Build a column of `dtype` from owned values (nulls allowed).
pub fn values_to_column(values: &[Value], dtype: DataType) -> Column {
    let n = values.len();
    let mut validity = vec![true; n];
    let data = match dtype {
        DataType::I64 => {
            let mut v = vec![0i64; n];
            for (i, val) in values.iter().enumerate() {
                match val {
                    Value::I64(x) => v[i] = *x,
                    Value::Null => validity[i] = false,
                    other => panic!("expected i64 value, got {other:?}"),
                }
            }
            ColumnData::I64(v)
        }
        DataType::F64 => {
            let mut v = vec![0f64; n];
            for (i, val) in values.iter().enumerate() {
                match val {
                    Value::F64(x) => v[i] = *x,
                    Value::I64(x) => v[i] = *x as f64,
                    Value::Null => validity[i] = false,
                    other => panic!("expected f64 value, got {other:?}"),
                }
            }
            ColumnData::F64(v)
        }
        DataType::Str => {
            let mut v = vec![String::new(); n];
            for (i, val) in values.iter().enumerate() {
                match val {
                    // The owned copy into the output column is the
                    // operation itself; `values` is only borrowed.
                    // cackle-lint: allow(L14) — owned copy into the output
                    Value::Str(x) => v[i] = x.clone(),
                    Value::Null => validity[i] = false,
                    other => panic!("expected str value, got {other:?}"),
                }
            }
            ColumnData::Str(v)
        }
        DataType::Date => {
            let mut v = vec![0i32; n];
            for (i, val) in values.iter().enumerate() {
                match val {
                    Value::Date(x) => v[i] = *x,
                    Value::Null => validity[i] = false,
                    other => panic!("expected date value, got {other:?}"),
                }
            }
            ColumnData::Date(v)
        }
        DataType::Bool => {
            let mut v = vec![false; n];
            for (i, val) in values.iter().enumerate() {
                match val {
                    Value::Bool(x) => v[i] = *x,
                    Value::Null => validity[i] = false,
                    other => panic!("expected bool value, got {other:?}"),
                }
            }
            ColumnData::Bool(v)
        }
    };
    Column::with_validity(data, validity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn lineitem_like() -> Vec<Batch> {
        let schema = Schema::shared(&[
            ("flag", DataType::Str),
            ("qty", DataType::I64),
            ("price", DataType::F64),
        ]);
        vec![
            Batch::new(
                schema.clone(),
                vec![
                    Column::from_str_vec(vec!["A".into(), "B".into(), "A".into()]),
                    Column::from_i64(vec![10, 20, 30]),
                    Column::from_f64(vec![1.0, 2.0, 3.0]),
                ],
            ),
            Batch::new(
                schema,
                vec![
                    Column::from_str_vec(vec!["B".into(), "A".into()]),
                    Column::from_i64(vec![40, 50]),
                    Column::from_f64(vec![4.0, 5.0]),
                ],
            ),
        ]
    }

    #[test]
    fn grouped_sum_count_avg() {
        let out = Schema::shared(&[
            ("flag", DataType::Str),
            ("sum_qty", DataType::I64),
            ("avg_price", DataType::F64),
            ("cnt", DataType::I64),
        ]);
        let b = hash_aggregate(
            &lineitem_like(),
            &[Expr::col(0)],
            &[
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
                AggExpr::new(AggFunc::Avg, Expr::col(2)),
                AggExpr::new(AggFunc::CountStar, Expr::lit_i64(1)),
            ],
            out,
        );
        assert_eq!(b.num_rows(), 2);
        // Group order is first-encounter: A then B.
        assert_eq!(b.columns[0].strs(), &["A".to_string(), "B".to_string()]);
        assert_eq!(b.columns[1].i64s(), &[90, 60]);
        assert_eq!(b.columns[2].f64s(), &[3.0, 3.0]);
        assert_eq!(b.columns[3].i64s(), &[3, 2]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let schema = Schema::shared(&[("x", DataType::F64)]);
        let out = Schema::shared(&[("sum", DataType::F64), ("cnt", DataType::I64)]);
        let b = hash_aggregate(
            &[Batch::empty(schema)],
            &[],
            &[
                AggExpr::new(AggFunc::Sum, Expr::col(0)),
                AggExpr::new(AggFunc::CountStar, Expr::lit_i64(1)),
            ],
            out,
        );
        assert_eq!(b.num_rows(), 1);
        assert_eq!(b.columns[0].value(0), Value::Null); // SUM of nothing is NULL
        assert_eq!(b.columns[1].value(0), Value::I64(0)); // COUNT(*) is 0
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let schema = Schema::shared(&[("x", DataType::I64)]);
        let input = Batch::new(
            schema,
            vec![Column::with_validity(
                ColumnData::I64(vec![1, 2, 3]),
                vec![true, false, true],
            )],
        );
        let out = Schema::shared(&[("c", DataType::I64), ("cs", DataType::I64)]);
        let b = hash_aggregate(
            &[input],
            &[],
            &[
                AggExpr::new(AggFunc::Count, Expr::col(0)),
                AggExpr::new(AggFunc::CountStar, Expr::col(0)),
            ],
            out,
        );
        assert_eq!(b.columns[0].i64s(), &[2]);
        assert_eq!(b.columns[1].i64s(), &[3]);
    }

    #[test]
    fn min_max_and_count_distinct() {
        let out = Schema::shared(&[
            ("flag", DataType::Str),
            ("mn", DataType::I64),
            ("mx", DataType::I64),
            ("nd", DataType::I64),
        ]);
        let b = hash_aggregate(
            &lineitem_like(),
            &[Expr::col(0)],
            &[
                AggExpr::new(AggFunc::Min, Expr::col(1)),
                AggExpr::new(AggFunc::Max, Expr::col(1)),
                AggExpr::new(AggFunc::CountDistinct, Expr::col(0)),
            ],
            out,
        );
        assert_eq!(b.columns[1].i64s(), &[10, 20]);
        assert_eq!(b.columns[2].i64s(), &[50, 40]);
        assert_eq!(b.columns[3].i64s(), &[1, 1]);
    }

    #[test]
    fn expression_group_keys() {
        // GROUP BY qty % 2.
        let out = Schema::shared(&[("parity", DataType::I64), ("cnt", DataType::I64)]);
        let b = hash_aggregate(
            &lineitem_like(),
            &[Expr::Binary {
                op: crate::expr::BinOp::Mod,
                lhs: Box::new(Expr::col(1)),
                rhs: Box::new(Expr::lit_i64(2)),
            }],
            &[AggExpr::new(AggFunc::CountStar, Expr::lit_i64(1))],
            out,
        );
        assert_eq!(b.num_rows(), 1); // all quantities are even
        assert_eq!(b.columns[1].i64s(), &[5]);
    }
}
