//! Sorting and top-k.
//!
//! Comparison runs through the typed [`crate::kernels::sort`] kernel —
//! borrowed slices, no [`crate::types::Value`] materialized per
//! comparison. The row-at-a-time original survives as
//! [`crate::reference::row_sort`].

use crate::batch::Batch;
use crate::expr::Expr;
use crate::kernels::sort::{sort_permutation, SortKeyCol};
use crate::schema::SchemaRef;

/// One sort key: an expression and a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression over the input schema.
    pub expr: Expr,
    /// Descending order when true.
    pub descending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            descending: false,
        }
    }
    /// Descending key.
    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            descending: true,
        }
    }
}

/// Sort the concatenation of `batches` by `keys`, optionally keeping only
/// the first `limit` rows. Ties preserve input order (deterministic
/// output for deterministic input — the kernel's index tiebreak is
/// equivalent to a stable sort).
pub fn sort(schema: SchemaRef, batches: &[Batch], keys: &[SortKey], limit: Option<usize>) -> Batch {
    let all = Batch::concat(schema, batches);
    let n = all.num_rows();
    let key_cols: Vec<_> = keys.iter().map(|k| k.expr.eval(&all)).collect();
    let sort_keys: Vec<SortKeyCol<'_>> = keys
        .iter()
        .zip(&key_cols)
        .map(|(k, c)| SortKeyCol::new(c, k.descending))
        .collect();
    let indices = sort_permutation(&sort_keys, n, limit);
    all.take(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnData};
    use crate::schema::Schema;
    use crate::types::DataType;

    fn input() -> (SchemaRef, Vec<Batch>) {
        let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::Str)]);
        let b1 = Batch::new(
            schema.clone(),
            vec![
                Column::from_i64(vec![3, 1]),
                Column::from_str_vec(vec!["c".into(), "a".into()]),
            ],
        );
        let b2 = Batch::new(
            schema.clone(),
            vec![
                Column::from_i64(vec![2, 1]),
                Column::from_str_vec(vec!["b".into(), "a2".into()]),
            ],
        );
        (schema, vec![b1, b2])
    }

    #[test]
    fn ascending_descending() {
        let (s, bs) = input();
        let asc = sort(s.clone(), &bs, &[SortKey::asc(Expr::col(0))], None);
        assert_eq!(asc.columns[0].i64s(), &[1, 1, 2, 3]);
        // Stable: "a" (batch 1) before "a2" (batch 2).
        assert_eq!(asc.columns[1].strs()[0], "a");
        assert_eq!(asc.columns[1].strs()[1], "a2");
        let desc = sort(s, &bs, &[SortKey::desc(Expr::col(0))], None);
        assert_eq!(desc.columns[0].i64s(), &[3, 2, 1, 1]);
    }

    #[test]
    fn top_k() {
        let (s, bs) = input();
        let top2 = sort(s, &bs, &[SortKey::desc(Expr::col(0))], Some(2));
        assert_eq!(top2.num_rows(), 2);
        assert_eq!(top2.columns[0].i64s(), &[3, 2]);
    }

    #[test]
    fn multi_key_and_nulls_last() {
        let schema = Schema::shared(&[("a", DataType::I64), ("b", DataType::I64)]);
        let b = Batch::new(
            schema.clone(),
            vec![
                Column::with_validity(
                    ColumnData::I64(vec![1, 1, 0, 2]),
                    vec![true, true, false, true],
                ),
                Column::from_i64(vec![9, 8, 7, 6]),
            ],
        );
        let out = sort(
            schema,
            &[b],
            &[SortKey::asc(Expr::col(0)), SortKey::asc(Expr::col(1))],
            None,
        );
        // nulls last; within a=1, sorted by b.
        assert_eq!(out.columns[1].i64s(), &[8, 9, 6, 7]);
        assert!(!out.columns[0].is_valid(3));
    }
}
