//! Hash joins.
//!
//! The engine supports the join shapes Cackle's plans use (§7.1.4: all
//! joins are either broadcast or partitioned hash joins — the broadcast vs
//! partitioned distinction lives in the *plan* via exchange modes; this
//! operator only sees a build side and a probe side).
//!
//! Output column order is **probe columns followed by build columns** for
//! `Inner`/`Left`; `Semi`/`Anti` emit probe columns only.

use crate::batch::Batch;
use crate::column::Column;
use crate::expr::Expr;
use crate::kernels::join::{probe_pairs, semi_anti_mask, KeyIndex};
use crate::schema::SchemaRef;

/// Supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Matching pairs only.
    Inner,
    /// Every probe row; build columns null when unmatched
    /// (`probe LEFT OUTER JOIN build`).
    Left,
    /// Probe rows with at least one match (EXISTS).
    Semi,
    /// Probe rows with no match (NOT EXISTS).
    Anti,
}

/// A materialized hash table over the build side, reusable across many
/// probe batches (and across tasks for broadcast joins).
pub struct JoinHashTable {
    /// Typed key index into the concatenated build batch (a direct `i64`
    /// map for single-integer keys, canonical key bytes otherwise).
    index: KeyIndex,
    /// The concatenated build side.
    build: Batch,
}

impl JoinHashTable {
    /// Build the table: concatenate `build` batches and index them by
    /// `build_keys`. Rows with a null key are excluded (SQL join semantics:
    /// null keys match nothing).
    pub fn build(build_schema: SchemaRef, build: &[Batch], build_keys: &[Expr]) -> Self {
        let build = Batch::concat(build_schema, build);
        let key_cols: Vec<Column> = build_keys.iter().map(|e| e.eval(&build)).collect();
        let key_refs: Vec<&Column> = key_cols.iter().collect();
        let index = KeyIndex::build(&key_refs, build.num_rows());
        JoinHashTable { index, build }
    }

    /// Number of indexed build rows.
    pub fn build_rows(&self) -> usize {
        self.build.num_rows()
    }

    /// Probe with one batch. `output` must match the documented column
    /// order for the join type.
    pub fn probe(
        &self,
        probe: &Batch,
        probe_keys: &[Expr],
        join_type: JoinType,
        output: SchemaRef,
    ) -> Batch {
        let key_cols: Vec<Column> = probe_keys.iter().map(|e| e.eval(probe)).collect();
        let key_refs: Vec<&Column> = key_cols.iter().collect();
        let n = probe.num_rows();
        // One key-encoding scratch per probe batch, reused across rows
        // inside the kernels.
        let mut scratch: Vec<u8> = Vec::new();

        match join_type {
            JoinType::Semi | JoinType::Anti => {
                let want_match = join_type == JoinType::Semi;
                let mut mask: Vec<bool> = Vec::with_capacity(n);
                semi_anti_mask(
                    &self.index,
                    &key_refs,
                    n,
                    want_match,
                    &mut mask,
                    &mut scratch,
                );
                let filtered = probe.filter(&mask);
                Batch::new(output, filtered.columns)
            }
            JoinType::Inner | JoinType::Left => {
                // Pre-size to the probe side: the common join shape is
                // roughly one match per probe row, and a left join's
                // unmatched set is bounded by n exactly.
                let mut probe_idx: Vec<usize> = Vec::with_capacity(n);
                let mut build_idx: Vec<usize> = Vec::with_capacity(n);
                // For Left, rows with no match pair with a sentinel; only
                // that variant ever fills this, so only it pre-sizes.
                let mut unmatched: Vec<usize> = match join_type {
                    JoinType::Left => Vec::with_capacity(n),
                    _ => Vec::new(),
                };
                probe_pairs(
                    &self.index,
                    &key_refs,
                    n,
                    &mut probe_idx,
                    &mut build_idx,
                    (join_type == JoinType::Left).then_some(&mut unmatched),
                    &mut scratch,
                );
                let matched_probe = probe.take(&probe_idx);
                let matched_build = self.build.take(&build_idx);
                let mut columns: Vec<Column> = matched_probe
                    .columns
                    .into_iter()
                    .chain(matched_build.columns)
                    .collect();
                if join_type == JoinType::Left && !unmatched.is_empty() {
                    let extra_probe = probe.take(&unmatched);
                    let nulls: Vec<Column> = self
                        .build
                        .schema
                        .fields
                        .iter()
                        .map(|f| Column::nulls(f.dtype, unmatched.len()))
                        .collect();
                    let extras: Vec<Column> =
                        extra_probe.columns.into_iter().chain(nulls).collect();
                    columns = columns
                        .into_iter()
                        .zip(extras)
                        .map(|(a, b)| Column::concat(&[a, b]))
                        .collect();
                }
                Batch::new(output, columns)
            }
        }
    }
}

/// One-shot join over fully materialized inputs.
pub fn hash_join(
    build_schema: SchemaRef,
    build: &[Batch],
    probe: &[Batch],
    build_keys: &[Expr],
    probe_keys: &[Expr],
    join_type: JoinType,
    output: SchemaRef,
) -> Vec<Batch> {
    let table = JoinHashTable::build(build_schema, build, build_keys);
    probe
        .iter()
        .map(|p| table.probe(p, probe_keys, join_type, output.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::{DataType, Value};

    fn orders() -> (SchemaRef, Vec<Batch>) {
        let schema = Schema::shared(&[("o_key", DataType::I64), ("o_cust", DataType::I64)]);
        let b = Batch::new(
            schema.clone(),
            vec![
                Column::from_i64(vec![100, 101, 102, 103]),
                Column::from_i64(vec![1, 2, 1, 3]),
            ],
        );
        (schema, vec![b])
    }

    fn customers() -> (SchemaRef, Vec<Batch>) {
        let schema = Schema::shared(&[("c_key", DataType::I64), ("c_name", DataType::Str)]);
        let b = Batch::new(
            schema.clone(),
            vec![
                Column::from_i64(vec![1, 2, 4]),
                Column::from_str_vec(vec!["alice".into(), "bob".into(), "dana".into()]),
            ],
        );
        (schema, vec![b])
    }

    #[test]
    fn inner_join_matches_pairs() {
        let (cs, cust) = customers();
        let (_, ord) = orders();
        let out = Schema::shared(&[
            ("o_key", DataType::I64),
            ("o_cust", DataType::I64),
            ("c_key", DataType::I64),
            ("c_name", DataType::Str),
        ]);
        // build = customers, probe = orders.
        let res = hash_join(
            cs,
            &cust,
            &ord,
            &[Expr::col(0)],
            &[Expr::col(1)],
            JoinType::Inner,
            out,
        );
        let b = &res[0];
        assert_eq!(b.num_rows(), 3); // orders 100,101,102 match; 103 (cust 3) doesn't
        assert_eq!(b.columns[0].i64s(), &[100, 101, 102]);
        assert_eq!(b.columns[3].strs()[0], "alice");
    }

    #[test]
    fn left_join_fills_nulls() {
        let (cs, cust) = customers();
        let (os, ord) = orders();
        // customers LEFT JOIN orders: probe = customers, build = orders.
        let out = Schema::shared(&[
            ("c_key", DataType::I64),
            ("c_name", DataType::Str),
            ("o_key", DataType::I64),
            ("o_cust", DataType::I64),
        ]);
        let res = hash_join(
            os,
            &ord,
            &cust,
            &[Expr::col(1)],
            &[Expr::col(0)],
            JoinType::Left,
            out,
        );
        let b = &res[0];
        // alice×2 orders + bob×1 + dana (no orders, null-filled) = 4 rows.
        assert_eq!(b.num_rows(), 4);
        let dana_row = (0..4).find(|&i| b.columns[1].strs()[i] == "dana").unwrap();
        assert_eq!(b.columns[2].value(dana_row), Value::Null);
        assert_eq!(b.columns[0].value(dana_row), Value::I64(4));
        let _ = cs;
    }

    #[test]
    fn semi_and_anti() {
        let (cs, cust) = customers();
        let (_, ord) = orders();
        let out_semi = Schema::shared(&[("c_key", DataType::I64), ("c_name", DataType::Str)]);
        // customers WHERE EXISTS order.
        let (os, _) = orders();
        let res = hash_join(
            os.clone(),
            &ord,
            &cust,
            &[Expr::col(1)],
            &[Expr::col(0)],
            JoinType::Semi,
            out_semi.clone(),
        );
        assert_eq!(res[0].num_rows(), 2); // alice, bob
        let res = hash_join(
            os,
            &ord,
            &cust,
            &[Expr::col(1)],
            &[Expr::col(0)],
            JoinType::Anti,
            out_semi,
        );
        assert_eq!(res[0].num_rows(), 1); // dana
        assert_eq!(res[0].columns[1].strs()[0], "dana");
        let _ = cs;
    }

    #[test]
    fn null_keys_never_match() {
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let build = Batch::new(
            schema.clone(),
            vec![Column::with_validity(
                crate::column::ColumnData::I64(vec![1, 0]),
                vec![true, false],
            )],
        );
        let probe = Batch::new(
            schema.clone(),
            vec![Column::with_validity(
                crate::column::ColumnData::I64(vec![1, 0]),
                vec![true, false],
            )],
        );
        let out = Schema::shared(&[("pk", DataType::I64), ("bk", DataType::I64)]);
        let res = hash_join(
            schema,
            &[build],
            &[probe],
            &[Expr::col(0)],
            &[Expr::col(0)],
            JoinType::Inner,
            out,
        );
        // Only the valid 1=1 pair: null keys on either side match nothing.
        assert_eq!(res[0].num_rows(), 1);
        assert_eq!(res[0].columns[0].i64s(), &[1]);
    }

    #[test]
    fn duplicate_build_keys_multiply() {
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let build = Batch::new(schema.clone(), vec![Column::from_i64(vec![5, 5, 5])]);
        let probe = Batch::new(schema.clone(), vec![Column::from_i64(vec![5, 6])]);
        let out = Schema::shared(&[("pk", DataType::I64), ("bk", DataType::I64)]);
        let res = hash_join(
            schema,
            &[build],
            &[probe],
            &[Expr::col(0)],
            &[Expr::col(0)],
            JoinType::Inner,
            out,
        );
        assert_eq!(res[0].num_rows(), 3);
    }

    #[test]
    fn reusable_table_across_probes() {
        let (cs, cust) = customers();
        let table = JoinHashTable::build(cs, &cust, &[Expr::col(0)]);
        assert_eq!(table.build_rows(), 3);
        let (_, ord) = orders();
        let out = Schema::shared(&[
            ("o_key", DataType::I64),
            ("o_cust", DataType::I64),
            ("c_key", DataType::I64),
            ("c_name", DataType::Str),
        ]);
        let r1 = table.probe(&ord[0], &[Expr::col(1)], JoinType::Inner, out.clone());
        let r2 = table.probe(&ord[0], &[Expr::col(1)], JoinType::Inner, out);
        assert_eq!(r1, r2);
    }
}
