//! Relational operators.

pub mod aggregate;
pub mod join;
pub mod sort;
