//! Columnar storage: typed column vectors with optional validity masks.

use crate::types::{DataType, Value};

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// UTF-8 strings.
    Str(Vec<String>),
    /// Dates as days since epoch.
    Date(Vec<i32>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::I64(_) => DataType::I64,
            ColumnData::F64(_) => DataType::F64,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Date(_) => DataType::Date,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }
}

/// A column: typed values plus an optional validity mask (`true` = valid).
/// A missing mask means all rows are valid; TPC-H base data is null-free,
/// so masks appear only downstream of outer joins.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// The typed values. Rows where the validity mask is `false` hold an
    /// arbitrary placeholder.
    pub data: ColumnData,
    /// Per-row validity; `None` means every row is valid.
    pub validity: Option<Vec<bool>>,
}

impl Column {
    /// A fully valid column from raw data.
    pub fn new(data: ColumnData) -> Self {
        Column {
            data,
            validity: None,
        }
    }

    /// A column with explicit validity. Panics if lengths differ. A mask of
    /// all-true is normalized away.
    pub fn with_validity(data: ColumnData, validity: Vec<bool>) -> Self {
        assert_eq!(data.len(), validity.len(), "validity length mismatch");
        if validity.iter().all(|&v| v) {
            Column {
                data,
                validity: None,
            }
        } else {
            Column {
                data,
                validity: Some(validity),
            }
        }
    }

    /// Convenience constructors.
    pub fn from_i64(v: Vec<i64>) -> Self {
        Column::new(ColumnData::I64(v))
    }
    /// Float column.
    pub fn from_f64(v: Vec<f64>) -> Self {
        Column::new(ColumnData::F64(v))
    }
    /// String column.
    pub fn from_str_vec(v: Vec<String>) -> Self {
        Column::new(ColumnData::Str(v))
    }
    /// Date column.
    pub fn from_date(v: Vec<i32>) -> Self {
        Column::new(ColumnData::Date(v))
    }
    /// Bool column.
    pub fn from_bool(v: Vec<bool>) -> Self {
        Column::new(ColumnData::Bool(v))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Is row `i` valid (non-null)?
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|m| m[i])
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |m| m.iter().filter(|&&v| !v).count())
    }

    /// The value at row `i` as an owned [`Value`] (Null if invalid).
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::I64(v) => Value::I64(v[i]),
            ColumnData::F64(v) => Value::F64(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Gather the rows at `indices` into a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        let data = match &self.data {
            ColumnData::I64(v) => ColumnData::I64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::F64(v) => ColumnData::F64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Date(v) => ColumnData::Date(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
        };
        let validity = self
            .validity
            .as_ref()
            .map(|m| indices.iter().map(|&i| m[i]).collect::<Vec<bool>>());
        match validity {
            Some(v) => Column::with_validity(data, v),
            None => Column::new(data),
        }
    }

    /// Copy the contiguous row range `start..end` into a new column.
    /// Equivalent to `take(&(start..end).collect::<Vec<_>>())` without
    /// materializing the index vector: the range maps to one slice copy
    /// per buffer. Panics if `start > end` or `end > len`.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        self.borrowed_slice(start, end).to_column()
    }

    /// Borrow the contiguous row range `start..end` as a
    /// [`ColumnSlice`] view — no buffer is copied or allocated. Panics
    /// if `start > end` or `end > len`.
    pub fn borrowed_slice(&self, start: usize, end: usize) -> ColumnSlice<'_> {
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        ColumnSlice {
            data: &self.data,
            validity: self.validity.as_deref(),
            start,
            len: end - start,
        }
    }

    /// Keep only rows where `mask` is true. Panics if lengths differ.
    pub fn filter(&self, mask: &[bool]) -> Column {
        assert_eq!(mask.len(), self.len(), "filter mask length mismatch");
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        self.take(&indices)
    }

    /// Concatenate columns of the same type into one.
    pub fn concat(parts: &[Column]) -> Column {
        assert!(!parts.is_empty(), "concat of zero columns");
        let dt = parts[0].data_type();
        let total: usize = parts.iter().map(|c| c.len()).sum();
        let any_nulls = parts.iter().any(|c| c.validity.is_some());
        let mut validity = if any_nulls {
            Some(Vec::with_capacity(total))
        } else {
            None
        };
        if let Some(v) = validity.as_mut() {
            for p in parts {
                match &p.validity {
                    Some(m) => v.extend_from_slice(m),
                    None => v.extend(std::iter::repeat_n(true, p.len())),
                }
            }
        }
        macro_rules! cat {
            ($variant:ident, $ty:ty) => {{
                let mut out: Vec<$ty> = Vec::with_capacity(total);
                for p in parts {
                    match &p.data {
                        ColumnData::$variant(v) => out.extend_from_slice(v),
                        other => panic!("concat type mismatch: {dt} vs {}", other.data_type()),
                    }
                }
                ColumnData::$variant(out)
            }};
        }
        let data = match dt {
            DataType::I64 => cat!(I64, i64),
            DataType::F64 => cat!(F64, f64),
            DataType::Str => cat!(Str, String),
            DataType::Date => cat!(Date, i32),
            DataType::Bool => cat!(Bool, bool),
        };
        match validity {
            Some(v) => Column::with_validity(data, v),
            None => Column::new(data),
        }
    }

    /// An all-null column of `len` rows and the given type.
    pub fn nulls(dtype: DataType, len: usize) -> Column {
        let data = match dtype {
            DataType::I64 => ColumnData::I64(vec![0; len]),
            DataType::F64 => ColumnData::F64(vec![0.0; len]),
            DataType::Str => ColumnData::Str(vec![String::new(); len]),
            DataType::Date => ColumnData::Date(vec![0; len]),
            DataType::Bool => ColumnData::Bool(vec![false; len]),
        };
        if len == 0 {
            Column::new(data)
        } else {
            Column {
                data,
                validity: Some(vec![false; len]),
            }
        }
    }

    /// Slices of the underlying typed vectors (panicking accessors used by
    /// vectorized kernels that have already checked the type).
    pub fn i64s(&self) -> &[i64] {
        match &self.data {
            ColumnData::I64(v) => v,
            other => panic!("expected i64 column, got {}", other.data_type()),
        }
    }
    /// f64 slice accessor.
    pub fn f64s(&self) -> &[f64] {
        match &self.data {
            ColumnData::F64(v) => v,
            other => panic!("expected f64 column, got {}", other.data_type()),
        }
    }
    /// String slice accessor.
    pub fn strs(&self) -> &[String] {
        match &self.data {
            ColumnData::Str(v) => v,
            other => panic!("expected str column, got {}", other.data_type()),
        }
    }
    /// Date slice accessor.
    pub fn dates(&self) -> &[i32] {
        match &self.data {
            ColumnData::Date(v) => v,
            other => panic!("expected date column, got {}", other.data_type()),
        }
    }
    /// Bool slice accessor.
    pub fn bools(&self) -> &[bool] {
        match &self.data {
            ColumnData::Bool(v) => v,
            other => panic!("expected bool column, got {}", other.data_type()),
        }
    }
}

/// A borrowed window over a column's rows: the non-allocating
/// counterpart of [`Column::slice`]. Row indices are relative to the
/// window start; nothing is copied until [`ColumnSlice::to_column`]
/// materializes the window.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSlice<'a> {
    data: &'a ColumnData,
    validity: Option<&'a [bool]>,
    start: usize,
    len: usize,
}

impl ColumnSlice<'_> {
    /// Rows in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element type of the underlying column.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Validity of window row `i`.
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "row {i} out of window of {}", self.len);
        self.validity.is_none_or(|m| m[self.start + i])
    }

    /// The value at window row `i` as an owned [`Value`] (Null if invalid).
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        let i = self.start + i;
        match self.data {
            ColumnData::I64(v) => Value::I64(v[i]),
            ColumnData::F64(v) => Value::F64(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Render window row `i` into `out` exactly as [`Value`]'s `Display`
    /// would, without materializing a `Value` (in particular, no string
    /// clone per cell).
    pub fn write_value(&self, out: &mut String, i: usize) {
        use std::fmt::Write as _;
        if !self.is_valid(i) {
            out.push_str("NULL");
            return;
        }
        let i = self.start + i;
        match self.data {
            ColumnData::I64(v) => {
                let _ = write!(out, "{}", v[i]);
            }
            ColumnData::F64(v) => {
                let _ = write!(out, "{:.4}", v[i]);
            }
            ColumnData::Str(v) => out.push_str(&v[i]),
            ColumnData::Date(v) => {
                let (y, m, d) = crate::types::date::to_ymd(v[i]);
                let _ = write!(out, "{y:04}-{m:02}-{d:02}");
            }
            ColumnData::Bool(v) => {
                let _ = write!(out, "{}", v[i]);
            }
        }
    }

    /// Materialize the window as an owned [`Column`]: one slice copy per
    /// buffer. An all-valid window of a masked column normalizes to
    /// `validity: None`, exactly as [`Column::take`] does.
    pub fn to_column(&self) -> Column {
        let (start, end) = (self.start, self.start + self.len);
        let data = match self.data {
            ColumnData::I64(v) => ColumnData::I64(v[start..end].to_vec()),
            ColumnData::F64(v) => ColumnData::F64(v[start..end].to_vec()),
            ColumnData::Str(v) => ColumnData::Str(v[start..end].to_vec()),
            ColumnData::Date(v) => ColumnData::Date(v[start..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
        };
        match self.validity {
            Some(m) => Column::with_validity(data, m[start..end].to_vec()),
            None => Column::new(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_validity() {
        let c = Column::with_validity(ColumnData::I64(vec![1, 2, 3]), vec![true, false, true]);
        assert_eq!(c.value(0), Value::I64(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.null_count(), 1);
        assert!(!c.is_valid(1));
    }

    #[test]
    fn all_true_mask_normalizes_away() {
        let c = Column::with_validity(ColumnData::I64(vec![1, 2]), vec![true, true]);
        assert!(c.validity.is_none());
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn take_and_filter() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 0, 3]);
        assert_eq!(t.i64s(), &[40, 10, 40]);
        let f = c.filter(&[true, false, false, true]);
        assert_eq!(f.i64s(), &[10, 40]);
    }

    #[test]
    fn take_preserves_validity() {
        let c = Column::with_validity(
            ColumnData::Str(vec!["a".into(), "b".into()]),
            vec![false, true],
        );
        let t = c.take(&[1, 0, 1]);
        assert_eq!(t.value(0), Value::Str("b".into()));
        assert_eq!(t.value(1), Value::Null);
        assert_eq!(t.null_count(), 1);
    }

    #[test]
    fn concat_mixed_validity() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::with_validity(ColumnData::I64(vec![3, 4]), vec![false, true]);
        let c = Column::concat(&[a, b]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(2), Value::Null);
        assert_eq!(c.value(3), Value::I64(4));
    }

    #[test]
    fn nulls_column() {
        let c = Column::nulls(DataType::F64, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 3);
        assert_eq!(c.data_type(), DataType::F64);
    }

    #[test]
    #[should_panic(expected = "expected i64 column")]
    fn wrong_accessor_panics() {
        Column::from_f64(vec![1.0]).i64s();
    }

    #[test]
    fn borrowed_slice_windows_without_copying() {
        let c = Column::with_validity(
            ColumnData::I64(vec![10, 20, 30, 40]),
            vec![true, false, true, true],
        );
        let s = c.borrowed_slice(1, 4);
        assert_eq!(s.len(), 3);
        assert!(!s.is_valid(0)); // window row 0 = column row 1
        assert_eq!(s.value(1), Value::I64(30));
        assert_eq!(s.to_column(), c.slice(1, 4));
        // All-valid window normalizes validity away on materialization.
        assert!(c.borrowed_slice(2, 4).to_column().validity.is_none());
    }

    #[test]
    fn write_value_matches_value_display() {
        let cols = [
            Column::with_validity(ColumnData::I64(vec![7, 0]), vec![true, false]),
            Column::from_f64(vec![1.5, 2.0]),
            Column::from_str_vec(vec!["ab".into(), "cd".into()]),
            Column::new(ColumnData::Date(vec![0, 10_000])),
            Column::new(ColumnData::Bool(vec![true, false])),
        ];
        for c in &cols {
            let s = c.borrowed_slice(0, c.len());
            for i in 0..c.len() {
                let mut got = String::new();
                s.write_value(&mut got, i);
                assert_eq!(got, c.value(i).to_string(), "col {} row {i}", c.data_type());
            }
        }
    }
}
