//! Scalar expressions evaluated vectorized over batches.
//!
//! Expressions reference input columns by ordinal (plan builders resolve
//! names against the stage's input schema at plan-construction time).
//! Null semantics follow SQL: arithmetic and comparisons propagate null,
//! `AND`/`OR` use Kleene three-valued logic, and filters keep only rows
//! whose predicate is valid *and* true.

use crate::batch::Batch;
use crate::column::{Column, ColumnData};
use crate::kernels::scalar::{binary_col_scalar, cmp_scalar_mask_into, like_mask};
use crate::types::{date, DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (numeric, or date + days).
    Add,
    /// Subtraction (numeric, or date - days).
    Sub,
    /// Multiplication.
    Mul,
    /// Division; always produces f64.
    Div,
    /// Modulo on integers.
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Kleene AND.
    And,
    /// Kleene OR.
    Or,
}

/// Restricted LIKE patterns covering every pattern in TPC-H.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LikePattern {
    /// `'prefix%'`
    Prefix(String),
    /// `'%suffix'`
    Suffix(String),
    /// `'%needle%'`
    Contains(String),
    /// `'%a%b%'` — all needles appear in order.
    ContainsInOrder(Vec<String>),
}

impl LikePattern {
    /// Match a string against the pattern.
    pub fn matches(&self, s: &str) -> bool {
        match self {
            LikePattern::Prefix(p) => s.starts_with(p.as_str()),
            LikePattern::Suffix(p) => s.ends_with(p.as_str()),
            LikePattern::Contains(p) => s.contains(p.as_str()),
            LikePattern::ContainsInOrder(parts) => {
                let mut rest = s;
                for p in parts {
                    match rest.find(p.as_str()) {
                        Some(pos) => rest = &rest[pos + p.len()..],
                        None => return false,
                    }
                }
                true
            }
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by ordinal.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation (null stays null).
    Not(Box<Expr>),
    /// True where the operand is null (never null itself).
    IsNull(Box<Expr>),
    /// Searched CASE: first branch whose condition is true wins.
    Case {
        /// `(condition, result)` branches.
        branches: Vec<(Expr, Expr)>,
        /// Value when no branch matches (null if absent).
        else_expr: Option<Box<Expr>>,
    },
    /// LIKE against a restricted pattern.
    Like {
        /// String operand.
        input: Box<Expr>,
        /// The pattern.
        pattern: LikePattern,
        /// Invert the result (NOT LIKE).
        negated: bool,
    },
    /// `value IN (list)` over literal values.
    InList {
        /// Probe operand.
        input: Box<Expr>,
        /// The literal list.
        list: Vec<Value>,
    },
    /// EXTRACT(YEAR FROM date) as i64.
    ExtractYear(Box<Expr>),
    /// SUBSTRING(input FROM start FOR len), 1-based as in SQL.
    Substr {
        /// String operand.
        input: Box<Expr>,
        /// 1-based start position.
        start: usize,
        /// Length in characters.
        len: usize,
    },
    /// First non-null operand.
    Coalesce(Vec<Expr>),
    /// Cast to a type (only numeric widenings are supported).
    Cast {
        /// Operand.
        input: Box<Expr>,
        /// Target type.
        to: DataType,
    },
}

#[allow(clippy::should_implement_trait)] // the DSL mirrors SQL operator names
impl Expr {
    /// Shorthand: input column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }
    /// Shorthand: i64 literal.
    pub fn lit_i64(v: i64) -> Expr {
        Expr::Lit(Value::I64(v))
    }
    /// Shorthand: f64 literal.
    pub fn lit_f64(v: f64) -> Expr {
        Expr::Lit(Value::F64(v))
    }
    /// Shorthand: string literal.
    pub fn lit_str(v: &str) -> Expr {
        Expr::Lit(Value::Str(v.to_string()))
    }
    /// Shorthand: date literal from `YYYY-MM-DD`.
    pub fn lit_date(v: &str) -> Expr {
        Expr::Lit(Value::Date(date::parse(v)))
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }
    /// `self <> rhs`
    pub fn neq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Neq, self, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }
    /// `self <= rhs`
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::LtEq, self, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }
    /// `self >= rhs`
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::GtEq, self, rhs)
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    /// Evaluate over a batch, producing a column of `batch.num_rows()` rows.
    pub fn eval(&self, batch: &Batch) -> Column {
        let n = batch.num_rows();
        match self {
            Expr::Col(i) => batch.columns[*i].clone(),
            Expr::Lit(v) => broadcast_literal(v, n),
            Expr::Binary { op, lhs, rhs } => match eval_binary_scalar_fast(*op, lhs, rhs, batch) {
                Some(col) => col,
                None => {
                    let l = lhs.eval(batch);
                    let r = rhs.eval(batch);
                    eval_binary(*op, &l, &r)
                }
            },
            Expr::Not(e) => {
                let c = e.eval(batch);
                let vals = c.bools().iter().map(|b| !b).collect();
                Column {
                    data: ColumnData::Bool(vals),
                    validity: c.validity.clone(),
                }
            }
            Expr::IsNull(e) => {
                let c = e.eval(batch);
                let vals = (0..n).map(|i| !c.is_valid(i)).collect();
                Column::from_bool(vals)
            }
            Expr::Case {
                branches,
                else_expr,
            } => eval_case(batch, branches, else_expr),
            Expr::Like {
                input,
                pattern,
                negated,
            } => {
                let c = input.eval(batch);
                let vals = like_mask(c.strs(), pattern, *negated);
                Column {
                    data: ColumnData::Bool(vals),
                    validity: c.validity.clone(),
                }
            }
            Expr::InList { input, list } => {
                let c = input.eval(batch);
                let vals = (0..n)
                    .map(|i| {
                        let v = c.value(i);
                        list.iter()
                            .any(|item| v.sql_cmp(item) == Some(std::cmp::Ordering::Equal))
                    })
                    .collect();
                Column {
                    data: ColumnData::Bool(vals),
                    validity: c.validity.clone(),
                }
            }
            Expr::ExtractYear(e) => {
                let c = e.eval(batch);
                let vals = c.dates().iter().map(|&d| date::year_of(d) as i64).collect();
                Column {
                    data: ColumnData::I64(vals),
                    validity: c.validity.clone(),
                }
            }
            Expr::Substr { input, start, len } => {
                let c = input.eval(batch);
                let vals = c
                    .strs()
                    .iter()
                    .map(|s| {
                        let from = (start - 1).min(s.len());
                        let to = (from + len).min(s.len());
                        s[from..to].to_string()
                    })
                    .collect();
                Column {
                    data: ColumnData::Str(vals),
                    validity: c.validity.clone(),
                }
            }
            Expr::Coalesce(exprs) => {
                let mut rest = exprs.iter().map(|e| e.eval(batch));
                let first = rest.next().expect("COALESCE of nothing");
                match first.validity {
                    // Fully valid already: no alternative can contribute.
                    None => first,
                    Some(mut validity) => {
                        // Fill nulls in place; one data/validity pair is
                        // threaded through every alternative instead of
                        // being re-cloned per column.
                        let mut data = first.data;
                        for alt in rest {
                            if validity.iter().all(|&v| v) {
                                break;
                            }
                            for i in 0..n {
                                if !validity[i] && alt.is_valid(i) {
                                    copy_row(&mut data, &alt, i);
                                    validity[i] = true;
                                }
                            }
                        }
                        Column::with_validity(data, validity)
                    }
                }
            }
            Expr::Cast { input, to } => {
                let c = input.eval(batch);
                cast_column(&c, *to)
            }
        }
    }
}

/// The `column ⊕ literal` fast path: evaluate the column side only and
/// apply the scalar through [`binary_col_scalar`], skipping the literal
/// broadcast. Returns `None` when the shape doesn't qualify — Kleene
/// ops (which need both validity masks), literal ⊕ literal, and null
/// literals (whose null-propagation bytes come from the broadcast
/// path) — and the caller falls back to full materialization.
fn eval_binary_scalar_fast(op: BinOp, lhs: &Expr, rhs: &Expr, batch: &Batch) -> Option<Column> {
    if matches!(op, BinOp::And | BinOp::Or) {
        return None;
    }
    let (col_expr, scalar, scalar_is_lhs) = match (lhs, rhs) {
        (Expr::Lit(_), Expr::Lit(_)) => return None,
        (e, Expr::Lit(v)) => (e, v, false),
        (Expr::Lit(v), e) => (e, v, true),
        _ => return None,
    };
    if matches!(scalar, Value::Null) {
        return None;
    }
    let col = col_expr.eval(batch);
    Some(binary_col_scalar(op, &col, scalar, scalar_is_lhs))
}

fn copy_row(dst: &mut ColumnData, src: &Column, i: usize) {
    match (dst, &src.data) {
        (ColumnData::I64(d), ColumnData::I64(s)) => d[i] = s[i],
        (ColumnData::F64(d), ColumnData::F64(s)) => d[i] = s[i],
        (ColumnData::Str(d), ColumnData::Str(s)) => d[i] = s[i].clone(),
        (ColumnData::Date(d), ColumnData::Date(s)) => d[i] = s[i],
        (ColumnData::Bool(d), ColumnData::Bool(s)) => d[i] = s[i],
        (d, s) => panic!(
            "COALESCE type mismatch {} vs {}",
            d.data_type(),
            s.data_type()
        ),
    }
}

/// Materialize a literal as a full column. Only top-level literal
/// projections and the fallback paths above still pay for this —
/// `column ⊕ literal` goes through [`eval_binary_scalar_fast`] and CASE
/// literal branches copy the scalar directly, so no per-row `String`
/// clones happen on the hot paths.
fn broadcast_literal(v: &Value, n: usize) -> Column {
    match v {
        Value::Null => Column::nulls(DataType::I64, n),
        Value::I64(x) => Column::from_i64(vec![*x; n]),
        Value::F64(x) => Column::from_f64(vec![*x; n]),
        Value::Str(x) => Column::from_str_vec(vec![x.clone(); n]),
        Value::Date(x) => Column::from_date(vec![*x; n]),
        Value::Bool(x) => Column::from_bool(vec![*x; n]),
    }
}

fn merged_validity(l: &Column, r: &Column) -> Option<Vec<bool>> {
    match (&l.validity, &r.validity) {
        (None, None) => None,
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (Some(a), Some(b)) => Some(a.iter().zip(b).map(|(x, y)| *x && *y).collect()),
    }
}

fn eval_binary(op: BinOp, l: &Column, r: &Column) -> Column {
    use BinOp::*;
    match op {
        And | Or => eval_kleene(op, l, r),
        Add | Sub | Mul | Div | Mod => eval_arith(op, l, r),
        Eq | Neq | Lt | LtEq | Gt | GtEq => eval_cmp(op, l, r),
    }
}

fn eval_kleene(op: BinOp, l: &Column, r: &Column) -> Column {
    let lb = l.bools();
    let rb = r.bools();
    let n = lb.len();
    let mut vals = Vec::with_capacity(n);
    let mut validity = Vec::with_capacity(n);
    for i in 0..n {
        let lv = l.is_valid(i);
        let rv = r.is_valid(i);
        // Kleene: false AND x = false; true OR x = true, even with nulls.
        let (out, valid) = match op {
            BinOp::And => {
                if (lv && !lb[i]) || (rv && !rb[i]) {
                    (false, true)
                } else if lv && rv {
                    (lb[i] && rb[i], true)
                } else {
                    (false, false)
                }
            }
            BinOp::Or => {
                if (lv && lb[i]) || (rv && rb[i]) {
                    (true, true)
                } else if lv && rv {
                    (lb[i] || rb[i], true)
                } else {
                    (false, false)
                }
            }
            _ => unreachable!(),
        };
        vals.push(out);
        validity.push(valid);
    }
    Column::with_validity(ColumnData::Bool(vals), validity)
}

fn eval_arith(op: BinOp, l: &Column, r: &Column) -> Column {
    let validity = merged_validity(l, r);
    let data = match (&l.data, &r.data, op) {
        // Division always goes to f64, SQL-decimal style.
        (ColumnData::I64(a), ColumnData::I64(b), BinOp::Div) => ColumnData::F64(
            a.iter()
                .zip(b)
                .map(|(x, y)| *x as f64 / *y as f64)
                .collect(),
        ),
        (ColumnData::I64(a), ColumnData::I64(b), BinOp::Mod) => {
            ColumnData::I64(a.iter().zip(b).map(|(x, y)| x % y).collect())
        }
        (ColumnData::I64(a), ColumnData::I64(b), _) => ColumnData::I64(
            a.iter()
                .zip(b)
                .map(|(x, y)| apply_i64(op, *x, *y))
                .collect(),
        ),
        (ColumnData::Date(a), ColumnData::I64(b), BinOp::Add) => {
            ColumnData::Date(a.iter().zip(b).map(|(x, y)| x + *y as i32).collect())
        }
        (ColumnData::Date(a), ColumnData::I64(b), BinOp::Sub) => {
            ColumnData::Date(a.iter().zip(b).map(|(x, y)| x - *y as i32).collect())
        }
        (a, b, _) => {
            // Everything else coerces to f64.
            let af = to_f64_vec(a);
            let bf = to_f64_vec(b);
            ColumnData::F64(
                af.iter()
                    .zip(&bf)
                    .map(|(x, y)| apply_f64(op, *x, *y))
                    .collect(),
            )
        }
    };
    match validity {
        Some(v) => Column::with_validity(data, v),
        None => Column::new(data),
    }
}

fn apply_i64(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        _ => unreachable!(),
    }
}

fn apply_f64(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Mod => x % y,
        _ => unreachable!(),
    }
}

fn to_f64_vec(d: &ColumnData) -> Vec<f64> {
    match d {
        ColumnData::I64(v) => v.iter().map(|&x| x as f64).collect(),
        ColumnData::F64(v) => v.clone(),
        ColumnData::Date(v) => v.iter().map(|&x| x as f64).collect(),
        other => panic!("cannot coerce {} to f64", other.data_type()),
    }
}

fn eval_cmp(op: BinOp, l: &Column, r: &Column) -> Column {
    use std::cmp::Ordering;
    let n = l.len();
    let validity = merged_validity(l, r);
    let want = |o: Ordering| match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::Neq => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::LtEq => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::GtEq => o != Ordering::Less,
        _ => unreachable!(),
    };
    let vals: Vec<bool> = match (&l.data, &r.data) {
        (ColumnData::I64(a), ColumnData::I64(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (ColumnData::Date(a), ColumnData::Date(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (ColumnData::F64(a), ColumnData::F64(b)) => a
            .iter()
            .zip(b)
            .map(|(x, y)| x.partial_cmp(y).is_some_and(&want))
            .collect(),
        (ColumnData::Str(a), ColumnData::Str(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (ColumnData::Bool(a), ColumnData::Bool(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (a, b) => {
            let af = to_f64_vec(a);
            let bf = to_f64_vec(b);
            af.iter()
                .zip(&bf)
                .map(|(x, y)| x.partial_cmp(y).is_some_and(&want))
                .collect()
        }
    };
    let _ = n;
    match validity {
        Some(v) => Column::with_validity(ColumnData::Bool(vals), v),
        None => Column::new(ColumnData::Bool(vals)),
    }
}

/// A CASE branch result (or the ELSE): literal branches stay a single
/// scalar — the legacy evaluator broadcast `else 0.0` into a fresh
/// column per batch (a per-row `String` clone for string literals).
enum CaseSrc {
    /// A computed result column.
    Col(Column),
    /// A literal result, copied directly where its branch wins.
    Scalar(Value),
}

impl CaseSrc {
    fn from_expr(e: &Expr, batch: &Batch) -> CaseSrc {
        match e {
            Expr::Lit(v) => CaseSrc::Scalar(v.clone()),
            other => CaseSrc::Col(other.eval(batch)),
        }
    }

    fn row_is_valid(&self, i: usize) -> bool {
        match self {
            CaseSrc::Col(c) => c.is_valid(i),
            CaseSrc::Scalar(v) => !v.is_null(),
        }
    }

    /// Placeholder output storage of this source's type (a null literal
    /// protos as I64, matching `broadcast_literal`).
    fn proto_data(&self, n: usize) -> ColumnData {
        let dtype = match self {
            CaseSrc::Col(c) => c.data_type(),
            CaseSrc::Scalar(v) => v.data_type().unwrap_or(DataType::I64),
        };
        match dtype {
            DataType::I64 => ColumnData::I64(vec![0; n]),
            DataType::F64 => ColumnData::F64(vec![0.0; n]),
            DataType::Str => ColumnData::Str(vec![String::new(); n]),
            DataType::Date => ColumnData::Date(vec![0; n]),
            DataType::Bool => ColumnData::Bool(vec![false; n]),
        }
    }

    fn copy_into(&self, dst: &mut ColumnData, i: usize) {
        match self {
            CaseSrc::Col(c) => copy_row(dst, c, i),
            CaseSrc::Scalar(v) => match (dst, v) {
                (ColumnData::I64(d), Value::I64(s)) => d[i] = *s,
                (ColumnData::F64(d), Value::F64(s)) => d[i] = *s,
                (ColumnData::Str(d), Value::Str(s)) => d[i].clone_from(s),
                (ColumnData::Date(d), Value::Date(s)) => d[i] = *s,
                (ColumnData::Bool(d), Value::Bool(s)) => d[i] = *s,
                (d, s) => panic!("CASE type mismatch {} vs {s:?}", d.data_type()),
            },
        }
    }
}

fn eval_case(batch: &Batch, branches: &[(Expr, Expr)], else_expr: &Option<Box<Expr>>) -> Column {
    let n = batch.num_rows();
    let results: Vec<(Column, CaseSrc)> = branches
        .iter()
        .map(|(c, r)| (c.eval(batch), CaseSrc::from_expr(r, batch)))
        .collect();
    let else_src = else_expr.as_ref().map(|e| CaseSrc::from_expr(e, batch));
    // Determine output type from the first result.
    let proto = &results.first().expect("CASE with no branches").1;
    let mut data = proto.proto_data(n);
    let mut validity = vec![false; n];
    #[allow(clippy::needless_range_loop)] // indexes three parallel structures
    for i in 0..n {
        let mut matched = false;
        for (cond, res) in &results {
            if cond.is_valid(i) && cond.bools()[i] {
                if res.row_is_valid(i) {
                    res.copy_into(&mut data, i);
                    validity[i] = true;
                }
                matched = true;
                break;
            }
        }
        if !matched {
            if let Some(e) = &else_src {
                if e.row_is_valid(i) {
                    e.copy_into(&mut data, i);
                    validity[i] = true;
                }
            }
        }
    }
    Column::with_validity(data, validity)
}

fn cast_column(c: &Column, to: DataType) -> Column {
    if c.data_type() == to {
        return c.clone();
    }
    let data = match (&c.data, to) {
        (ColumnData::I64(v), DataType::F64) => {
            ColumnData::F64(v.iter().map(|&x| x as f64).collect())
        }
        (ColumnData::F64(v), DataType::I64) => {
            ColumnData::I64(v.iter().map(|&x| x as i64).collect())
        }
        (ColumnData::Date(v), DataType::I64) => {
            ColumnData::I64(v.iter().map(|&x| x as i64).collect())
        }
        (ColumnData::Bool(v), DataType::I64) => {
            ColumnData::I64(v.iter().map(|&x| x as i64).collect())
        }
        (from, to) => panic!("unsupported cast {} -> {to}", from.data_type()),
    };
    Column {
        data,
        validity: c.validity.clone(),
    }
}

/// Evaluate a predicate over a batch and return the keep-mask:
/// valid AND true.
pub fn predicate_mask(pred: &Expr, batch: &Batch) -> Vec<bool> {
    let mut mask = Vec::with_capacity(batch.num_rows());
    predicate_mask_into(pred, batch, &mut mask);
    mask
}

/// [`predicate_mask`] into a reused buffer (cleared first) — the pooled
/// twin used by the task executor's scan path.
pub fn predicate_mask_into(pred: &Expr, batch: &Batch, mask: &mut Vec<bool>) {
    mask.clear();
    fill_pred_mask(pred, batch, mask);
}

/// Append the keep-mask (`valid AND true` per row) of `pred` to `mask`,
/// which the caller hands in empty.
///
/// Conjunctions and disjunctions fold the operand masks elementwise
/// instead of materializing the Kleene Bool column: under the
/// null-folds-to-false convention, `mask(a AND b) = mask(a) & mask(b)`
/// (the result is true-and-valid only when both sides are) and
/// `mask(a OR b) = mask(a) | mask(b)` (a true side forces true even
/// against null). Comparison-vs-literal leaves — the typical filter
/// shape — fill the mask directly through [`cmp_scalar_mask_into`];
/// everything else evaluates normally and folds.
fn fill_pred_mask(pred: &Expr, batch: &Batch, mask: &mut Vec<bool>) {
    if let Expr::Binary { op, lhs, rhs } = pred {
        if matches!(op, BinOp::And | BinOp::Or) {
            fill_pred_mask(lhs, batch, mask);
            let mut rhs_mask = Vec::with_capacity(batch.num_rows());
            fill_pred_mask(rhs, batch, &mut rhs_mask);
            match op {
                BinOp::And => mask.iter_mut().zip(&rhs_mask).for_each(|(m, r)| *m &= r),
                _ => mask.iter_mut().zip(&rhs_mask).for_each(|(m, r)| *m |= r),
            }
            return;
        }
        if matches!(
            op,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        ) {
            let side = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Lit(_), Expr::Lit(_)) => None,
                (e, Expr::Lit(v)) if !v.is_null() => Some((e, v, false)),
                (Expr::Lit(v), e) if !v.is_null() => Some((e, v, true)),
                _ => None,
            };
            if let Some((col_expr, scalar, scalar_is_lhs)) = side {
                let c = col_expr.eval(batch);
                cmp_scalar_mask_into(*op, &c, scalar, scalar_is_lhs, mask);
                return;
            }
        }
    }
    let c = pred.eval(batch);
    let bools = c.bools();
    match &c.validity {
        None => mask.extend_from_slice(bools),
        Some(m) => mask.extend(m.iter().zip(bools).map(|(v, b)| *v && *b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn batch() -> Batch {
        let schema = Schema::shared(&[
            ("k", DataType::I64),
            ("x", DataType::F64),
            ("s", DataType::Str),
            ("d", DataType::Date),
        ]);
        Batch::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3, 4]),
                Column::from_f64(vec![0.5, 1.0, 1.5, 2.0]),
                Column::from_str_vec(vec![
                    "PROMO ANODIZED".into(),
                    "STANDARD BRASS".into(),
                    "PROMO BURNISHED".into(),
                    "ECONOMY".into(),
                ]),
                Column::from_date(vec![
                    date::parse("1994-01-01"),
                    date::parse("1995-06-15"),
                    date::parse("1996-12-31"),
                    date::parse("1997-03-01"),
                ]),
            ],
        )
    }

    #[test]
    fn arithmetic_types() {
        let b = batch();
        let c = Expr::col(0).add(Expr::lit_i64(10)).eval(&b);
        assert_eq!(c.i64s(), &[11, 12, 13, 14]);
        let c = Expr::col(0).mul(Expr::col(1)).eval(&b);
        assert_eq!(c.f64s(), &[0.5, 2.0, 4.5, 8.0]);
        let c = Expr::col(0).div(Expr::lit_i64(2)).eval(&b);
        assert_eq!(c.f64s(), &[0.5, 1.0, 1.5, 2.0]);
        // TPC-H Q1 style: x * (1 - x).
        let one_minus = Expr::lit_f64(1.0).sub(Expr::col(1));
        let c = Expr::col(1).mul(one_minus).eval(&b);
        assert_eq!(c.f64s()[0], 0.25);
    }

    #[test]
    fn date_comparison_and_arith() {
        let b = batch();
        let pred = Expr::col(3).lt(Expr::lit_date("1996-01-01"));
        let mask = predicate_mask(&pred, &b);
        assert_eq!(mask, vec![true, true, false, false]);
        let shifted = Expr::col(3).add(Expr::lit_i64(90)).eval(&b);
        assert_eq!(shifted.dates()[0], date::parse("1994-04-01"));
    }

    #[test]
    fn like_patterns() {
        assert!(LikePattern::Prefix("PROMO".into()).matches("PROMO BRASS"));
        assert!(!LikePattern::Prefix("PROMO".into()).matches("XPROMO"));
        assert!(LikePattern::Suffix("BRASS".into()).matches("LARGE BRASS"));
        assert!(LikePattern::Contains("green".into()).matches("dim green lace"));
        let p = LikePattern::ContainsInOrder(vec!["a".into(), "b".into()]);
        assert!(p.matches("xaxbx"));
        assert!(!p.matches("xbxax"));
        let b = batch();
        let e = Expr::Like {
            input: Box::new(Expr::col(2)),
            pattern: LikePattern::Prefix("PROMO".into()),
            negated: false,
        };
        assert_eq!(e.eval(&b).bools(), &[true, false, true, false]);
    }

    #[test]
    fn in_list_and_case() {
        let b = batch();
        let e = Expr::InList {
            input: Box::new(Expr::col(0)),
            list: vec![Value::I64(2), Value::I64(4)],
        };
        assert_eq!(e.eval(&b).bools(), &[false, true, false, true]);

        // CASE WHEN s LIKE 'PROMO%' THEN x ELSE 0.0 END (the Q14 pattern).
        let e = Expr::Case {
            branches: vec![(
                Expr::Like {
                    input: Box::new(Expr::col(2)),
                    pattern: LikePattern::Prefix("PROMO".into()),
                    negated: false,
                },
                Expr::col(1),
            )],
            else_expr: Some(Box::new(Expr::lit_f64(0.0))),
        };
        let c = e.eval(&b);
        assert_eq!(c.f64s(), &[0.5, 0.0, 1.5, 0.0]);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn kleene_logic_with_nulls() {
        let schema = Schema::shared(&[("a", DataType::Bool), ("b", DataType::Bool)]);
        let b = Batch::new(
            schema,
            vec![
                Column::with_validity(
                    ColumnData::Bool(vec![true, false, false, true]),
                    vec![true, true, false, false],
                ),
                Column::from_bool(vec![false, true, false, true]),
            ],
        );
        // a AND b: null AND false = false; null AND true = null.
        let c = Expr::col(0).and(Expr::col(1)).eval(&b);
        assert!(c.is_valid(0) && !c.bools()[0]);
        assert!(c.is_valid(1) && !c.bools()[1]);
        assert!(c.is_valid(2) && !c.bools()[2]); // null AND false = false
        assert!(!c.is_valid(3)); // null AND true = null
                                 // a OR b: null OR true = true; null OR false = null.
        let c = Expr::col(0).or(Expr::col(1)).eval(&b);
        assert!(c.is_valid(3) && c.bools()[3]);
        assert!(!c.is_valid(2));
    }

    #[test]
    fn extract_year_substr_coalesce() {
        let b = batch();
        let y = Expr::ExtractYear(Box::new(Expr::col(3))).eval(&b);
        assert_eq!(y.i64s(), &[1994, 1995, 1996, 1997]);
        let s = Expr::Substr {
            input: Box::new(Expr::col(2)),
            start: 1,
            len: 5,
        }
        .eval(&b);
        assert_eq!(s.strs()[0], "PROMO");
        assert_eq!(s.strs()[3], "ECONO");

        let schema = Schema::shared(&[("a", DataType::I64)]);
        let nb = Batch::new(
            schema,
            vec![Column::with_validity(
                ColumnData::I64(vec![7, 0]),
                vec![true, false],
            )],
        );
        let c = Expr::Coalesce(vec![Expr::col(0), Expr::lit_i64(-1)]).eval(&nb);
        assert_eq!(c.i64s(), &[7, -1]);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn null_propagation_in_arith_and_cmp() {
        let schema = Schema::shared(&[("a", DataType::I64)]);
        let b = Batch::new(
            schema,
            vec![Column::with_validity(
                ColumnData::I64(vec![1, 2]),
                vec![false, true],
            )],
        );
        let c = Expr::col(0).add(Expr::lit_i64(1)).eval(&b);
        assert!(!c.is_valid(0));
        assert_eq!(c.value(1), Value::I64(3));
        let m = predicate_mask(&Expr::col(0).gt(Expr::lit_i64(0)), &b);
        assert_eq!(m, vec![false, true]); // null comparison filtered out
        let isn = Expr::IsNull(Box::new(Expr::col(0))).eval(&b);
        assert_eq!(isn.bools(), &[true, false]);
    }

    #[test]
    fn cast_widening() {
        let b = batch();
        let c = Expr::Cast {
            input: Box::new(Expr::col(0)),
            to: DataType::F64,
        }
        .eval(&b);
        assert_eq!(c.f64s(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
