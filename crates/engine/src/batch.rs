//! Record batches: the unit of vectorized execution.

use crate::column::Column;
use crate::schema::SchemaRef;
use crate::types::Value;

/// The number of rows an operator processes per batch. 4 K keeps working
/// sets cache-resident while amortizing per-batch overhead.
pub const BATCH_SIZE: usize = 4096;

/// A horizontal slice of rows for a fixed schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Schema shared by all batches of the same stream.
    pub schema: SchemaRef,
    /// One column per schema field, all the same length.
    pub columns: Vec<Column>,
}

impl Batch {
    /// Build a batch, checking column count and row-length agreement.
    pub fn new(schema: SchemaRef, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "column count != schema width");
        if let Some(first) = columns.first() {
            for (i, c) in columns.iter().enumerate() {
                assert_eq!(c.len(), first.len(), "column {i} length mismatch");
                debug_assert_eq!(
                    c.data_type(),
                    schema.field(i).dtype,
                    "column {i} type mismatch with schema"
                );
            }
        }
        Batch { schema, columns }
    }

    /// An empty batch for a schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields
            .iter()
            .map(|f| Column::nulls(f.dtype, 0))
            .collect();
        Batch { schema, columns }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column with the given schema name.
    pub fn column_by_name(&self, name: &str) -> &Column {
        &self.columns[self.schema.index_of(name)]
    }

    /// The full row at `i` as owned values (for result rendering and tests).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
        }
    }

    /// Copy the contiguous row range `start..end` into a new batch —
    /// the no-index-vector fast path for `take(&(start..end)...)`.
    pub fn slice(&self, start: usize, end: usize) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.slice(start, end)).collect(),
        }
    }

    /// Gather rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }

    /// Concatenate batches sharing a schema. Returns an empty batch with
    /// `schema` if `parts` is empty.
    pub fn concat(schema: SchemaRef, parts: &[Batch]) -> Batch {
        if parts.is_empty() {
            return Batch::empty(schema);
        }
        let ncols = parts[0].num_columns();
        let columns = (0..ncols)
            .map(|ci| {
                let cols: Vec<Column> = parts.iter().map(|b| b.columns[ci].clone()).collect();
                Column::concat(&cols)
            })
            .collect();
        Batch { schema, columns }
    }

    /// Approximate in-memory footprint in bytes, used for shuffle volume
    /// accounting and shuffle-node capacity decisions.
    pub fn byte_size(&self) -> u64 {
        use crate::column::ColumnData;
        self.columns
            .iter()
            .map(|c| {
                let data: u64 = match &c.data {
                    ColumnData::I64(v) => (v.len() * 8) as u64,
                    ColumnData::F64(v) => (v.len() * 8) as u64,
                    ColumnData::Date(v) => (v.len() * 4) as u64,
                    ColumnData::Bool(v) => v.len() as u64,
                    ColumnData::Str(v) => v.iter().map(|s| s.len() as u64 + 4).sum(),
                };
                data + c.validity.as_ref().map_or(0, |m| m.len() as u64 / 8 + 1)
            })
            .sum()
    }

    /// Split into chunks of at most `chunk_rows` rows each.
    pub fn chunks(&self, chunk_rows: usize) -> Vec<Batch> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let n = self.num_rows();
        if n <= chunk_rows {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(n.div_ceil(chunk_rows));
        let mut start = 0;
        while start < n {
            let end = (start + chunk_rows).min(n);
            out.push(self.slice(start, end));
            start = end;
        }
        out
    }

    /// Borrow the columns at `indices` (which may repeat) under `schema`
    /// — the non-allocating form of projecting by cloning columns.
    pub fn project_view(&self, schema: SchemaRef, indices: &[usize]) -> BatchView<'_> {
        assert_eq!(
            schema.len(),
            indices.len(),
            "projection width != schema width"
        );
        BatchView {
            schema,
            columns: indices.iter().map(|&i| &self.columns[i]).collect(),
        }
    }

    /// Borrow every column (the identity projection).
    pub fn view(&self) -> BatchView<'_> {
        BatchView {
            schema: self.schema.clone(),
            columns: self.columns.iter().collect(),
        }
    }
}

/// A borrowed projection of a batch: a schema plus references into the
/// parent's columns, in projection order. Nothing is copied until
/// [`BatchView::to_batch`] or [`BatchView::gather`] materializes, so
/// kernels can select and reorder columns for free.
#[derive(Debug, Clone)]
pub struct BatchView<'a> {
    /// Schema of the projected view.
    pub schema: SchemaRef,
    /// Borrowed columns in projection order.
    pub columns: Vec<&'a Column>,
}

impl BatchView<'_> {
    /// Number of rows visible through the view.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of projected columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Materialize the view, cloning each borrowed column exactly once.
    pub fn to_batch(&self) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|&c| c.clone()).collect(),
        }
    }

    /// Gather rows at `indices` from only the projected columns — the
    /// fused filter+project path (gathering through a shared selection
    /// touches each projected column once and the others never).
    pub fn gather(&self, indices: &[usize]) -> Batch {
        Batch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn sample() -> Batch {
        let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::F64)]);
        Batch::new(
            schema,
            vec![
                Column::from_i64(vec![1, 2, 3]),
                Column::from_f64(vec![0.5, 1.5, 2.5]),
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let b = sample();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.num_columns(), 2);
        assert_eq!(b.column_by_name("v").f64s()[1], 1.5);
        assert_eq!(b.row(2), vec![Value::I64(3), Value::F64(2.5)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_columns_rejected() {
        let schema = Schema::shared(&[("a", DataType::I64), ("b", DataType::I64)]);
        Batch::new(
            schema,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![1, 2])],
        );
    }

    #[test]
    fn filter_take_concat() {
        let b = sample();
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.columns[0].i64s(), &[1, 3]);
        let t = b.take(&[2, 2]);
        assert_eq!(t.columns[1].f64s(), &[2.5, 2.5]);
        let c = Batch::concat(b.schema.clone(), &[f, t]);
        assert_eq!(c.num_rows(), 4);
        assert_eq!(c.columns[0].i64s(), &[1, 3, 3, 3]);
    }

    #[test]
    fn concat_empty_gives_empty() {
        let schema = Schema::shared(&[("a", DataType::Str)]);
        let c = Batch::concat(schema.clone(), &[]);
        assert_eq!(c.num_rows(), 0);
        assert_eq!(c.num_columns(), 1);
    }

    #[test]
    fn chunking() {
        let b = sample();
        let chunks = b.chunks(2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[1].num_rows(), 1);
        assert_eq!(chunks[1].columns[0].i64s(), &[3]);
    }

    #[test]
    fn slice_matches_take_of_contiguous_range() {
        // Every type variant plus a validity mask, so the slice path is
        // checked against the gather path it replaced in `chunks`.
        let schema = Schema::shared(&[
            ("i", DataType::I64),
            ("f", DataType::F64),
            ("s", DataType::Str),
            ("d", DataType::Date),
            ("b", DataType::Bool),
        ]);
        let b = Batch::new(
            schema,
            vec![
                Column::with_validity(
                    crate::column::ColumnData::I64(vec![1, 2, 3, 4, 5]),
                    vec![true, false, true, true, false],
                ),
                Column::from_f64(vec![0.1, 0.2, 0.3, 0.4, 0.5]),
                Column::from_str_vec(["a", "b", "c", "d", "e"].map(String::from).to_vec()),
                Column::new(crate::column::ColumnData::Date(vec![10, 11, 12, 13, 14])),
                Column::new(crate::column::ColumnData::Bool(vec![
                    true, true, false, true, false,
                ])),
            ],
        );
        for (start, end) in [(0, 5), (0, 0), (1, 4), (4, 5), (2, 2)] {
            let idx: Vec<usize> = (start..end).collect();
            let via_take = b.take(&idx);
            let via_slice = b.slice(start, end);
            assert_eq!(via_slice.num_rows(), end - start);
            for ci in 0..b.num_columns() {
                assert_eq!(
                    via_slice.columns[ci], via_take.columns[ci],
                    "slice({start},{end}) col {ci}"
                );
            }
        }
        // An all-valid window of a masked column normalizes, same as take.
        assert!(b.slice(2, 4).columns[0].validity.is_none());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_rejects_out_of_range() {
        sample().slice(1, 4);
    }

    #[test]
    fn byte_size_counts_payload() {
        let b = sample();
        // 3*8 (i64) + 3*8 (f64)
        assert_eq!(b.byte_size(), 48);
    }

    #[test]
    fn project_view_borrows_and_materializes() {
        let b = sample();
        let schema = Schema::shared(&[("v", DataType::F64), ("k", DataType::I64)]);
        let view = b.project_view(schema.clone(), &[1, 0]);
        assert_eq!(view.num_rows(), 3);
        assert_eq!(view.num_columns(), 2);
        // Borrowed, not copied: same column allocation.
        assert!(std::ptr::eq(view.columns[0], &b.columns[1]));
        let owned = view.to_batch();
        assert_eq!(owned.columns[0].f64s(), &[0.5, 1.5, 2.5]);
        assert_eq!(owned.columns[1].i64s(), &[1, 2, 3]);
        // Gather through the view touches only projected columns.
        let g = view.gather(&[2, 0]);
        assert_eq!(g.columns[0].f64s(), &[2.5, 0.5]);
        assert_eq!(g.columns[1].i64s(), &[3, 1]);
        let id = b.view();
        assert_eq!(id.to_batch(), b);
    }

    #[test]
    #[should_panic(expected = "projection width")]
    fn project_view_rejects_width_mismatch() {
        let b = sample();
        let schema = Schema::shared(&[("k", DataType::I64)]);
        b.project_view(schema, &[0, 1]);
    }
}
