//! Plan pretty-printing (`EXPLAIN`).

use crate::expr::{BinOp, Expr, LikePattern};
use crate::ops::aggregate::AggFunc;
use crate::plan::{ExchangeMode, PlanNode, Stage, StageDag};
use crate::schema::SchemaRef;
use std::fmt::Write;

/// Render an expression against its input schema's column names.
pub fn explain_expr(e: &Expr, schema: &SchemaRef) -> String {
    match e {
        Expr::Col(i) => schema
            .fields
            .get(*i)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| format!("#{i}")),
        Expr::Lit(v) => format!("{v}"),
        Expr::Binary { op, lhs, rhs } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::Neq => "<>",
                BinOp::Lt => "<",
                BinOp::LtEq => "<=",
                BinOp::Gt => ">",
                BinOp::GtEq => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
            };
            format!(
                "({} {o} {})",
                explain_expr(lhs, schema),
                explain_expr(rhs, schema)
            )
        }
        Expr::Not(x) => format!("NOT {}", explain_expr(x, schema)),
        Expr::IsNull(x) => format!("{} IS NULL", explain_expr(x, schema)),
        Expr::Case {
            branches,
            else_expr,
        } => {
            let mut s = String::from("CASE");
            for (c, r) in branches {
                write!(
                    s,
                    " WHEN {} THEN {}",
                    explain_expr(c, schema),
                    explain_expr(r, schema)
                )
                .expect("write to string");
            }
            if let Some(e) = else_expr {
                write!(s, " ELSE {}", explain_expr(e, schema)).expect("write to string");
            }
            s.push_str(" END");
            s
        }
        Expr::Like {
            input,
            pattern,
            negated,
        } => {
            let p = match pattern {
                LikePattern::Prefix(x) => format!("'{x}%'"),
                LikePattern::Suffix(x) => format!("'%{x}'"),
                LikePattern::Contains(x) => format!("'%{x}%'"),
                LikePattern::ContainsInOrder(xs) => format!("'%{}%'", xs.join("%")),
            };
            format!(
                "{} {}LIKE {p}",
                explain_expr(input, schema),
                if *negated { "NOT " } else { "" }
            )
        }
        Expr::InList { input, list } => {
            let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
            format!("{} IN ({})", explain_expr(input, schema), items.join(", "))
        }
        Expr::ExtractYear(x) => format!("EXTRACT(YEAR FROM {})", explain_expr(x, schema)),
        Expr::Substr { input, start, len } => {
            format!(
                "SUBSTRING({} FROM {start} FOR {len})",
                explain_expr(input, schema)
            )
        }
        Expr::Coalesce(xs) => {
            let items: Vec<String> = xs.iter().map(|x| explain_expr(x, schema)).collect();
            format!("COALESCE({})", items.join(", "))
        }
        Expr::Cast { input, to } => format!("CAST({} AS {to})", explain_expr(input, schema)),
    }
}

fn agg_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Sum => "SUM",
        AggFunc::Min => "MIN",
        AggFunc::Max => "MAX",
        AggFunc::Count => "COUNT",
        AggFunc::CountStar => "COUNT(*)",
        AggFunc::Avg => "AVG",
        AggFunc::CountDistinct => "COUNT(DISTINCT)",
    }
}

fn explain_node(node: &PlanNode, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        PlanNode::Scan {
            table,
            filter,
            projection,
        } => {
            let _ = write!(out, "{pad}Scan {table}");
            if let Some(p) = projection {
                let _ = write!(out, " [{} cols]", p.len());
            }
            if filter.is_some() {
                let _ = write!(out, " (filtered)");
            }
            let _ = writeln!(out);
        }
        PlanNode::ShuffleRead { stage } => {
            let _ = writeln!(out, "{pad}ShuffleRead <- stage {stage}");
        }
        PlanNode::BroadcastRead { stage } => {
            let _ = writeln!(out, "{pad}BroadcastRead <- stage {stage}");
        }
        PlanNode::Filter { input, .. } => {
            let _ = writeln!(out, "{pad}Filter");
            explain_node(input, indent + 1, out);
        }
        PlanNode::Project { input, exprs, .. } => {
            let _ = writeln!(out, "{pad}Project [{} exprs]", exprs.len());
            explain_node(input, indent + 1, out);
        }
        PlanNode::HashAggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let fns: Vec<&str> = aggs.iter().map(|a| agg_name(a.func)).collect();
            let _ = writeln!(
                out,
                "{pad}HashAggregate [{} keys] {}",
                group_by.len(),
                fns.join(", ")
            );
            explain_node(input, indent + 1, out);
        }
        PlanNode::HashJoin {
            build,
            probe,
            join_type,
            ..
        } => {
            let _ = writeln!(out, "{pad}HashJoin {join_type:?}");
            let _ = writeln!(out, "{pad}  build:");
            explain_node(build, indent + 2, out);
            let _ = writeln!(out, "{pad}  probe:");
            explain_node(probe, indent + 2, out);
        }
        PlanNode::Sort { input, keys, limit } => {
            let _ = write!(out, "{pad}Sort [{} keys]", keys.len());
            if let Some(l) = limit {
                let _ = write!(out, " LIMIT {l}");
            }
            let _ = writeln!(out);
            explain_node(input, indent + 1, out);
        }
        PlanNode::Union { inputs } => {
            let _ = writeln!(out, "{pad}Union [{} inputs]", inputs.len());
            for i in inputs {
                explain_node(i, indent + 1, out);
            }
        }
    }
}

fn explain_stage(stage: &Stage, out: &mut String) {
    let exch = match &stage.exchange {
        ExchangeMode::Hash { keys, partitions } => {
            format!("hash[{} keys] -> {partitions} partitions", keys.len())
        }
        ExchangeMode::Broadcast => "broadcast".to_string(),
        ExchangeMode::Gather => "gather".to_string(),
    };
    let _ = writeln!(
        out,
        "Stage {} ({} tasks, exchange: {exch})",
        stage.id, stage.tasks
    );
    explain_node(&stage.root, 1, out);
}

/// Render a whole plan as indented text.
pub fn explain(dag: &StageDag) -> String {
    let mut out = format!("== Plan: {} ==\n", dag.name);
    for s in &dag.stages {
        explain_stage(s, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    #[test]
    fn expressions_render_readably() {
        let schema = Schema::shared(&[("a", DataType::I64), ("b", DataType::F64)]);
        let e = Expr::col(0).add(Expr::lit_i64(1)).gt(Expr::col(1));
        assert_eq!(explain_expr(&e, &schema), "((a + 1) > b)");
        let e = Expr::Like {
            input: Box::new(Expr::col(0)),
            pattern: LikePattern::Prefix("PROMO".into()),
            negated: true,
        };
        assert_eq!(explain_expr(&e, &schema), "a NOT LIKE 'PROMO%'");
        let e = Expr::Case {
            branches: vec![(Expr::col(0).eq(Expr::lit_i64(1)), Expr::lit_str("one"))],
            else_expr: Some(Box::new(Expr::lit_str("other"))),
        };
        assert_eq!(
            explain_expr(&e, &schema),
            "CASE WHEN (a = 1) THEN one ELSE other END"
        );
    }

    #[test]
    fn plan_explains_every_stage() {
        use crate::plan::{ExchangeMode, PlanNode, Stage, StageDag};
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let dag = StageDag::new(
            "demo",
            vec![
                Stage {
                    id: 0,
                    root: PlanNode::Scan {
                        table: "t".into(),
                        filter: Some(Expr::col(0).gt(Expr::lit_i64(0))),
                        projection: None,
                    },
                    tasks: 4,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(0)],
                        partitions: 2,
                    },
                    output_schema: schema.clone(),
                },
                Stage {
                    id: 1,
                    root: PlanNode::Sort {
                        input: Box::new(PlanNode::ShuffleRead { stage: 0 }),
                        keys: vec![crate::ops::sort::SortKey::asc(Expr::col(0))],
                        limit: Some(10),
                    },
                    tasks: 2,
                    exchange: ExchangeMode::Gather,
                    output_schema: schema,
                },
            ],
        );
        let s = explain(&dag);
        assert!(s.contains("== Plan: demo =="));
        assert!(s.contains("Stage 0 (4 tasks, exchange: hash[1 keys] -> 2 partitions)"));
        assert!(s.contains("Scan t (filtered)"));
        assert!(s.contains("Sort [1 keys] LIMIT 10"));
        assert!(s.contains("ShuffleRead <- stage 0"));
    }
}
