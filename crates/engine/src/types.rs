//! Scalar types and values.

use std::cmp::Ordering;
use std::fmt;

/// The data types the engine supports. TPC-H needs exactly these: integers
/// (keys, quantities), decimals (modelled as f64 like many analytical
/// engines' intermediate math), strings, dates (days since 1970-01-01), and
/// booleans for predicate results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    I64,
    /// 64-bit float (used for DECIMAL columns).
    F64,
    /// UTF-8 string.
    Str,
    /// Date as days since the Unix epoch.
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::I64 => "i64",
            DataType::F64 => "f64",
            DataType::Str => "str",
            DataType::Date => "date",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A single scalar value, possibly null.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null of any type.
    Null,
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// String.
    Str(String),
    /// Date (days since epoch).
    Date(i32),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type, or `None` for null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::I64(_) => Some(DataType::I64),
            Value::F64(_) => Some(DataType::F64),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True when the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an i64, panicking on type mismatch (engine-internal use).
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected i64, got {other:?}"),
        }
    }

    /// Extract an f64, coercing from i64.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            Value::I64(v) => *v as f64,
            other => panic!("expected f64, got {other:?}"),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            other => panic!("expected str, got {other:?}"),
        }
    }

    /// Extract a bool.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// SQL-style comparison: returns `None` if either side is null.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::I64(a), Value::I64(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::F64(a), Value::F64(b)) => a.partial_cmp(b),
            (Value::I64(a), Value::F64(b)) => (*a as f64).partial_cmp(b),
            (Value::F64(a), Value::I64(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => panic!("incomparable values {a:?} vs {b:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "{}", date::format_days(*v)),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Date arithmetic on days-since-epoch, proleptic Gregorian.
pub mod date {
    /// True for Gregorian leap years.
    pub fn is_leap(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

    fn days_in_month(year: i32, month: u32) -> i32 {
        if month == 2 && is_leap(year) {
            29
        } else {
            DAYS_IN_MONTH[(month - 1) as usize]
        }
    }

    fn days_in_year(year: i32) -> i32 {
        if is_leap(year) {
            366
        } else {
            365
        }
    }

    /// Convert a calendar date to days since 1970-01-01.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> i32 {
        assert!((1..=12).contains(&month), "bad month {month}");
        assert!(
            day >= 1 && (day as i32) <= days_in_month(year, month),
            "bad day {day}"
        );
        let mut days: i32 = 0;
        if year >= 1970 {
            for y in 1970..year {
                days += days_in_year(y);
            }
        } else {
            for y in year..1970 {
                days -= days_in_year(y);
            }
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days + day as i32 - 1
    }

    /// Convert days since epoch back to (year, month, day).
    pub fn to_ymd(mut days: i32) -> (i32, u32, u32) {
        let mut year = 1970;
        while days < 0 {
            year -= 1;
            days += days_in_year(year);
        }
        while days >= days_in_year(year) {
            days -= days_in_year(year);
            year += 1;
        }
        let mut month = 1u32;
        while days >= days_in_month(year, month) {
            days -= days_in_month(year, month);
            month += 1;
        }
        (year, month, days as u32 + 1)
    }

    /// Parse `YYYY-MM-DD` into days since epoch.
    pub fn parse(s: &str) -> i32 {
        let mut it = s.split('-');
        let y: i32 = it.next().expect("year").parse().expect("year digits");
        let m: u32 = it.next().expect("month").parse().expect("month digits");
        let d: u32 = it.next().expect("day").parse().expect("day digits");
        from_ymd(y, m, d)
    }

    /// Format days since epoch as `YYYY-MM-DD`.
    pub fn format_days(days: i32) -> String {
        let (y, m, d) = to_ymd(days);
        format!("{y:04}-{m:02}-{d:02}")
    }

    /// The year component of a days-since-epoch date.
    pub fn year_of(days: i32) -> i32 {
        to_ymd(days).0
    }

    /// Add `months` calendar months, clamping the day-of-month.
    pub fn add_months(days: i32, months: i32) -> i32 {
        let (y, m, d) = to_ymd(days);
        let total = y * 12 + (m as i32 - 1) + months;
        let ny = total.div_euclid(12);
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm) as u32);
        from_ymd(ny, nm, nd)
    }
}

#[cfg(test)]
mod tests {
    use super::date::*;
    use super::*;

    #[test]
    fn date_roundtrip_epoch_region() {
        for days in [-365, -1, 0, 1, 59, 60, 365, 10_000, 20_000] {
            let (y, m, d) = to_ymd(days);
            assert_eq!(from_ymd(y, m, d), days, "roundtrip {days} -> {y}-{m}-{d}");
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(from_ymd(1970, 1, 1), 0);
        assert_eq!(from_ymd(1970, 1, 2), 1);
        assert_eq!(parse("1992-01-01"), from_ymd(1992, 1, 1));
        assert_eq!(format_days(parse("1998-12-01")), "1998-12-01");
        // Leap-day handling.
        assert_eq!(to_ymd(from_ymd(1996, 2, 29)), (1996, 2, 29));
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(!is_leap(1995));
    }

    #[test]
    fn tpch_date_interval_arithmetic() {
        // TPC-H Q1: date '1998-12-01' - interval '90' day.
        assert_eq!(parse("1998-12-01") - 90, parse("1998-09-02"));
        // Q4/Q5-style: date + interval '3' month.
        assert_eq!(add_months(parse("1993-07-01"), 3), parse("1993-10-01"));
        assert_eq!(add_months(parse("1994-01-01"), 12), parse("1995-01-01"));
        // Day clamping.
        assert_eq!(add_months(parse("1993-01-31"), 1), parse("1993-02-28"));
    }

    #[test]
    fn year_extraction() {
        assert_eq!(year_of(parse("1995-06-17")), 1995);
        assert_eq!(year_of(parse("1970-01-01")), 1970);
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::I64(1)), None);
        assert_eq!(Value::I64(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::I64(2).sql_cmp(&Value::I64(3)), Some(Ordering::Less));
        assert_eq!(
            Value::Str("b".into()).sql_cmp(&Value::Str("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::I64(2).sql_cmp(&Value::F64(2.0)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::I64(7).as_i64(), 7);
        assert_eq!(Value::I64(7).as_f64(), 7.0);
        assert_eq!(Value::F64(1.5).as_f64(), 1.5);
        assert_eq!(Value::Str("x".into()).as_str(), "x");
        assert!(Value::Bool(true).as_bool());
        assert!(Value::Null.is_null());
        assert_eq!(Value::Date(0).data_type(), Some(DataType::Date));
        assert_eq!(Value::Null.data_type(), None);
    }
}
