//! Schemas: named, typed field lists shared by batches and tables.

use crate::types::DataType;
use std::sync::Arc;

/// A named, typed field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Build a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields. Shared via `Arc` between all batches of a
/// table or stage output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The fields in column order.
    pub fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Build a shared schema from `(name, type)` pairs.
    pub fn shared(pairs: &[(&str, DataType)]) -> SchemaRef {
        Arc::new(Schema::new(
            pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect(),
        ))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field named `name`, panicking with a helpful message if
    /// absent (plan construction is static, so absence is a programming bug).
    pub fn index_of(&self, name: &str) -> usize {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| {
                let names: Vec<&str> = self.fields.iter().map(|f| f.name.as_str()).collect();
                panic!("no column '{name}' in schema {names:?}")
            })
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Project a subset of fields by index.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_project() {
        let s = Schema::shared(&[
            ("l_orderkey", DataType::I64),
            ("l_quantity", DataType::F64),
            ("l_shipdate", DataType::Date),
        ]);
        assert_eq!(s.index_of("l_quantity"), 1);
        assert_eq!(s.len(), 3);
        let p = s.project(&[2, 0]);
        assert_eq!(p.fields[0].name, "l_shipdate");
        assert_eq!(p.fields[1].dtype, DataType::I64);
    }

    #[test]
    #[should_panic(expected = "no column 'missing'")]
    fn missing_column_panics_with_name() {
        Schema::shared(&[("a", DataType::I64)]).index_of("missing");
    }
}
