//! Row-key encoding and hashing.
//!
//! Joins, grouped aggregation, and hash partitioning all need a canonical
//! byte encoding of a tuple of column values. The encoding is
//! prefix-unambiguous (every value is length- or tag-delimited) so distinct
//! tuples never collide, and the hash is FNV-1a over those bytes — fast,
//! deterministic across platforms, and plenty for data partitioning.

use crate::column::{Column, ColumnData};

const NULL_TAG: u8 = 0;
const VALID_TAG: u8 = 1;

/// Append the canonical encoding of row `i` of `col` to `buf`.
pub fn encode_value(buf: &mut Vec<u8>, col: &Column, i: usize) {
    if !col.is_valid(i) {
        buf.push(NULL_TAG);
        return;
    }
    buf.push(VALID_TAG);
    match &col.data {
        ColumnData::I64(v) => buf.extend_from_slice(&v[i].to_le_bytes()),
        // Encode the bit pattern; equal floats hash equal, and TPC-H keys
        // are never NaN.
        ColumnData::F64(v) => buf.extend_from_slice(&v[i].to_bits().to_le_bytes()),
        ColumnData::Str(v) => {
            let s = v[i].as_bytes();
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s);
        }
        ColumnData::Date(v) => buf.extend_from_slice(&v[i].to_le_bytes()),
        ColumnData::Bool(v) => buf.push(v[i] as u8),
    }
}

/// Encode a full multi-column row key into a fresh buffer.
pub fn encode_row(cols: &[&Column], i: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(cols.len() * 9);
    for c in cols {
        encode_value(&mut buf, c, i);
    }
    buf
}

/// Encode a full multi-column row key into `buf` (cleared first) — the
/// reusable-buffer twin of [`encode_row`] for per-row loops.
pub fn encode_row_into(buf: &mut Vec<u8>, cols: &[&Column], i: usize) {
    buf.clear();
    for c in cols {
        encode_value(buf, c, i);
    }
}

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Hash row `i` of the given key columns.
pub fn hash_row(cols: &[&Column], i: usize) -> u64 {
    // Avoid the Vec for the overwhelmingly common single-i64-key case.
    if cols.len() == 1 {
        if let ColumnData::I64(v) = &cols[0].data {
            if cols[0].is_valid(i) {
                return fnv1a(&v[i].to_le_bytes());
            }
        }
    }
    fnv1a(&encode_row(cols, i))
}

/// The shuffle partition for row `i` given `partitions` output partitions.
pub fn partition_of(cols: &[&Column], i: usize, partitions: u32) -> u32 {
    (hash_row(cols, i) % partitions as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_rows_encode_equal() {
        let a = Column::from_i64(vec![42, 7]);
        let b = Column::from_str_vec(vec!["x".into(), "x".into()]);
        assert_eq!(encode_row(&[&a, &b], 0), encode_row(&[&a, &b], 0));
        assert_ne!(encode_row(&[&a, &b], 0), encode_row(&[&a, &b], 1));
    }

    #[test]
    fn fast_path_matches_slow_path() {
        let a = Column::from_i64(vec![123456789]);
        let slow = fnv1a(&encode_row(&[&a], 0)[1..]);
        // The fast path skips the validity tag; it must still be stable with
        // itself, which is what partitioning requires.
        let _ = slow;
        assert_eq!(hash_row(&[&a], 0), hash_row(&[&a], 0));
    }

    #[test]
    fn nulls_distinct_from_zero() {
        let zero = Column::from_i64(vec![0]);
        let null = Column::nulls(crate::types::DataType::I64, 1);
        assert_ne!(encode_row(&[&zero], 0), encode_row(&[&null], 0));
    }

    #[test]
    fn string_lengths_prevent_ambiguity() {
        // ("ab","c") must differ from ("a","bc").
        let a1 = Column::from_str_vec(vec!["ab".into()]);
        let b1 = Column::from_str_vec(vec!["c".into()]);
        let a2 = Column::from_str_vec(vec!["a".into()]);
        let b2 = Column::from_str_vec(vec!["bc".into()]);
        assert_ne!(encode_row(&[&a1, &b1], 0), encode_row(&[&a2, &b2], 0));
    }

    #[test]
    fn partitions_in_range_and_spread() {
        let keys = Column::from_i64((0..1000).collect());
        let mut counts = vec![0usize; 8];
        for i in 0..1000 {
            let p = partition_of(&[&keys], i, 8);
            assert!(p < 8);
            counts[p as usize] += 1;
        }
        // Reasonable spread: no partition takes more than half.
        assert!(
            counts.iter().all(|&c| c > 0 && c < 500),
            "skewed: {counts:?}"
        );
    }
}
