//! Task execution: run one `(stage, task)` to completion.
//!
//! A task materializes its operator tree bottom-up (stages are barriers, so
//! inputs are always fully available), then applies the stage's exchange:
//! hash-partitioning and writing chunks through the shuffle transport,
//! broadcasting, or returning gathered batches to the caller.

use crate::batch::Batch;
use crate::codec::{decode_batch, encode_batch};
use crate::column::Column;
use crate::expr::predicate_mask;
use crate::ops::aggregate::hash_aggregate;
use crate::ops::join::hash_join;
use crate::ops::sort::sort;
use crate::plan::{ExchangeMode, PlanNode, StageDag, StageId};
use crate::rowkey::partition_of;
use crate::schema::SchemaRef;
use crate::shuffle::{ShuffleKey, ShuffleTransport};
use crate::table::Catalog;
use cackle_faults::{op_key, FaultInjector};
use cackle_telemetry::Telemetry;
use std::sync::Arc;

/// Row-count-flavoured histogram bounds for per-task input sizes.
const ROW_BUCKETS: [f64; 9] = [
    100.0, 1_000.0, 10_000.0, 100_000.0, 1e6, 1e7, 1e8, 1e9, 1e10,
];

/// Everything a task needs to run.
pub struct TaskContext<'a> {
    /// The full plan (for upstream schemas).
    pub dag: &'a StageDag,
    /// Which stage this task belongs to.
    pub stage_id: StageId,
    /// Task index within the stage, `0..stage.tasks`.
    pub task: u32,
    /// Query id, scoping shuffle keys.
    pub query_id: u64,
    /// Base-table catalog.
    pub catalog: &'a Catalog,
    /// Intermediate-data transport.
    pub shuffle: &'a dyn ShuffleTransport,
    /// Metrics sink (disabled by default — see [`TaskContext::new`]).
    pub telemetry: Telemetry,
    /// Fault plan (disabled by default). Injected transport drops on
    /// shuffle reads are retried deterministically inside the injector's
    /// bounded recovery loop; the retries cost counters, never data.
    pub faults: FaultInjector,
}

impl<'a> TaskContext<'a> {
    /// A context with telemetry disabled; enable it by assigning the
    /// `telemetry` field (it is plain data, like the rest of the context).
    pub fn new(
        dag: &'a StageDag,
        stage_id: StageId,
        task: u32,
        query_id: u64,
        catalog: &'a Catalog,
        shuffle: &'a dyn ShuffleTransport,
    ) -> Self {
        TaskContext {
            dag,
            stage_id,
            task,
            query_id,
            catalog,
            shuffle,
            telemetry: Telemetry::disabled(),
            faults: FaultInjector::disabled(),
        }
    }
}

/// What a task produced.
#[derive(Debug, Default)]
pub struct TaskResult {
    /// Gathered batches (final stage only).
    pub output: Option<Vec<Batch>>,
    /// Rows the task emitted (post-exchange).
    pub rows_out: u64,
    /// Bytes written to the shuffle layer.
    pub shuffle_bytes_written: u64,
    /// Shuffle chunk writes performed.
    pub shuffle_writes: u64,
    /// Rows read from scans and shuffles.
    pub rows_in: u64,
}

/// A task's computed result plus the exchange chunks it produced,
/// buffered for the caller to publish. The parallel executor runs the
/// compute phase concurrently and publishes the buffered writes serially
/// at the stage barrier in task-index order — node-tier shuffle placement
/// is first-come-first-served, so publication order must not depend on
/// thread scheduling.
#[derive(Debug, Default)]
pub struct BufferedTask {
    /// The task's result (counters already recorded to `ctx.telemetry`).
    pub result: TaskResult,
    /// Encoded exchange chunks in partition order, to be written as
    /// `shuffle.write(key, ctx.task, data)`.
    pub writes: Vec<(ShuffleKey, Vec<u8>)>,
}

/// Execute one task to completion, publishing its exchange output
/// through `ctx.shuffle` immediately (the serial driver's path).
pub fn execute_task(ctx: &TaskContext<'_>) -> TaskResult {
    let buffered = execute_task_buffered(ctx);
    for (key, data) in buffered.writes {
        ctx.shuffle.write(key, ctx.task, data);
    }
    buffered.result
}

/// Execute one task's compute phase, buffering exchange writes instead
/// of publishing them (see [`BufferedTask`]).
pub fn execute_task_buffered(ctx: &TaskContext<'_>) -> BufferedTask {
    let stage = &ctx.dag.stages[ctx.stage_id];
    let mut result = TaskResult::default();
    // Exact upper bound on exchange chunks: one per hash partition, one
    // for a broadcast, none for a gather.
    let mut writes: Vec<(ShuffleKey, Vec<u8>)> = Vec::with_capacity(match &stage.exchange {
        ExchangeMode::Gather => 0,
        ExchangeMode::Broadcast => 1,
        ExchangeMode::Hash { partitions, .. } => *partitions as usize,
    });
    let batches = exec_node(ctx, &stage.root, &mut result);
    let out_rows: u64 = batches.iter().map(|b| b.num_rows() as u64).sum();
    result.rows_out = out_rows;

    match &stage.exchange {
        ExchangeMode::Gather => {
            result.output = Some(batches);
        }
        ExchangeMode::Broadcast => {
            let combined = Batch::concat(stage.output_schema.clone(), &batches);
            let data = encode_batch(&combined);
            result.shuffle_bytes_written += data.len() as u64;
            result.shuffle_writes += 1;
            writes.push((
                ShuffleKey {
                    query: ctx.query_id,
                    stage: ctx.stage_id as u32,
                    partition: 0,
                },
                data,
            ));
        }
        ExchangeMode::Hash { keys, partitions } => {
            let combined = Batch::concat(stage.output_schema.clone(), &batches);
            let key_cols: Vec<Column> = keys.iter().map(|e| e.eval(&combined)).collect();
            let key_refs: Vec<&Column> = key_cols.iter().collect();
            // Two passes: count rows per partition, then fill exactly-sized
            // row lists — no reallocation however skewed the hash is.
            let mut assigned: Vec<usize> = Vec::with_capacity(combined.num_rows());
            let mut counts: Vec<usize> = vec![0; *partitions as usize];
            for row in 0..combined.num_rows() {
                let p = partition_of(&key_refs, row, *partitions) as usize;
                assigned.push(p);
                counts[p] += 1;
            }
            let mut per_partition: Vec<Vec<usize>> =
                counts.iter().map(|&c| Vec::with_capacity(c)).collect();
            for (row, &p) in assigned.iter().enumerate() {
                per_partition[p].push(row);
            }
            for (p, rows) in per_partition.into_iter().enumerate() {
                if rows.is_empty() {
                    continue; // no chunk object for empty partitions
                }
                let chunk = combined.take(&rows);
                let data = encode_batch(&chunk);
                result.shuffle_bytes_written += data.len() as u64;
                result.shuffle_writes += 1;
                writes.push((
                    ShuffleKey {
                        query: ctx.query_id,
                        stage: ctx.stage_id as u32,
                        partition: p as u32,
                    },
                    data,
                ));
            }
        }
    }
    if ctx.telemetry.is_enabled() {
        ctx.telemetry.counter_add("engine.tasks_total", 1);
        ctx.telemetry
            .counter_add("engine.task_rows_out_total", result.rows_out);
        ctx.telemetry.counter_add(
            "engine.shuffle_bytes_written_total",
            result.shuffle_bytes_written,
        );
        ctx.telemetry
            .counter_add("engine.shuffle_writes_total", result.shuffle_writes);
        ctx.telemetry.observe_with_buckets(
            "engine.task_rows_in",
            result.rows_in as f64,
            &ROW_BUCKETS,
        );
    }
    BufferedTask { result, writes }
}

fn read_stage(
    ctx: &TaskContext<'_>,
    upstream: StageId,
    partition: u32,
    result: &mut TaskResult,
) -> Vec<Batch> {
    let schema = ctx.dag.stages[upstream].output_schema.clone();
    // Injected transport drops: each dropped fetch is retried within the
    // recovery bound (transients clear by construction), so the read
    // below always observes complete data; the retries are counted. The
    // draw is keyed by the read's stable identity — tasks execute
    // concurrently, so a shared sequential stream would make the outcome
    // depend on thread scheduling.
    ctx.faults.transport_read_retries_keyed(op_key(
        format!(
            "read/q{}/s{}/p{}/c{}/t{}",
            ctx.query_id, upstream, partition, ctx.stage_id, ctx.task
        )
        .as_bytes(),
    ));
    let chunks = ctx.shuffle.read(ShuffleKey {
        query: ctx.query_id,
        stage: upstream as u32,
        partition,
    });
    let batches: Vec<Batch> = chunks
        .iter()
        .map(|c| decode_batch(c, schema.clone()))
        .collect();
    result.rows_in += batches.iter().map(|b| b.num_rows() as u64).sum::<u64>();
    batches
}

fn node_schema(ctx: &TaskContext<'_>, node: &PlanNode) -> SchemaRef {
    match node {
        PlanNode::Scan {
            table, projection, ..
        } => {
            let t = ctx.catalog.get(table);
            match projection {
                Some(idx) => Arc::new(t.schema.project(idx)),
                None => t.schema.clone(),
            }
        }
        PlanNode::ShuffleRead { stage } | PlanNode::BroadcastRead { stage } => {
            ctx.dag.stages[*stage].output_schema.clone()
        }
        PlanNode::Filter { input, .. } | PlanNode::Sort { input, .. } => node_schema(ctx, input),
        PlanNode::Project { schema, .. }
        | PlanNode::HashAggregate { schema, .. }
        | PlanNode::HashJoin { schema, .. } => schema.clone(),
        PlanNode::Union { inputs } => node_schema(ctx, &inputs[0]),
    }
}

fn exec_node(ctx: &TaskContext<'_>, node: &PlanNode, result: &mut TaskResult) -> Vec<Batch> {
    match node {
        PlanNode::Scan {
            table,
            filter,
            projection,
        } => {
            let t = ctx.catalog.get(table);
            let stage = &ctx.dag.stages[ctx.stage_id];
            let parts = t.partitions_for_task(ctx.task, stage.tasks);
            let out_schema = node_schema(ctx, node);
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                result.rows_in += p.num_rows() as u64;
                let filtered = match filter {
                    Some(pred) => {
                        let mask = predicate_mask(pred, p);
                        p.filter(&mask)
                    }
                    // The catalog's partitions are borrowed; an unfiltered
                    // scan materializes each input part exactly once.
                    // cackle-lint: allow(L14) — one-time copy of a borrowed part
                    None => p.clone(),
                };
                let projected = match projection {
                    Some(idx) => Batch::new(
                        out_schema.clone(),
                        // Projection indices may repeat a column, so the
                        // selected columns cannot be moved out of `filtered`.
                        // cackle-lint: allow(L14) — per selected column, not per row
                        idx.iter().map(|&i| filtered.columns[i].clone()).collect(),
                    ),
                    None => filtered,
                };
                if projected.num_rows() > 0 {
                    out.push(projected);
                }
            }
            out
        }
        PlanNode::ShuffleRead { stage } => read_stage(ctx, *stage, ctx.task, result),
        PlanNode::BroadcastRead { stage } => read_stage(ctx, *stage, 0, result),
        PlanNode::Filter { input, predicate } => {
            let batches = exec_node(ctx, input, result);
            batches
                .into_iter()
                .map(|b| {
                    let mask = predicate_mask(predicate, &b);
                    b.filter(&mask)
                })
                .filter(|b| b.num_rows() > 0)
                .collect()
        }
        PlanNode::Project {
            input,
            exprs,
            schema,
        } => {
            let batches = exec_node(ctx, input, result);
            batches
                .into_iter()
                .map(|b| {
                    let cols = exprs.iter().map(|e| e.eval(&b)).collect();
                    Batch::new(schema.clone(), cols)
                })
                .collect()
        }
        PlanNode::HashAggregate {
            input,
            group_by,
            aggs,
            schema,
        } => {
            let batches = exec_node(ctx, input, result);
            vec![hash_aggregate(&batches, group_by, aggs, schema.clone())]
        }
        PlanNode::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            join_type,
            schema,
        } => {
            let build_schema = node_schema(ctx, build);
            let build_batches = exec_node(ctx, build, result);
            let probe_batches = exec_node(ctx, probe, result);
            hash_join(
                build_schema,
                &build_batches,
                &probe_batches,
                build_keys,
                probe_keys,
                *join_type,
                schema.clone(),
            )
            .into_iter()
            .filter(|b| b.num_rows() > 0)
            .collect()
        }
        PlanNode::Sort { input, keys, limit } => {
            let schema = node_schema(ctx, input);
            let batches = exec_node(ctx, input, result);
            vec![sort(schema, &batches, keys, *limit)]
        }
        PlanNode::Union { inputs } => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(exec_node(ctx, i, result));
            }
            out
        }
    }
}

/// Convenience single-process driver: execute every stage of a plan in
/// dependency order with the given parallelism metadata (tasks run
/// sequentially here — the Cackle system crate schedules them on simulated
/// compute), returning the gathered result.
pub fn execute_query(
    dag: &StageDag,
    query_id: u64,
    catalog: &Catalog,
    shuffle: &dyn ShuffleTransport,
) -> Batch {
    let mut gathered: Vec<Batch> = Vec::new();
    for stage in &dag.stages {
        for task in 0..stage.tasks {
            let ctx = TaskContext::new(dag, stage.id, task, query_id, catalog, shuffle);
            let r = execute_task(&ctx);
            if let Some(batches) = r.output {
                gathered.extend(batches);
            }
        }
    }
    shuffle.delete_query(query_id);
    let schema = dag.final_stage().output_schema.clone();
    Batch::concat(schema, &gathered)
}

/// Pretty-print a result batch as an aligned table (examples + debugging).
pub fn format_batch(batch: &Batch, max_rows: usize) -> String {
    let mut widths: Vec<usize> = batch.schema.fields.iter().map(|f| f.name.len()).collect();
    let nrows = batch.num_rows().min(max_rows);
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(nrows);
    for i in 0..nrows {
        let row: Vec<String> = batch
            .columns
            .iter()
            .map(|c| c.value(i).to_string())
            .collect();
        for (w, cell) in widths.iter_mut().zip(&row) {
            *w = (*w).max(cell.len());
        }
        rows.push(row);
    }
    let mut out = String::new();
    for (i, f) in batch.schema.fields.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", f.name, w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    if batch.num_rows() > max_rows {
        out.push_str(&format!("... ({} rows total)\n", batch.num_rows()));
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::aggregate::{AggExpr, AggFunc};
    use crate::ops::join::JoinType;
    use crate::ops::sort::SortKey;
    use crate::schema::Schema;
    use crate::shuffle::MemoryShuffle;
    use crate::table::Table;
    use crate::types::DataType;

    /// Build a catalog with an `orders`-like table spread over partitions.
    pub(crate) fn catalog() -> Catalog {
        let schema = Schema::shared(&[
            ("o_key", DataType::I64),
            ("o_cust", DataType::I64),
            ("o_total", DataType::F64),
        ]);
        let mut partitions = Vec::new();
        for p in 0..4i64 {
            let keys: Vec<i64> = (0..25).map(|i| p * 25 + i).collect();
            let custs: Vec<i64> = keys.iter().map(|k| k % 10).collect();
            let totals: Vec<f64> = keys.iter().map(|&k| k as f64 * 1.5).collect();
            partitions.push(Batch::new(
                schema.clone(),
                vec![
                    Column::from_i64(keys),
                    Column::from_i64(custs),
                    Column::from_f64(totals),
                ],
            ));
        }
        let c = Catalog::new();
        c.register(Table::new("orders", schema, partitions));
        c
    }

    /// Two-phase aggregation plan: per-customer SUM(o_total) via partial
    /// aggregation, hash exchange on customer, final aggregation, gather.
    pub(crate) fn agg_plan() -> StageDag {
        let partial_schema = Schema::shared(&[("o_cust", DataType::I64), ("psum", DataType::F64)]);
        let final_schema = Schema::shared(&[("o_cust", DataType::I64), ("total", DataType::F64)]);
        StageDag::new(
            "sum_by_customer",
            vec![
                crate::plan::Stage {
                    id: 0,
                    root: PlanNode::HashAggregate {
                        input: Box::new(PlanNode::Scan {
                            table: "orders".into(),
                            filter: None,
                            projection: None,
                        }),
                        group_by: vec![Expr::col(1)],
                        aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(2))],
                        schema: partial_schema.clone(),
                    },
                    tasks: 4,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(0)],
                        partitions: 2,
                    },
                    output_schema: partial_schema,
                },
                crate::plan::Stage {
                    id: 1,
                    root: PlanNode::Sort {
                        input: Box::new(PlanNode::HashAggregate {
                            input: Box::new(PlanNode::ShuffleRead { stage: 0 }),
                            group_by: vec![Expr::col(0)],
                            aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1))],
                            schema: final_schema.clone(),
                        }),
                        keys: vec![SortKey::asc(Expr::col(0))],
                        limit: None,
                    },
                    tasks: 2,
                    exchange: ExchangeMode::Gather,
                    output_schema: final_schema,
                },
            ],
        )
    }

    #[test]
    fn distributed_two_phase_aggregation_is_correct() {
        let cat = catalog();
        let shuffle = MemoryShuffle::new();
        let result = execute_query(&agg_plan(), 1, &cat, &shuffle);
        assert_eq!(result.num_rows(), 10);
        // Independently compute the expected totals.
        let mut expected = [0.0f64; 10];
        for k in 0..100i64 {
            expected[(k % 10) as usize] += k as f64 * 1.5;
        }
        // Result arrives as two gathered partitions; check as a map.
        let mut got = std::collections::HashMap::new();
        for i in 0..result.num_rows() {
            got.insert(result.columns[0].i64s()[i], result.columns[1].f64s()[i]);
        }
        for (cust, exp) in expected.iter().enumerate() {
            let v = got[&(cust as i64)];
            assert!((v - exp).abs() < 1e-9, "cust {cust}: {v} vs {exp}");
        }
        // Shuffle state cleaned up after the query.
        assert_eq!(shuffle.resident_bytes(), 0);
    }

    #[test]
    fn broadcast_join_plan_matches_partitioned_join_plan() {
        // The cross-check DESIGN.md commits to: a broadcast-join plan and a
        // partitioned-join plan must produce identical results.
        let cat = catalog();
        // Small dimension table: 10 customers.
        let dim_schema = Schema::shared(&[("c_key", DataType::I64), ("c_name", DataType::Str)]);
        let dim = Batch::new(
            dim_schema.clone(),
            vec![
                Column::from_i64((0..10).collect()),
                Column::from_str_vec((0..10).map(|i| format!("cust{i}")).collect()),
            ],
        );
        cat.register(Table::new("customer", dim_schema.clone(), vec![dim]));

        let join_schema = Schema::shared(&[
            ("o_key", DataType::I64),
            ("o_cust", DataType::I64),
            ("o_total", DataType::F64),
            ("c_key", DataType::I64),
            ("c_name", DataType::Str),
        ]);
        let sorted = |input: PlanNode| PlanNode::Sort {
            input: Box::new(input),
            keys: vec![SortKey::asc(Expr::col(0))],
            limit: None,
        };

        // Broadcast plan: stage 0 broadcasts customer; stage 1 joins
        // against scanned orders and gathers.
        let broadcast = StageDag::new(
            "bcast",
            vec![
                crate::plan::Stage {
                    id: 0,
                    root: PlanNode::Scan {
                        table: "customer".into(),
                        filter: None,
                        projection: None,
                    },
                    tasks: 1,
                    exchange: ExchangeMode::Broadcast,
                    output_schema: dim_schema.clone(),
                },
                crate::plan::Stage {
                    id: 1,
                    root: sorted(PlanNode::HashJoin {
                        build: Box::new(PlanNode::BroadcastRead { stage: 0 }),
                        probe: Box::new(PlanNode::Scan {
                            table: "orders".into(),
                            filter: None,
                            projection: None,
                        }),
                        build_keys: vec![Expr::col(0)],
                        probe_keys: vec![Expr::col(1)],
                        join_type: JoinType::Inner,
                        schema: join_schema.clone(),
                    }),
                    tasks: 1,
                    exchange: ExchangeMode::Gather,
                    output_schema: join_schema.clone(),
                },
            ],
        );

        // Partitioned plan: both sides hash-exchanged on the key.
        let orders_schema = cat.get("orders").schema.clone();
        let partitioned = StageDag::new(
            "part",
            vec![
                crate::plan::Stage {
                    id: 0,
                    root: PlanNode::Scan {
                        table: "customer".into(),
                        filter: None,
                        projection: None,
                    },
                    tasks: 1,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(0)],
                        partitions: 3,
                    },
                    output_schema: dim_schema,
                },
                crate::plan::Stage {
                    id: 1,
                    root: PlanNode::Scan {
                        table: "orders".into(),
                        filter: None,
                        projection: None,
                    },
                    tasks: 2,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(1)],
                        partitions: 3,
                    },
                    output_schema: orders_schema,
                },
                crate::plan::Stage {
                    id: 2,
                    root: PlanNode::HashJoin {
                        build: Box::new(PlanNode::ShuffleRead { stage: 0 }),
                        probe: Box::new(PlanNode::ShuffleRead { stage: 1 }),
                        build_keys: vec![Expr::col(0)],
                        probe_keys: vec![Expr::col(1)],
                        join_type: JoinType::Inner,
                        schema: join_schema.clone(),
                    },
                    tasks: 3,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(0)],
                        partitions: 1,
                    },
                    output_schema: join_schema.clone(),
                },
                crate::plan::Stage {
                    id: 3,
                    root: sorted(PlanNode::ShuffleRead { stage: 2 }),
                    tasks: 1,
                    exchange: ExchangeMode::Gather,
                    output_schema: join_schema,
                },
            ],
        );

        let s1 = MemoryShuffle::new();
        let s2 = MemoryShuffle::new();
        let r1 = execute_query(&broadcast, 1, &cat, &s1);
        let r2 = execute_query(&partitioned, 2, &cat, &s2);
        assert_eq!(r1.num_rows(), 100);
        assert_eq!(r1, r2);
    }

    #[test]
    fn filter_and_topk() {
        let cat = catalog();
        let schema = cat.get("orders").schema.clone();
        let dag = StageDag::new(
            "topk",
            vec![crate::plan::Stage {
                id: 0,
                root: PlanNode::Sort {
                    input: Box::new(PlanNode::Filter {
                        input: Box::new(PlanNode::Scan {
                            table: "orders".into(),
                            filter: None,
                            projection: None,
                        }),
                        predicate: Expr::col(1).eq(Expr::lit_i64(3)),
                    }),
                    keys: vec![SortKey::desc(Expr::col(2))],
                    limit: Some(3),
                },
                tasks: 1,
                exchange: ExchangeMode::Gather,
                output_schema: schema,
            }],
        );
        let r = execute_query(&dag, 3, &cat, &MemoryShuffle::new());
        assert_eq!(r.num_rows(), 3);
        // Largest o_key with o_cust == 3 is 93.
        assert_eq!(r.columns[0].i64s(), &[93, 83, 73]);
    }

    #[test]
    fn scan_filter_pushdown_and_projection() {
        let cat = catalog();
        let out = Schema::shared(&[("o_total", DataType::F64)]);
        let dag = StageDag::new(
            "proj",
            vec![crate::plan::Stage {
                id: 0,
                root: PlanNode::Scan {
                    table: "orders".into(),
                    filter: Some(Expr::col(0).lt(Expr::lit_i64(5))),
                    projection: Some(vec![2]),
                },
                tasks: 2,
                exchange: ExchangeMode::Gather,
                output_schema: out,
            }],
        );
        let r = execute_query(&dag, 4, &cat, &MemoryShuffle::new());
        assert_eq!(r.num_rows(), 5);
        assert_eq!(r.num_columns(), 1);
    }

    #[test]
    fn format_batch_renders() {
        let cat = catalog();
        let b = cat.get("orders").partitions[0].clone();
        let s = format_batch(&b, 2);
        assert!(s.contains("o_key"));
        assert!(s.contains("... (25 rows total)"));
    }
}
