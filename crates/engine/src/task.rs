//! Task execution: run one `(stage, task)` to completion.
//!
//! A task materializes its operator tree bottom-up (stages are barriers, so
//! inputs are always fully available), then applies the stage's exchange:
//! hash-partitioning and writing chunks through the shuffle transport,
//! broadcasting, or returning gathered batches to the caller.

use crate::batch::Batch;
use crate::codec::{decode_batch, encode_batch};
use crate::column::{Column, ColumnSlice};
use crate::expr::predicate_mask_into;
use crate::kernels::pool::ScratchArena;
use crate::kernels::select::{filter_batch, filter_project};
use crate::ops::aggregate::hash_aggregate;
use crate::ops::join::hash_join;
use crate::ops::sort::sort;
use crate::plan::{ExchangeMode, PlanNode, StageDag, StageId};
use crate::rowkey::partition_of;
use crate::schema::SchemaRef;
use crate::shuffle::{ShuffleKey, ShuffleTransport};
use crate::table::Catalog;
use cackle_faults::{op_key, FaultInjector};
use cackle_telemetry::Telemetry;
use std::cell::RefCell;
use std::sync::Arc;

/// Row-count-flavoured histogram bounds for per-task input sizes.
const ROW_BUCKETS: [f64; 9] = [
    100.0, 1_000.0, 10_000.0, 100_000.0, 1e6, 1e7, 1e8, 1e9, 1e10,
];

/// Everything a task needs to run.
pub struct TaskContext<'a> {
    /// The full plan (for upstream schemas).
    pub dag: &'a StageDag,
    /// Which stage this task belongs to.
    pub stage_id: StageId,
    /// Task index within the stage, `0..stage.tasks`.
    pub task: u32,
    /// Query id, scoping shuffle keys.
    pub query_id: u64,
    /// Base-table catalog.
    pub catalog: &'a Catalog,
    /// Intermediate-data transport.
    pub shuffle: &'a dyn ShuffleTransport,
    /// Metrics sink (disabled by default — see [`TaskContext::new`]).
    pub telemetry: Telemetry,
    /// Fault plan (disabled by default). Injected transport drops on
    /// shuffle reads are retried deterministically inside the injector's
    /// bounded recovery loop; the retries cost counters, never data.
    pub faults: FaultInjector,
    /// Reusable scratch buffers for this task's kernels. A `RefCell`
    /// rather than `&mut` because the context is otherwise shared
    /// immutably; tasks never share a context across threads (the
    /// executor builds one per task), so borrows cannot contend.
    pub scratch: RefCell<ScratchArena>,
}

impl<'a> TaskContext<'a> {
    /// A context with telemetry disabled; enable it by assigning the
    /// `telemetry` field (it is plain data, like the rest of the context).
    pub fn new(
        dag: &'a StageDag,
        stage_id: StageId,
        task: u32,
        query_id: u64,
        catalog: &'a Catalog,
        shuffle: &'a dyn ShuffleTransport,
    ) -> Self {
        TaskContext {
            dag,
            stage_id,
            task,
            query_id,
            catalog,
            shuffle,
            telemetry: Telemetry::disabled(),
            faults: FaultInjector::disabled(),
            scratch: RefCell::new(ScratchArena::new()),
        }
    }
}

/// What a task produced.
#[derive(Debug, Default)]
pub struct TaskResult {
    /// Gathered batches (final stage only).
    pub output: Option<Vec<Batch>>,
    /// Rows the task emitted (post-exchange).
    pub rows_out: u64,
    /// Bytes written to the shuffle layer.
    pub shuffle_bytes_written: u64,
    /// Shuffle chunk writes performed.
    pub shuffle_writes: u64,
    /// Rows read from scans and shuffles.
    pub rows_in: u64,
}

/// A task's computed result plus the exchange chunks it produced,
/// buffered for the caller to publish. The parallel executor runs the
/// compute phase concurrently and publishes the buffered writes serially
/// at the stage barrier in task-index order — node-tier shuffle placement
/// is first-come-first-served, so publication order must not depend on
/// thread scheduling.
#[derive(Debug, Default)]
pub struct BufferedTask {
    /// The task's result (counters already recorded to `ctx.telemetry`).
    pub result: TaskResult,
    /// Encoded exchange chunks in partition order, to be written as
    /// `shuffle.write(key, ctx.task, data)`.
    pub writes: Vec<(ShuffleKey, Vec<u8>)>,
}

/// One task run bound to its context: the single entry point behind
/// [`execute_task`] and [`execute_task_buffered`]. Construct with
/// [`TaskExecution::new`], then either [`run`](TaskExecution::run)
/// (compute + publish) or [`run_buffered`](TaskExecution::run_buffered)
/// (compute only, exchange writes buffered for the caller).
pub struct TaskExecution<'a, 'c> {
    ctx: &'c TaskContext<'a>,
}

/// Execute one task to completion, publishing its exchange output
/// through `ctx.shuffle` immediately (the serial driver's path). Thin
/// wrapper over [`TaskExecution::run`].
pub fn execute_task(ctx: &TaskContext<'_>) -> TaskResult {
    TaskExecution::new(ctx).run()
}

/// Execute one task's compute phase, buffering exchange writes instead
/// of publishing them (see [`BufferedTask`]). Thin wrapper over
/// [`TaskExecution::run_buffered`].
pub fn execute_task_buffered(ctx: &TaskContext<'_>) -> BufferedTask {
    TaskExecution::new(ctx).run_buffered()
}

impl<'a, 'c> TaskExecution<'a, 'c> {
    /// Bind a run to its context.
    pub fn new(ctx: &'c TaskContext<'a>) -> Self {
        TaskExecution { ctx }
    }

    /// Compute the task and publish its exchange output immediately.
    pub fn run(&self) -> TaskResult {
        let buffered = self.run_buffered();
        for (key, data) in buffered.writes {
            self.ctx.shuffle.write(key, self.ctx.task, data);
        }
        buffered.result
    }

    /// Compute the task, buffering exchange writes for the caller.
    pub fn run_buffered(&self) -> BufferedTask {
        let ctx = self.ctx;
        let stage = &ctx.dag.stages[ctx.stage_id];
        let scratch_before = ctx.scratch.borrow().stats();
        let mut result = TaskResult::default();
        // Exact upper bound on exchange chunks: one per hash partition,
        // one for a broadcast, none for a gather.
        let mut writes: Vec<(ShuffleKey, Vec<u8>)> = Vec::with_capacity(match &stage.exchange {
            ExchangeMode::Gather => 0,
            ExchangeMode::Broadcast => 1,
            ExchangeMode::Hash { partitions, .. } => *partitions as usize,
        });
        let batches = self.exec_node(&stage.root, &mut result);
        let out_rows: u64 = batches.iter().map(|b| b.num_rows() as u64).sum();
        result.rows_out = out_rows;

        match &stage.exchange {
            ExchangeMode::Gather => {
                result.output = Some(batches);
            }
            ExchangeMode::Broadcast => {
                let combined = Batch::concat(stage.output_schema.clone(), &batches);
                let data = encode_batch(&combined);
                result.shuffle_bytes_written += data.len() as u64;
                result.shuffle_writes += 1;
                writes.push((
                    ShuffleKey {
                        query: ctx.query_id,
                        stage: ctx.stage_id as u32,
                        partition: 0,
                    },
                    data,
                ));
            }
            ExchangeMode::Hash { keys, partitions } => {
                let combined = Batch::concat(stage.output_schema.clone(), &batches);
                let key_cols: Vec<Column> = keys.iter().map(|e| e.eval(&combined)).collect();
                let key_refs: Vec<&Column> = key_cols.iter().collect();
                let nparts = *partitions as usize;
                let nrows = combined.num_rows();
                // Counting sort on pooled buffers: assign a partition per
                // row, prefix-sum the counts into per-partition extents,
                // then place rows — stable, so rows stay in input order
                // within each partition (byte-identical chunks to the old
                // per-partition row lists) and nothing reallocates however
                // skewed the hash is.
                let mut arena = ctx.scratch.borrow_mut();
                let mut assigned = arena.checkout_idx(nrows);
                let mut counts: Vec<usize> = vec![0; nparts];
                for row in 0..nrows {
                    let p = partition_of(&key_refs, row, *partitions) as usize;
                    assigned.push(p);
                    counts[p] += 1;
                }
                let mut offsets: Vec<usize> = Vec::with_capacity(nparts + 1);
                let mut total = 0;
                offsets.push(0);
                for &c in &counts {
                    total += c;
                    offsets.push(total);
                }
                let mut cursor = arena.checkout_idx(nparts);
                cursor.extend_from_slice(&offsets[..nparts]);
                let mut ordered = arena.checkout_idx(nrows);
                ordered.resize(nrows, 0);
                for (row, &p) in assigned.iter().enumerate() {
                    ordered[cursor[p]] = row;
                    cursor[p] += 1;
                }
                for p in 0..nparts {
                    let rows = &ordered[offsets[p]..offsets[p + 1]];
                    if rows.is_empty() {
                        continue; // no chunk object for empty partitions
                    }
                    let chunk = combined.take(rows);
                    let data = encode_batch(&chunk);
                    result.shuffle_bytes_written += data.len() as u64;
                    result.shuffle_writes += 1;
                    writes.push((
                        ShuffleKey {
                            query: ctx.query_id,
                            stage: ctx.stage_id as u32,
                            partition: p as u32,
                        },
                        data,
                    ));
                }
                arena.recycle_idx(assigned);
                arena.recycle_idx(cursor);
                arena.recycle_idx(ordered);
            }
        }
        if ctx.telemetry.is_enabled() {
            ctx.telemetry.counter_add("engine.tasks_total", 1);
            ctx.telemetry
                .counter_add("engine.task_rows_out_total", result.rows_out);
            ctx.telemetry.counter_add(
                "engine.shuffle_bytes_written_total",
                result.shuffle_bytes_written,
            );
            ctx.telemetry
                .counter_add("engine.shuffle_writes_total", result.shuffle_writes);
            ctx.telemetry.observe_with_buckets(
                "engine.task_rows_in",
                result.rows_in as f64,
                &ROW_BUCKETS,
            );
            // Per-run deltas: the arena's counters are cumulative across
            // a context's lifetime, but a context may run many probes in
            // tests; report only what this run consumed.
            let s = ctx.scratch.borrow().stats();
            ctx.telemetry.counter_add(
                "engine.scratch_checkouts_total",
                s.checkouts - scratch_before.checkouts,
            );
            ctx.telemetry.counter_add(
                "engine.scratch_reuses_total",
                s.reuses - scratch_before.reuses,
            );
        }
        BufferedTask { result, writes }
    }

    fn read_stage(&self, upstream: StageId, partition: u32, result: &mut TaskResult) -> Vec<Batch> {
        let ctx = self.ctx;
        let schema = ctx.dag.stages[upstream].output_schema.clone();
        // Injected transport drops: each dropped fetch is retried within the
        // recovery bound (transients clear by construction), so the read
        // below always observes complete data; the retries are counted. The
        // draw is keyed by the read's stable identity — tasks execute
        // concurrently, so a shared sequential stream would make the outcome
        // depend on thread scheduling.
        ctx.faults.transport_read_retries_keyed(op_key(
            format!(
                "read/q{}/s{}/p{}/c{}/t{}",
                ctx.query_id, upstream, partition, ctx.stage_id, ctx.task
            )
            .as_bytes(),
        ));
        let chunks = ctx.shuffle.read(ShuffleKey {
            query: ctx.query_id,
            stage: upstream as u32,
            partition,
        });
        let batches: Vec<Batch> = chunks
            .iter()
            .map(|c| decode_batch(c, schema.clone()))
            .collect();
        result.rows_in += batches.iter().map(|b| b.num_rows() as u64).sum::<u64>();
        batches
    }

    fn node_schema(&self, node: &PlanNode) -> SchemaRef {
        let ctx = self.ctx;
        match node {
            PlanNode::Scan {
                table, projection, ..
            } => {
                let t = ctx.catalog.get(table);
                match projection {
                    Some(idx) => Arc::new(t.schema.project(idx)),
                    None => t.schema.clone(),
                }
            }
            PlanNode::ShuffleRead { stage } | PlanNode::BroadcastRead { stage } => {
                ctx.dag.stages[*stage].output_schema.clone()
            }
            PlanNode::Filter { input, .. } | PlanNode::Sort { input, .. } => {
                self.node_schema(input)
            }
            PlanNode::Project { schema, .. }
            | PlanNode::HashAggregate { schema, .. }
            | PlanNode::HashJoin { schema, .. } => schema.clone(),
            PlanNode::Union { inputs } => self.node_schema(&inputs[0]),
        }
    }

    fn exec_node(&self, node: &PlanNode, result: &mut TaskResult) -> Vec<Batch> {
        let ctx = self.ctx;
        match node {
            PlanNode::Scan {
                table,
                filter,
                projection,
            } => {
                let t = ctx.catalog.get(table);
                let stage = &ctx.dag.stages[ctx.stage_id];
                let parts = t.partitions_for_task(ctx.task, stage.tasks);
                let out_schema = self.node_schema(node);
                let mut arena = ctx.scratch.borrow_mut();
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    result.rows_in += p.num_rows() as u64;
                    let projected = match (filter, projection) {
                        // Fused filter+project: one pooled mask and one
                        // shared selection; unprojected columns are never
                        // gathered.
                        (Some(pred), Some(idx)) => {
                            let mut mask = arena.checkout_mask(p.num_rows());
                            predicate_mask_into(pred, p, &mut mask);
                            let b = filter_project(p, &mask, idx, out_schema.clone(), &mut arena);
                            arena.recycle_mask(mask);
                            b
                        }
                        (Some(pred), None) => {
                            let mut mask = arena.checkout_mask(p.num_rows());
                            predicate_mask_into(pred, p, &mut mask);
                            let b = filter_batch(p, &mask, &mut arena);
                            arena.recycle_mask(mask);
                            b
                        }
                        // Projection indices may repeat a column; the
                        // borrowed view clones each selected column once.
                        (None, Some(idx)) => p.project_view(out_schema.clone(), idx).to_batch(),
                        // The catalog's partitions are borrowed; an
                        // unfiltered scan materializes each part once.
                        // cackle-lint: allow(L14) — one-time copy of a borrowed part
                        (None, None) => p.clone(),
                    };
                    if projected.num_rows() > 0 {
                        out.push(projected);
                    }
                }
                out
            }
            PlanNode::ShuffleRead { stage } => self.read_stage(*stage, ctx.task, result),
            PlanNode::BroadcastRead { stage } => self.read_stage(*stage, 0, result),
            PlanNode::Filter { input, predicate } => {
                let batches = self.exec_node(input, result);
                let mut arena = ctx.scratch.borrow_mut();
                let mut out = Vec::with_capacity(batches.len());
                let mut mask = arena.checkout_mask(0);
                for b in &batches {
                    predicate_mask_into(predicate, b, &mut mask);
                    let f = filter_batch(b, &mask, &mut arena);
                    if f.num_rows() > 0 {
                        out.push(f);
                    }
                }
                arena.recycle_mask(mask);
                out
            }
            PlanNode::Project {
                input,
                exprs,
                schema,
            } => {
                let batches = self.exec_node(input, result);
                batches
                    .into_iter()
                    .map(|b| {
                        let cols = exprs.iter().map(|e| e.eval(&b)).collect();
                        Batch::new(schema.clone(), cols)
                    })
                    .collect()
            }
            PlanNode::HashAggregate {
                input,
                group_by,
                aggs,
                schema,
            } => {
                let batches = self.exec_node(input, result);
                vec![hash_aggregate(&batches, group_by, aggs, schema.clone())]
            }
            PlanNode::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                join_type,
                schema,
            } => {
                let build_schema = self.node_schema(build);
                let build_batches = self.exec_node(build, result);
                let probe_batches = self.exec_node(probe, result);
                hash_join(
                    build_schema,
                    &build_batches,
                    &probe_batches,
                    build_keys,
                    probe_keys,
                    *join_type,
                    schema.clone(),
                )
                .into_iter()
                .filter(|b| b.num_rows() > 0)
                .collect()
            }
            PlanNode::Sort { input, keys, limit } => {
                let schema = self.node_schema(input);
                let batches = self.exec_node(input, result);
                vec![sort(schema, &batches, keys, *limit)]
            }
            PlanNode::Union { inputs } => {
                let mut out = Vec::new();
                for i in inputs {
                    out.extend(self.exec_node(i, result));
                }
                out
            }
        }
    }
}

/// Convenience single-process driver: execute every stage of a plan in
/// dependency order with the given parallelism metadata (tasks run
/// sequentially here — the Cackle system crate schedules them on simulated
/// compute), returning the gathered result.
pub fn execute_query(
    dag: &StageDag,
    query_id: u64,
    catalog: &Catalog,
    shuffle: &dyn ShuffleTransport,
) -> Batch {
    let mut gathered: Vec<Batch> = Vec::new();
    for stage in &dag.stages {
        for task in 0..stage.tasks {
            let ctx = TaskContext::new(dag, stage.id, task, query_id, catalog, shuffle);
            let r = execute_task(&ctx);
            if let Some(batches) = r.output {
                gathered.extend(batches);
            }
        }
    }
    shuffle.delete_query(query_id);
    let schema = dag.final_stage().output_schema.clone();
    Batch::concat(schema, &gathered)
}

/// Pretty-print a result batch as an aligned table (examples + debugging).
/// Cells render through borrowed [`ColumnSlice`] views — no `Value` (and
/// in particular no string clone) is materialized per cell.
pub fn format_batch(batch: &Batch, max_rows: usize) -> String {
    let mut widths: Vec<usize> = batch.schema.fields.iter().map(|f| f.name.len()).collect();
    let nrows = batch.num_rows().min(max_rows);
    let views: Vec<ColumnSlice<'_>> = batch
        .columns
        .iter()
        .map(|c| c.borrowed_slice(0, nrows))
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(nrows);
    for i in 0..nrows {
        let row: Vec<String> = views
            .iter()
            .map(|v| {
                let mut cell = String::new();
                v.write_value(&mut cell, i);
                cell
            })
            .collect();
        for (w, cell) in widths.iter_mut().zip(&row) {
            *w = (*w).max(cell.len());
        }
        rows.push(row);
    }
    let mut out = String::new();
    for (i, f) in batch.schema.fields.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", f.name, w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    if batch.num_rows() > max_rows {
        out.push_str(&format!("... ({} rows total)\n", batch.num_rows()));
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::aggregate::{AggExpr, AggFunc};
    use crate::ops::join::JoinType;
    use crate::ops::sort::SortKey;
    use crate::schema::Schema;
    use crate::shuffle::MemoryShuffle;
    use crate::table::Table;
    use crate::types::DataType;

    /// Build a catalog with an `orders`-like table spread over partitions.
    pub(crate) fn catalog() -> Catalog {
        let schema = Schema::shared(&[
            ("o_key", DataType::I64),
            ("o_cust", DataType::I64),
            ("o_total", DataType::F64),
        ]);
        let mut partitions = Vec::new();
        for p in 0..4i64 {
            let keys: Vec<i64> = (0..25).map(|i| p * 25 + i).collect();
            let custs: Vec<i64> = keys.iter().map(|k| k % 10).collect();
            let totals: Vec<f64> = keys.iter().map(|&k| k as f64 * 1.5).collect();
            partitions.push(Batch::new(
                schema.clone(),
                vec![
                    Column::from_i64(keys),
                    Column::from_i64(custs),
                    Column::from_f64(totals),
                ],
            ));
        }
        let c = Catalog::new();
        c.register(Table::new("orders", schema, partitions));
        c
    }

    /// Two-phase aggregation plan: per-customer SUM(o_total) via partial
    /// aggregation, hash exchange on customer, final aggregation, gather.
    pub(crate) fn agg_plan() -> StageDag {
        let partial_schema = Schema::shared(&[("o_cust", DataType::I64), ("psum", DataType::F64)]);
        let final_schema = Schema::shared(&[("o_cust", DataType::I64), ("total", DataType::F64)]);
        StageDag::new(
            "sum_by_customer",
            vec![
                crate::plan::Stage {
                    id: 0,
                    root: PlanNode::HashAggregate {
                        input: Box::new(PlanNode::Scan {
                            table: "orders".into(),
                            filter: None,
                            projection: None,
                        }),
                        group_by: vec![Expr::col(1)],
                        aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(2))],
                        schema: partial_schema.clone(),
                    },
                    tasks: 4,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(0)],
                        partitions: 2,
                    },
                    output_schema: partial_schema,
                },
                crate::plan::Stage {
                    id: 1,
                    root: PlanNode::Sort {
                        input: Box::new(PlanNode::HashAggregate {
                            input: Box::new(PlanNode::ShuffleRead { stage: 0 }),
                            group_by: vec![Expr::col(0)],
                            aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1))],
                            schema: final_schema.clone(),
                        }),
                        keys: vec![SortKey::asc(Expr::col(0))],
                        limit: None,
                    },
                    tasks: 2,
                    exchange: ExchangeMode::Gather,
                    output_schema: final_schema,
                },
            ],
        )
    }

    #[test]
    fn distributed_two_phase_aggregation_is_correct() {
        let cat = catalog();
        let shuffle = MemoryShuffle::new();
        let result = execute_query(&agg_plan(), 1, &cat, &shuffle);
        assert_eq!(result.num_rows(), 10);
        // Independently compute the expected totals.
        let mut expected = [0.0f64; 10];
        for k in 0..100i64 {
            expected[(k % 10) as usize] += k as f64 * 1.5;
        }
        // Result arrives as two gathered partitions; check as a map.
        let mut got = std::collections::HashMap::new();
        for i in 0..result.num_rows() {
            got.insert(result.columns[0].i64s()[i], result.columns[1].f64s()[i]);
        }
        for (cust, exp) in expected.iter().enumerate() {
            let v = got[&(cust as i64)];
            assert!((v - exp).abs() < 1e-9, "cust {cust}: {v} vs {exp}");
        }
        // Shuffle state cleaned up after the query.
        assert_eq!(shuffle.resident_bytes(), 0);
    }

    #[test]
    fn broadcast_join_plan_matches_partitioned_join_plan() {
        // The cross-check DESIGN.md commits to: a broadcast-join plan and a
        // partitioned-join plan must produce identical results.
        let cat = catalog();
        // Small dimension table: 10 customers.
        let dim_schema = Schema::shared(&[("c_key", DataType::I64), ("c_name", DataType::Str)]);
        let dim = Batch::new(
            dim_schema.clone(),
            vec![
                Column::from_i64((0..10).collect()),
                Column::from_str_vec((0..10).map(|i| format!("cust{i}")).collect()),
            ],
        );
        cat.register(Table::new("customer", dim_schema.clone(), vec![dim]));

        let join_schema = Schema::shared(&[
            ("o_key", DataType::I64),
            ("o_cust", DataType::I64),
            ("o_total", DataType::F64),
            ("c_key", DataType::I64),
            ("c_name", DataType::Str),
        ]);
        let sorted = |input: PlanNode| PlanNode::Sort {
            input: Box::new(input),
            keys: vec![SortKey::asc(Expr::col(0))],
            limit: None,
        };

        // Broadcast plan: stage 0 broadcasts customer; stage 1 joins
        // against scanned orders and gathers.
        let broadcast = StageDag::new(
            "bcast",
            vec![
                crate::plan::Stage {
                    id: 0,
                    root: PlanNode::Scan {
                        table: "customer".into(),
                        filter: None,
                        projection: None,
                    },
                    tasks: 1,
                    exchange: ExchangeMode::Broadcast,
                    output_schema: dim_schema.clone(),
                },
                crate::plan::Stage {
                    id: 1,
                    root: sorted(PlanNode::HashJoin {
                        build: Box::new(PlanNode::BroadcastRead { stage: 0 }),
                        probe: Box::new(PlanNode::Scan {
                            table: "orders".into(),
                            filter: None,
                            projection: None,
                        }),
                        build_keys: vec![Expr::col(0)],
                        probe_keys: vec![Expr::col(1)],
                        join_type: JoinType::Inner,
                        schema: join_schema.clone(),
                    }),
                    tasks: 1,
                    exchange: ExchangeMode::Gather,
                    output_schema: join_schema.clone(),
                },
            ],
        );

        // Partitioned plan: both sides hash-exchanged on the key.
        let orders_schema = cat.get("orders").schema.clone();
        let partitioned = StageDag::new(
            "part",
            vec![
                crate::plan::Stage {
                    id: 0,
                    root: PlanNode::Scan {
                        table: "customer".into(),
                        filter: None,
                        projection: None,
                    },
                    tasks: 1,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(0)],
                        partitions: 3,
                    },
                    output_schema: dim_schema,
                },
                crate::plan::Stage {
                    id: 1,
                    root: PlanNode::Scan {
                        table: "orders".into(),
                        filter: None,
                        projection: None,
                    },
                    tasks: 2,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(1)],
                        partitions: 3,
                    },
                    output_schema: orders_schema,
                },
                crate::plan::Stage {
                    id: 2,
                    root: PlanNode::HashJoin {
                        build: Box::new(PlanNode::ShuffleRead { stage: 0 }),
                        probe: Box::new(PlanNode::ShuffleRead { stage: 1 }),
                        build_keys: vec![Expr::col(0)],
                        probe_keys: vec![Expr::col(1)],
                        join_type: JoinType::Inner,
                        schema: join_schema.clone(),
                    },
                    tasks: 3,
                    exchange: ExchangeMode::Hash {
                        keys: vec![Expr::col(0)],
                        partitions: 1,
                    },
                    output_schema: join_schema.clone(),
                },
                crate::plan::Stage {
                    id: 3,
                    root: sorted(PlanNode::ShuffleRead { stage: 2 }),
                    tasks: 1,
                    exchange: ExchangeMode::Gather,
                    output_schema: join_schema,
                },
            ],
        );

        let s1 = MemoryShuffle::new();
        let s2 = MemoryShuffle::new();
        let r1 = execute_query(&broadcast, 1, &cat, &s1);
        let r2 = execute_query(&partitioned, 2, &cat, &s2);
        assert_eq!(r1.num_rows(), 100);
        assert_eq!(r1, r2);
    }

    #[test]
    fn filter_and_topk() {
        let cat = catalog();
        let schema = cat.get("orders").schema.clone();
        let dag = StageDag::new(
            "topk",
            vec![crate::plan::Stage {
                id: 0,
                root: PlanNode::Sort {
                    input: Box::new(PlanNode::Filter {
                        input: Box::new(PlanNode::Scan {
                            table: "orders".into(),
                            filter: None,
                            projection: None,
                        }),
                        predicate: Expr::col(1).eq(Expr::lit_i64(3)),
                    }),
                    keys: vec![SortKey::desc(Expr::col(2))],
                    limit: Some(3),
                },
                tasks: 1,
                exchange: ExchangeMode::Gather,
                output_schema: schema,
            }],
        );
        let r = execute_query(&dag, 3, &cat, &MemoryShuffle::new());
        assert_eq!(r.num_rows(), 3);
        // Largest o_key with o_cust == 3 is 93.
        assert_eq!(r.columns[0].i64s(), &[93, 83, 73]);
    }

    #[test]
    fn scan_filter_pushdown_and_projection() {
        let cat = catalog();
        let out = Schema::shared(&[("o_total", DataType::F64)]);
        let dag = StageDag::new(
            "proj",
            vec![crate::plan::Stage {
                id: 0,
                root: PlanNode::Scan {
                    table: "orders".into(),
                    filter: Some(Expr::col(0).lt(Expr::lit_i64(5))),
                    projection: Some(vec![2]),
                },
                tasks: 2,
                exchange: ExchangeMode::Gather,
                output_schema: out,
            }],
        );
        let r = execute_query(&dag, 4, &cat, &MemoryShuffle::new());
        assert_eq!(r.num_rows(), 5);
        assert_eq!(r.num_columns(), 1);
    }

    #[test]
    fn format_batch_renders() {
        let cat = catalog();
        let b = cat.get("orders").partitions[0].clone();
        let s = format_batch(&b, 2);
        assert!(s.contains("o_key"));
        assert!(s.contains("... (25 rows total)"));
    }
}
