//! # cackle-engine — vectorized relational query engine
//!
//! A from-scratch analytical query engine in the style of Starling: physical
//! plans are DAGs of *stages*, each stage runs as one or more *tasks* that
//! execute to completion, and intermediate data moves between stages through
//! a pluggable shuffle transport (in-memory shuffle nodes or a cloud object
//! store). See `DESIGN.md` §3.2 for the inventory.
//!
//! ```
//! use cackle_engine::prelude::*;
//!
//! // Build a one-stage plan that scans and sorts a tiny table.
//! let schema = Schema::shared(&[("k", DataType::I64)]);
//! let batch = Batch::new(schema.clone(), vec![Column::from_i64(vec![3, 1, 2])]);
//! let catalog = Catalog::new();
//! catalog.register(Table::new("t", schema.clone(), vec![batch]));
//! let dag = StageDag::new(
//!     "sorted",
//!     vec![Stage {
//!         id: 0,
//!         root: PlanNode::Sort {
//!             input: Box::new(PlanNode::Scan {
//!                 table: "t".into(), filter: None, projection: None,
//!             }),
//!             keys: vec![SortKey::asc(Expr::col(0))],
//!             limit: None,
//!         },
//!         tasks: 1,
//!         exchange: ExchangeMode::Gather,
//!         output_schema: schema,
//!     }],
//! );
//! let result = execute_query(&dag, 1, &catalog, &MemoryShuffle::new());
//! assert_eq!(result.columns[0].i64s(), &[1, 2, 3]);
//! ```

pub mod batch;
pub mod codec;
pub mod column;
pub mod executor;
pub mod explain;
pub mod expr;
pub mod kernels;
pub mod ops;
pub mod plan;
pub mod reference;
pub mod rowkey;
pub mod schema;
pub mod shuffle;
pub mod table;
pub mod task;
pub mod types;

pub use batch::{Batch, BatchView, BATCH_SIZE};
pub use column::{Column, ColumnData, ColumnSlice};
pub use expr::{predicate_mask, predicate_mask_into, BinOp, Expr, LikePattern};
pub use schema::{Field, Schema, SchemaRef};
pub use types::{date, DataType, Value};

/// Common imports for plan construction and execution.
pub mod prelude {
    pub use crate::batch::Batch;
    pub use crate::column::{Column, ColumnData};
    pub use crate::executor::Executor;
    pub use crate::expr::{BinOp, Expr, LikePattern};
    pub use crate::ops::aggregate::{AggExpr, AggFunc};
    pub use crate::ops::join::JoinType;
    pub use crate::ops::sort::SortKey;
    pub use crate::plan::{ExchangeMode, PlanNode, Stage, StageDag, StageId};
    pub use crate::schema::{Field, Schema, SchemaRef};
    pub use crate::shuffle::{MemoryShuffle, ShuffleKey, ShuffleStats, ShuffleTransport};
    pub use crate::table::{Catalog, Table};
    pub use crate::task::{
        execute_query, execute_task, execute_task_buffered, format_batch, BufferedTask,
        TaskContext, TaskExecution, TaskResult,
    };
    pub use crate::types::{date, DataType, Value};
}

/// The curated vectorized-kernel surface: typed columnar kernels plus the
/// scratch-buffer pool they draw from. Import this instead of reaching
/// into `kernels::*` submodules — it is the stable facade; submodule
/// layout may shift.
pub mod kernel_prelude {
    pub use crate::kernels::agg::{Accumulator, Grouper};
    pub use crate::kernels::hash::{FastBuildHasher, FastHasher};
    pub use crate::kernels::join::{probe_pairs, semi_anti_mask, KeyIndex};
    pub use crate::kernels::pool::{PoolStats, ScratchArena};
    pub use crate::kernels::scalar::{
        arith_col_scalar, binary_col_scalar, cmp_col_scalar, cmp_scalar_mask_into, like_mask,
    };
    pub use crate::kernels::select::{filter_batch, filter_project, selection_from_mask};
    pub use crate::kernels::sort::{sort_permutation, SortKeyCol};
}
