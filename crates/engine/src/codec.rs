//! Batch serialization for shuffle exchange.
//!
//! Every byte that crosses a stage boundary goes through this codec, so the
//! shuffle-volume accounting that drives the shuffle provisioner (§5.6)
//! reflects real serialized sizes. The format is a simple column-major
//! little-endian layout:
//!
//! ```text
//! u32 num_columns | u32 num_rows | columns...
//! column: u8 type_tag | u8 has_validity | [validity bitmap] | payload
//! ```
//!
//! Strings are encoded as a u32 offset table plus a byte blob. The decoder
//! validates tags against the expected schema.

use crate::batch::Batch;
use crate::column::{Column, ColumnData};
use crate::schema::SchemaRef;
use crate::types::DataType;

/// Little-endian append helpers over a plain byte vector.
trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_i32_le(&mut self, v: i32);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, v: &[u8]);
}

impl PutLe for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// A bounds-checked little-endian reader over a byte slice. Panics on
/// truncated input, matching the decoder's corrupt-payload contract.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(self.pos + n <= self.data.len(), "truncated shuffle payload");
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        out
    }
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap_or([0; 4]))
    }
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().unwrap_or([0; 4]))
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap_or([0; 8]))
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap_or([0; 8]))
    }
}

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::I64 => 0,
        DataType::F64 => 1,
        DataType::Str => 2,
        DataType::Date => 3,
        DataType::Bool => 4,
    }
}

/// Serialize a batch (schema names are not encoded; the receiving stage
/// knows its input schema from the plan).
pub fn encode_batch(batch: &Batch) -> Vec<u8> {
    // Headroom beyond the payload estimate for the batch header and
    // per-column tag/validity/length framing.
    const FRAMING_SLACK_BYTES: usize = 64;
    let mut buf = Vec::with_capacity(batch.byte_size() as usize + FRAMING_SLACK_BYTES);
    buf.put_u32_le(batch.num_columns() as u32);
    // The wire format stores row counts as u32; batches are chunked
    // far below 2^32 rows.
    // cackle-lint: allow(L15) — u32 row count is the wire format
    buf.put_u32_le(batch.num_rows() as u32);
    for col in &batch.columns {
        buf.put_u8(type_tag(col.data_type()));
        match &col.validity {
            Some(mask) => {
                buf.put_u8(1);
                // Bit-packed validity.
                let mut byte = 0u8;
                for (i, &v) in mask.iter().enumerate() {
                    if v {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        buf.put_u8(byte);
                        byte = 0;
                    }
                }
                if mask.len() % 8 != 0 {
                    buf.put_u8(byte);
                }
            }
            None => buf.put_u8(0),
        }
        match &col.data {
            ColumnData::I64(v) => {
                for &x in v {
                    buf.put_i64_le(x);
                }
            }
            ColumnData::F64(v) => {
                for &x in v {
                    buf.put_f64_le(x);
                }
            }
            ColumnData::Date(v) => {
                for &x in v {
                    buf.put_i32_le(x);
                }
            }
            ColumnData::Bool(v) => {
                for &x in v {
                    buf.put_u8(x as u8);
                }
            }
            ColumnData::Str(v) => {
                let total: usize = v.iter().map(|s| s.len()).sum();
                buf.put_u32_le(total as u32);
                for s in v {
                    buf.put_u32_le(s.len() as u32);
                }
                for s in v {
                    buf.put_slice(s.as_bytes());
                }
            }
        }
    }
    buf
}

/// Decode one column's value buffer. Each `collect` pre-sizes from the
/// range's exact length; this is the column's one-time output
/// allocation, not a per-row temporary.
fn decode_column_data(buf: &mut Reader<'_>, expected: DataType, nrows: usize) -> ColumnData {
    match expected {
        DataType::I64 => ColumnData::I64((0..nrows).map(|_| buf.get_i64_le()).collect()),
        DataType::F64 => ColumnData::F64((0..nrows).map(|_| buf.get_f64_le()).collect()),
        DataType::Date => ColumnData::Date((0..nrows).map(|_| buf.get_i32_le()).collect()),
        DataType::Bool => ColumnData::Bool((0..nrows).map(|_| buf.get_u8() != 0).collect()),
        DataType::Str => {
            let _total = buf.get_u32_le();
            let lens: Vec<usize> = (0..nrows).map(|_| buf.get_u32_le() as usize).collect();
            let strs = lens
                .iter()
                .map(|&len| String::from_utf8_lossy(buf.take(len)).into_owned())
                .collect();
            ColumnData::Str(strs)
        }
    }
}

/// Deserialize a batch against its known schema. Panics on corrupt input or
/// schema mismatch (shuffle payloads are engine-internal).
pub fn decode_batch(data: &[u8], schema: SchemaRef) -> Batch {
    let mut buf = Reader { data, pos: 0 };
    let ncols = buf.get_u32_le() as usize;
    let nrows = buf.get_u32_le() as usize;
    assert_eq!(ncols, schema.len(), "shuffle payload width != schema");
    let mut columns = Vec::with_capacity(ncols);
    for ci in 0..ncols {
        let tag = buf.get_u8();
        let expected = schema.field(ci).dtype;
        assert_eq!(tag, type_tag(expected), "column {ci} type tag mismatch");
        let has_validity = buf.get_u8() == 1;
        let validity = if has_validity {
            let nbytes = nrows.div_ceil(8);
            let mut mask = Vec::with_capacity(nrows);
            let mut bytes_read = Vec::with_capacity(nbytes);
            for _ in 0..nbytes {
                bytes_read.push(buf.get_u8());
            }
            for i in 0..nrows {
                mask.push(bytes_read[i / 8] & (1 << (i % 8)) != 0);
            }
            Some(mask)
        } else {
            None
        };
        let data = decode_column_data(&mut buf, expected, nrows);
        columns.push(match validity {
            Some(m) => Column::with_validity(data, m),
            None => Column::new(data),
        });
    }
    Batch::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::Value;

    fn roundtrip(batch: &Batch) -> Batch {
        decode_batch(&encode_batch(batch), batch.schema.clone())
    }

    #[test]
    fn all_types_roundtrip() {
        let schema = Schema::shared(&[
            ("a", DataType::I64),
            ("b", DataType::F64),
            ("c", DataType::Str),
            ("d", DataType::Date),
            ("e", DataType::Bool),
        ]);
        let b = Batch::new(
            schema,
            vec![
                Column::from_i64(vec![i64::MIN, 0, i64::MAX]),
                Column::from_f64(vec![-1.5, 0.0, f64::MAX]),
                Column::from_str_vec(vec!["".into(), "héllo".into(), "x".repeat(1000)]),
                Column::from_date(vec![-1, 0, 20000]),
                Column::from_bool(vec![true, false, true]),
            ],
        );
        assert_eq!(roundtrip(&b), b);
    }

    #[test]
    fn validity_roundtrips_bit_packed() {
        let schema = Schema::shared(&[("a", DataType::I64)]);
        // 17 rows forces a partial final validity byte.
        let mask: Vec<bool> = (0..17).map(|i| i % 3 != 0).collect();
        let b = Batch::new(
            schema,
            vec![Column::with_validity(
                ColumnData::I64((0..17).collect()),
                mask.clone(),
            )],
        );
        let d = roundtrip(&b);
        for (i, &m) in mask.iter().enumerate() {
            assert_eq!(d.columns[0].is_valid(i), m, "row {i}");
            if m {
                assert_eq!(d.columns[0].value(i), Value::I64(i as i64));
            }
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let schema = Schema::shared(&[("a", DataType::Str)]);
        let b = Batch::empty(schema);
        assert_eq!(roundtrip(&b).num_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "type tag mismatch")]
    fn schema_mismatch_detected() {
        let schema = Schema::shared(&[("a", DataType::I64)]);
        let b = Batch::new(schema, vec![Column::from_i64(vec![1])]);
        let wrong = Schema::shared(&[("a", DataType::Str)]);
        decode_batch(&encode_batch(&b), wrong);
    }

    #[test]
    fn encoded_size_tracks_payload() {
        let schema = Schema::shared(&[("a", DataType::I64)]);
        let small = encode_batch(&Batch::new(schema.clone(), vec![Column::from_i64(vec![1])]));
        let big = encode_batch(&Batch::new(
            schema,
            vec![Column::from_i64((0..1000).collect())],
        ));
        assert!(big.len() > small.len() * 100);
        assert_eq!(big.len(), 8 + 2 + 1000 * 8);
    }
}
