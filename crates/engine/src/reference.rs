//! Row-at-a-time reference implementations — the differential-test oracle.
//!
//! Before the vectorized kernels ([`crate::kernels`]) the engine
//! broadcast every literal into a full column and ran operators row by
//! row through [`Value`]. Those originals live on here, self-contained,
//! for two jobs:
//!
//! * differential tests assert the kernelized operators produce
//!   byte-identical batches (`tests/kernel_differential.rs`);
//! * `bench_operator_throughput` measures kernel speedups against them.
//!
//! Everything is `row_`-prefixed: lint L14's hot-path domain is built
//! from a *name-based* call graph, and unique names keep this module —
//! which is deliberately the slow, allocate-per-row path — out of it.

use crate::batch::Batch;
use crate::column::{Column, ColumnData};
use crate::expr::{BinOp, Expr};
use crate::ops::aggregate::{values_to_column, AggExpr, AggFunc};
use crate::ops::join::JoinType;
use crate::ops::sort::SortKey;
use crate::rowkey::encode_row;
use crate::schema::SchemaRef;
use crate::types::{date, DataType, Value};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Broadcast a literal into a full column of `n` rows — the legacy
/// representation of a literal operand (a `String` clone per row for
/// string literals).
pub fn row_broadcast_literal(v: &Value, n: usize) -> Column {
    match v {
        Value::Null => Column::nulls(DataType::I64, n),
        Value::I64(x) => Column::from_i64(vec![*x; n]),
        Value::F64(x) => Column::from_f64(vec![*x; n]),
        Value::Str(x) => Column::from_str_vec(vec![x.clone(); n]),
        Value::Date(x) => Column::from_date(vec![*x; n]),
        Value::Bool(x) => Column::from_bool(vec![*x; n]),
    }
}

/// Evaluate an expression the pre-kernel way: literals broadcast, both
/// binary operands fully materialized, CASE branches evaluated as full
/// columns.
pub fn row_eval(expr: &Expr, batch: &Batch) -> Column {
    let n = batch.num_rows();
    match expr {
        Expr::Col(i) => batch.columns[*i].clone(),
        Expr::Lit(v) => row_broadcast_literal(v, n),
        Expr::Binary { op, lhs, rhs } => {
            let l = row_eval(lhs, batch);
            let r = row_eval(rhs, batch);
            row_eval_binary(*op, &l, &r)
        }
        Expr::Not(e) => {
            let c = row_eval(e, batch);
            let vals = c.bools().iter().map(|b| !b).collect();
            Column {
                data: ColumnData::Bool(vals),
                validity: c.validity.clone(),
            }
        }
        Expr::IsNull(e) => {
            let c = row_eval(e, batch);
            let vals = (0..n).map(|i| !c.is_valid(i)).collect();
            Column::from_bool(vals)
        }
        Expr::Case {
            branches,
            else_expr,
        } => row_eval_case(batch, branches, else_expr),
        Expr::Like {
            input,
            pattern,
            negated,
        } => {
            let c = row_eval(input, batch);
            let vals = c
                .strs()
                .iter()
                .map(|s| pattern.matches(s) != *negated)
                .collect();
            Column {
                data: ColumnData::Bool(vals),
                validity: c.validity.clone(),
            }
        }
        Expr::InList { input, list } => {
            let c = row_eval(input, batch);
            let vals = (0..n)
                .map(|i| {
                    let v = c.value(i);
                    list.iter()
                        .any(|item| v.sql_cmp(item) == Some(Ordering::Equal))
                })
                .collect();
            Column {
                data: ColumnData::Bool(vals),
                validity: c.validity.clone(),
            }
        }
        Expr::ExtractYear(e) => {
            let c = row_eval(e, batch);
            let vals = c.dates().iter().map(|&d| date::year_of(d) as i64).collect();
            Column {
                data: ColumnData::I64(vals),
                validity: c.validity.clone(),
            }
        }
        Expr::Substr { input, start, len } => {
            let c = row_eval(input, batch);
            let vals = c
                .strs()
                .iter()
                .map(|s| {
                    let from = (start - 1).min(s.len());
                    let to = (from + len).min(s.len());
                    s[from..to].to_string()
                })
                .collect();
            Column {
                data: ColumnData::Str(vals),
                validity: c.validity.clone(),
            }
        }
        Expr::Coalesce(exprs) => {
            let mut rest = exprs.iter().map(|e| row_eval(e, batch));
            let first = rest.next().expect("COALESCE of nothing");
            match first.validity {
                None => first,
                Some(mut validity) => {
                    let mut data = first.data;
                    for alt in rest {
                        if validity.iter().all(|&v| v) {
                            break;
                        }
                        for i in 0..n {
                            if !validity[i] && alt.is_valid(i) {
                                row_copy_row(&mut data, &alt, i);
                                validity[i] = true;
                            }
                        }
                    }
                    Column::with_validity(data, validity)
                }
            }
        }
        Expr::Cast { input, to } => {
            let c = row_eval(input, batch);
            row_cast_column(&c, *to)
        }
    }
}

/// The legacy keep-mask: evaluate the predicate and fold nulls to false.
pub fn row_predicate_mask(pred: &Expr, batch: &Batch) -> Vec<bool> {
    let c = row_eval(pred, batch);
    let bools = c.bools();
    (0..batch.num_rows())
        .map(|i| c.is_valid(i) && bools[i])
        .collect()
}

fn row_copy_row(dst: &mut ColumnData, src: &Column, i: usize) {
    match (dst, &src.data) {
        (ColumnData::I64(d), ColumnData::I64(s)) => d[i] = s[i],
        (ColumnData::F64(d), ColumnData::F64(s)) => d[i] = s[i],
        (ColumnData::Str(d), ColumnData::Str(s)) => d[i] = s[i].clone(),
        (ColumnData::Date(d), ColumnData::Date(s)) => d[i] = s[i],
        (ColumnData::Bool(d), ColumnData::Bool(s)) => d[i] = s[i],
        (d, s) => panic!(
            "COALESCE type mismatch {} vs {}",
            d.data_type(),
            s.data_type()
        ),
    }
}

fn row_merged_validity(l: &Column, r: &Column) -> Option<Vec<bool>> {
    match (&l.validity, &r.validity) {
        (None, None) => None,
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (Some(a), Some(b)) => Some(a.iter().zip(b).map(|(x, y)| *x && *y).collect()),
    }
}

fn row_eval_binary(op: BinOp, l: &Column, r: &Column) -> Column {
    use BinOp::*;
    match op {
        And | Or => row_eval_kleene(op, l, r),
        Add | Sub | Mul | Div | Mod => row_eval_arith(op, l, r),
        Eq | Neq | Lt | LtEq | Gt | GtEq => row_eval_cmp(op, l, r),
    }
}

fn row_eval_kleene(op: BinOp, l: &Column, r: &Column) -> Column {
    let lb = l.bools();
    let rb = r.bools();
    let n = lb.len();
    let mut vals = Vec::with_capacity(n);
    let mut validity = Vec::with_capacity(n);
    for i in 0..n {
        let lv = l.is_valid(i);
        let rv = r.is_valid(i);
        let (out, valid) = match op {
            BinOp::And => {
                if (lv && !lb[i]) || (rv && !rb[i]) {
                    (false, true)
                } else if lv && rv {
                    (lb[i] && rb[i], true)
                } else {
                    (false, false)
                }
            }
            BinOp::Or => {
                if (lv && lb[i]) || (rv && rb[i]) {
                    (true, true)
                } else if lv && rv {
                    (lb[i] || rb[i], true)
                } else {
                    (false, false)
                }
            }
            _ => unreachable!(),
        };
        vals.push(out);
        validity.push(valid);
    }
    Column::with_validity(ColumnData::Bool(vals), validity)
}

fn row_eval_arith(op: BinOp, l: &Column, r: &Column) -> Column {
    let validity = row_merged_validity(l, r);
    let data = match (&l.data, &r.data, op) {
        (ColumnData::I64(a), ColumnData::I64(b), BinOp::Div) => ColumnData::F64(
            a.iter()
                .zip(b)
                .map(|(x, y)| *x as f64 / *y as f64)
                .collect(),
        ),
        (ColumnData::I64(a), ColumnData::I64(b), BinOp::Mod) => {
            ColumnData::I64(a.iter().zip(b).map(|(x, y)| x % y).collect())
        }
        (ColumnData::I64(a), ColumnData::I64(b), _) => ColumnData::I64(
            a.iter()
                .zip(b)
                .map(|(x, y)| row_apply_i64(op, *x, *y))
                .collect(),
        ),
        (ColumnData::Date(a), ColumnData::I64(b), BinOp::Add) => {
            ColumnData::Date(a.iter().zip(b).map(|(x, y)| x + *y as i32).collect())
        }
        (ColumnData::Date(a), ColumnData::I64(b), BinOp::Sub) => {
            ColumnData::Date(a.iter().zip(b).map(|(x, y)| x - *y as i32).collect())
        }
        (a, b, _) => {
            let af = row_to_f64_vec(a);
            let bf = row_to_f64_vec(b);
            ColumnData::F64(
                af.iter()
                    .zip(&bf)
                    .map(|(x, y)| row_apply_f64(op, *x, *y))
                    .collect(),
            )
        }
    };
    match validity {
        Some(v) => Column::with_validity(data, v),
        None => Column::new(data),
    }
}

fn row_apply_i64(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        _ => unreachable!(),
    }
}

fn row_apply_f64(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Mod => x % y,
        _ => unreachable!(),
    }
}

fn row_to_f64_vec(d: &ColumnData) -> Vec<f64> {
    match d {
        ColumnData::I64(v) => v.iter().map(|&x| x as f64).collect(),
        ColumnData::F64(v) => v.clone(),
        ColumnData::Date(v) => v.iter().map(|&x| x as f64).collect(),
        other => panic!("cannot coerce {} to f64", other.data_type()),
    }
}

fn row_eval_cmp(op: BinOp, l: &Column, r: &Column) -> Column {
    let validity = row_merged_validity(l, r);
    let want = |o: Ordering| match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::Neq => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::LtEq => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::GtEq => o != Ordering::Less,
        _ => unreachable!(),
    };
    let vals: Vec<bool> = match (&l.data, &r.data) {
        (ColumnData::I64(a), ColumnData::I64(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (ColumnData::Date(a), ColumnData::Date(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (ColumnData::F64(a), ColumnData::F64(b)) => a
            .iter()
            .zip(b)
            .map(|(x, y)| x.partial_cmp(y).is_some_and(&want))
            .collect(),
        (ColumnData::Str(a), ColumnData::Str(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (ColumnData::Bool(a), ColumnData::Bool(b)) => {
            a.iter().zip(b).map(|(x, y)| want(x.cmp(y))).collect()
        }
        (a, b) => {
            let af = row_to_f64_vec(a);
            let bf = row_to_f64_vec(b);
            af.iter()
                .zip(&bf)
                .map(|(x, y)| x.partial_cmp(y).is_some_and(&want))
                .collect()
        }
    };
    match validity {
        Some(v) => Column::with_validity(ColumnData::Bool(vals), v),
        None => Column::new(ColumnData::Bool(vals)),
    }
}

fn row_eval_case(
    batch: &Batch,
    branches: &[(Expr, Expr)],
    else_expr: &Option<Box<Expr>>,
) -> Column {
    let n = batch.num_rows();
    let results: Vec<(Column, Column)> = branches
        .iter()
        .map(|(c, r)| (row_eval(c, batch), row_eval(r, batch)))
        .collect();
    let else_col = else_expr.as_ref().map(|e| row_eval(e, batch));
    let proto = &results.first().expect("CASE with no branches").1;
    let mut data = match &proto.data {
        ColumnData::I64(_) => ColumnData::I64(vec![0; n]),
        ColumnData::F64(_) => ColumnData::F64(vec![0.0; n]),
        ColumnData::Str(_) => ColumnData::Str(vec![String::new(); n]),
        ColumnData::Date(_) => ColumnData::Date(vec![0; n]),
        ColumnData::Bool(_) => ColumnData::Bool(vec![false; n]),
    };
    let mut validity = vec![false; n];
    #[allow(clippy::needless_range_loop)] // indexes three parallel structures
    for i in 0..n {
        let mut matched = false;
        for (cond, res) in &results {
            if cond.is_valid(i) && cond.bools()[i] {
                if res.is_valid(i) {
                    row_copy_row(&mut data, res, i);
                    validity[i] = true;
                }
                matched = true;
                break;
            }
        }
        if !matched {
            if let Some(e) = &else_col {
                if e.is_valid(i) {
                    row_copy_row(&mut data, e, i);
                    validity[i] = true;
                }
            }
        }
    }
    Column::with_validity(data, validity)
}

fn row_cast_column(c: &Column, to: DataType) -> Column {
    if c.data_type() == to {
        return c.clone();
    }
    let data = match (&c.data, to) {
        (ColumnData::I64(v), DataType::F64) => {
            ColumnData::F64(v.iter().map(|&x| x as f64).collect())
        }
        (ColumnData::F64(v), DataType::I64) => {
            ColumnData::I64(v.iter().map(|&x| x as i64).collect())
        }
        (ColumnData::Date(v), DataType::I64) => {
            ColumnData::I64(v.iter().map(|&x| x as i64).collect())
        }
        (ColumnData::Bool(v), DataType::I64) => {
            ColumnData::I64(v.iter().map(|&x| x as i64).collect())
        }
        (from, to) => panic!("unsupported cast {} -> {to}", from.data_type()),
    };
    Column {
        data,
        validity: c.validity.clone(),
    }
}

/// Accumulator state for one (group, aggregate) pair — the legacy
/// enum-per-update representation.
#[derive(Debug, Clone)]
enum RowAggState {
    SumI64 { sum: i64, seen: bool },
    SumF64 { sum: f64, seen: bool },
    MinMax { best: Option<Value>, is_min: bool },
    Count(i64),
    Avg { sum: f64, count: i64 },
    Distinct(HashSet<Vec<u8>>),
}

fn row_agg_state(func: AggFunc, input_type: DataType) -> RowAggState {
    match func {
        AggFunc::Sum => match input_type {
            DataType::I64 => RowAggState::SumI64 {
                sum: 0,
                seen: false,
            },
            _ => RowAggState::SumF64 {
                sum: 0.0,
                seen: false,
            },
        },
        AggFunc::Min => RowAggState::MinMax {
            best: None,
            is_min: true,
        },
        AggFunc::Max => RowAggState::MinMax {
            best: None,
            is_min: false,
        },
        AggFunc::Count | AggFunc::CountStar => RowAggState::Count(0),
        AggFunc::Avg => RowAggState::Avg { sum: 0.0, count: 0 },
        AggFunc::CountDistinct => RowAggState::Distinct(HashSet::new()),
    }
}

fn row_agg_update(state: &mut RowAggState, func: AggFunc, col: &Column, row: usize) {
    let valid = col.is_valid(row);
    match state {
        RowAggState::Count(c) => {
            if func == AggFunc::CountStar || valid {
                *c += 1;
            }
        }
        RowAggState::SumI64 { sum, seen } => {
            if valid {
                *sum += col.i64s()[row];
                *seen = true;
            }
        }
        RowAggState::SumF64 { sum, seen } => {
            if valid {
                *sum += match &col.data {
                    ColumnData::F64(v) => v[row],
                    ColumnData::I64(v) => v[row] as f64,
                    other => panic!("cannot SUM {}", other.data_type()),
                };
                *seen = true;
            }
        }
        RowAggState::MinMax { best, is_min } => {
            if valid {
                let v = col.value(row);
                let replace = match best {
                    None => true,
                    Some(b) => {
                        let ord = v.sql_cmp(b).expect("comparable agg inputs");
                        if *is_min {
                            ord == Ordering::Less
                        } else {
                            ord == Ordering::Greater
                        }
                    }
                };
                if replace {
                    *best = Some(v);
                }
            }
        }
        RowAggState::Avg { sum, count } => {
            if valid {
                *sum += match &col.data {
                    ColumnData::F64(v) => v[row],
                    ColumnData::I64(v) => v[row] as f64,
                    other => panic!("cannot AVG {}", other.data_type()),
                };
                *count += 1;
            }
        }
        RowAggState::Distinct(set) => {
            if valid {
                set.insert(encode_row(&[col], row));
            }
        }
    }
}

fn row_agg_finish(state: RowAggState) -> Value {
    match state {
        RowAggState::Count(c) => Value::I64(c),
        RowAggState::SumI64 { sum, seen } => {
            if seen {
                Value::I64(sum)
            } else {
                Value::Null
            }
        }
        RowAggState::SumF64 { sum, seen } => {
            if seen {
                Value::F64(sum)
            } else {
                Value::Null
            }
        }
        RowAggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
        RowAggState::Avg { sum, count } => {
            if count > 0 {
                Value::F64(sum / count as f64)
            } else {
                Value::Null
            }
        }
        RowAggState::Distinct(set) => Value::I64(set.len() as i64),
    }
}

fn row_make_states(aggs: &[AggExpr], output: &SchemaRef) -> Vec<RowAggState> {
    let ngroup = output.len() - aggs.len();
    aggs.iter()
        .enumerate()
        .map(|(ai, a)| row_agg_state(a.func, output.field(ngroup + ai).dtype))
        .collect()
}

/// The legacy hash aggregation: an owned byte key per input row and a
/// `Vec<RowAggState>` per group, updated one (row, aggregate) at a time.
/// Contract matches `ops::aggregate::hash_aggregate` exactly.
pub fn row_hash_aggregate(
    batches: &[Batch],
    group_by: &[Expr],
    aggs: &[AggExpr],
    output: SchemaRef,
) -> Batch {
    assert_eq!(
        output.len(),
        group_by.len() + aggs.len(),
        "aggregate schema width"
    );
    let mut groups: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut group_rows: Vec<(usize, usize)> = Vec::new();
    let mut states: Vec<Vec<RowAggState>> = Vec::new();
    let global = group_by.is_empty();
    if global {
        groups.insert(Vec::new(), 0);
        group_rows.push((usize::MAX, 0));
        states.push(row_make_states(aggs, &output));
    }

    let key_cols_per_batch: Vec<Vec<Column>> = batches
        .iter()
        .map(|b| group_by.iter().map(|e| row_eval(e, b)).collect())
        .collect();
    let agg_cols_per_batch: Vec<Vec<Column>> = batches
        .iter()
        .map(|b| aggs.iter().map(|a| row_eval(&a.input, b)).collect())
        .collect();

    for (bi, b) in batches.iter().enumerate() {
        let key_cols: Vec<&Column> = key_cols_per_batch[bi].iter().collect();
        let agg_cols = &agg_cols_per_batch[bi];
        for row in 0..b.num_rows() {
            let gi = if global {
                0
            } else {
                let key = encode_row(&key_cols, row);
                match groups.entry(key) {
                    Entry::Occupied(o) => *o.get(),
                    Entry::Vacant(v) => {
                        let gi = states.len();
                        v.insert(gi);
                        group_rows.push((bi, row));
                        states.push(row_make_states(aggs, &output));
                        gi
                    }
                }
            };
            for (ai, agg) in aggs.iter().enumerate() {
                row_agg_update(&mut states[gi][ai], agg.func, &agg_cols[ai], row);
            }
        }
    }

    let ngroups = states.len();
    let mut out_cols: Vec<Column> = Vec::with_capacity(output.len());
    for (ci, _) in group_by.iter().enumerate() {
        let values: Vec<Value> = group_rows
            .iter()
            .map(|&(bi, row)| key_cols_per_batch[bi][ci].value(row))
            .collect();
        out_cols.push(values_to_column(&values, output.field(ci).dtype));
    }
    let mut per_agg: Vec<Vec<Value>> = vec![Vec::with_capacity(ngroups); aggs.len()];
    for group_states in states {
        for (ai, st) in group_states.into_iter().enumerate() {
            per_agg[ai].push(row_agg_finish(st));
        }
    }
    for (ai, values) in per_agg.into_iter().enumerate() {
        let dtype = output.field(group_by.len() + ai).dtype;
        out_cols.push(values_to_column(&values, dtype));
    }
    Batch::new(output, out_cols)
}

/// The legacy hash join: byte keys on both sides, an owned key encoded
/// per probe row. Contract matches `ops::join::hash_join` exactly.
pub fn row_hash_join(
    build_schema: SchemaRef,
    build: &[Batch],
    probe: &[Batch],
    build_keys: &[Expr],
    probe_keys: &[Expr],
    join_type: JoinType,
    output: SchemaRef,
) -> Vec<Batch> {
    let build = Batch::concat(build_schema, build);
    let key_cols: Vec<Column> = build_keys.iter().map(|e| row_eval(e, &build)).collect();
    let key_refs: Vec<&Column> = key_cols.iter().collect();
    let mut index: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
    'rows: for row in 0..build.num_rows() {
        for k in &key_refs {
            if !k.is_valid(row) {
                continue 'rows;
            }
        }
        index
            .entry(encode_row(&key_refs, row))
            .or_default()
            .push(row as u32);
    }
    probe
        .iter()
        .map(|p| row_probe(&index, &build, p, probe_keys, join_type, output.clone()))
        .collect()
}

fn row_probe(
    index: &HashMap<Vec<u8>, Vec<u32>>,
    build: &Batch,
    probe: &Batch,
    probe_keys: &[Expr],
    join_type: JoinType,
    output: SchemaRef,
) -> Batch {
    let key_cols: Vec<Column> = probe_keys.iter().map(|e| row_eval(e, probe)).collect();
    let key_refs: Vec<&Column> = key_cols.iter().collect();
    let n = probe.num_rows();
    match join_type {
        JoinType::Semi | JoinType::Anti => {
            let want_match = join_type == JoinType::Semi;
            let mask: Vec<bool> = (0..n)
                .map(|row| {
                    let valid = key_refs.iter().all(|k| k.is_valid(row));
                    let matched = valid && index.contains_key(&encode_row(&key_refs, row));
                    matched == want_match
                })
                .collect();
            let filtered = probe.filter(&mask);
            Batch::new(output, filtered.columns)
        }
        JoinType::Inner | JoinType::Left => {
            let mut probe_idx: Vec<usize> = Vec::with_capacity(n);
            let mut build_idx: Vec<usize> = Vec::with_capacity(n);
            let mut unmatched: Vec<usize> = match join_type {
                JoinType::Left => Vec::with_capacity(n),
                _ => Vec::new(),
            };
            for row in 0..n {
                let valid = key_refs.iter().all(|k| k.is_valid(row));
                let hits = if valid {
                    index.get(&encode_row(&key_refs, row))
                } else {
                    None
                };
                match hits {
                    Some(rows) => {
                        for &b in rows {
                            probe_idx.push(row);
                            build_idx.push(b as usize);
                        }
                    }
                    None => {
                        if join_type == JoinType::Left {
                            unmatched.push(row);
                        }
                    }
                }
            }
            let matched_probe = probe.take(&probe_idx);
            let matched_build = build.take(&build_idx);
            let mut columns: Vec<Column> = matched_probe
                .columns
                .into_iter()
                .chain(matched_build.columns)
                .collect();
            if join_type == JoinType::Left && !unmatched.is_empty() {
                let extra_probe = probe.take(&unmatched);
                let nulls: Vec<Column> = build
                    .schema
                    .fields
                    .iter()
                    .map(|f| Column::nulls(f.dtype, unmatched.len()))
                    .collect();
                let extras: Vec<Column> = extra_probe.columns.into_iter().chain(nulls).collect();
                columns = columns
                    .into_iter()
                    .zip(extras)
                    .map(|(a, b)| Column::concat(&[a, b]))
                    .collect();
            }
            Batch::new(output, columns)
        }
    }
}

fn row_cmp_values(a: &Value, b: &Value, descending: bool) -> Ordering {
    let ord = match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.sql_cmp(b).expect("comparable sort keys"),
    };
    if descending {
        ord.reverse()
    } else {
        ord
    }
}

/// The legacy sort: a [`Value`] materialized per comparison (a `String`
/// clone per string comparison). Contract matches `ops::sort::sort`.
pub fn row_sort(
    schema: SchemaRef,
    batches: &[Batch],
    keys: &[SortKey],
    limit: Option<usize>,
) -> Batch {
    let all = Batch::concat(schema, batches);
    let n = all.num_rows();
    let key_cols: Vec<_> = keys.iter().map(|k| row_eval(&k.expr, &all)).collect();
    let mut indices: Vec<usize> = (0..n).collect();
    indices.sort_by(|&a, &b| {
        for (k, col) in keys.iter().zip(&key_cols) {
            let ord = row_cmp_values(&col.value(a), &col.value(b), k.descending);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b)
    });
    if let Some(l) = limit {
        indices.truncate(l);
    }
    all.take(&indices)
}
