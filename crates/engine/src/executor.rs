//! Deterministic worker-pool stage executor.
//!
//! A Cackle stage fans its tasks out across many workers at once (Lambda
//! invocations in the paper; Starling runs hundreds of cloud-function
//! tasks concurrently). This module is the one blessed home of threads in
//! the workspace (`cackle-lint` L6 flags `std::thread` anywhere else):
//! it runs all ready tasks of a stage on a small `std::thread` pool while
//! keeping every run byte-identical for *any* worker count, including 1.
//!
//! Determinism comes from structure, not luck:
//!
//! * **Fixed work-item ordering.** The work list is the stage's task
//!   indices `0..tasks`; workers claim indices from a shared atomic
//!   counter, but results land in index-addressed slots, so the output
//!   vector is always in task order no matter which worker ran what.
//! * **Buffered publication.** The parallel phase only *computes*: each
//!   task materializes its operator tree and buffers its exchange chunks
//!   ([`execute_task_buffered`]). Shuffle writes are published serially
//!   at the stage barrier in task-index order — node-tier placement is
//!   first-come-first-served, so publication order must not depend on
//!   thread scheduling.
//! * **Sharded telemetry.** Each task records into a private registry
//!   shard; shards merge into the main sink at the barrier in task order
//!   ([`Telemetry::merge`]). Every worker count — including 1 — goes
//!   through the shard path, so the merged registry is identical at
//!   `workers = 1, 2, 8`.
//! * **Keyed fault draws.** Injection points reachable from task code
//!   (transport reads/writes, store GET/PUT) draw from streams keyed by
//!   the operation's stable identity, never from a shared sequential
//!   stream (`cackle-faults`), so draws are dispatch-order-independent.
//!
//! Worker count is therefore a pure throughput knob — it is deliberately
//! *not* part of the seed, and changing it must not move a single byte
//! of any report or telemetry dump (`tests/determinism.rs` enforces
//! this at workers = 1, 2, 8).

use crate::batch::Batch;
use crate::plan::{StageDag, StageId};
use crate::shuffle::ShuffleTransport;
use crate::table::Catalog;
use crate::task::{TaskContext, TaskExecution, TaskResult};
use cackle_faults::FaultInjector;
use cackle_telemetry::Telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// Compile-time proof that everything a worker closure captures can cross
// threads (`dyn ShuffleTransport` is `Send + Sync` by declaration).
#[allow(dead_code)]
fn assert_sync<T: ?Sized + Sync>() {}
const _: () = {
    let _ = assert_sync::<StageDag>;
    let _ = assert_sync::<Catalog>;
    let _ = assert_sync::<dyn ShuffleTransport>;
    let _ = assert_sync::<Telemetry>;
    let _ = assert_sync::<FaultInjector>;
};

/// A deterministic worker pool. Cheap to construct; holds no threads —
/// each [`Executor::run_indexed`] call spins up scoped workers and joins
/// them before returning.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: u32,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(1)
    }
}

impl Executor {
    /// An executor with `workers` threads (`0` is treated as `1`).
    pub fn new(workers: u32) -> Self {
        Executor {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Run `f(0..n)` across the pool and return the results **in index
    /// order**. Workers claim indices dynamically from an atomic counter
    /// (load balancing), but each result lands in its index's slot, so
    /// the returned vector is independent of scheduling. With one worker
    /// (or one item) this is a plain serial loop on the caller's thread.
    ///
    /// `f` must be safe to call from multiple threads at once; any
    /// cross-index effects it has must be order-independent (commutative
    /// counters, keyed draws) or buffered for the caller to apply in
    /// index order after the pool joins.
    pub fn run_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.workers == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..(self.workers as usize).min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(r);
                    }
                });
            }
        });
        // The scope propagates worker panics, so every slot is filled
        // here; flatten instead of unwrapping keeps this panic-free.
        slots
            .into_iter()
            .filter_map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect()
    }

    /// Execute every task of one stage: the parallel phase computes and
    /// buffers, then the serial barrier phase publishes shuffle writes
    /// and merges telemetry shards in task-index order. Returns the
    /// per-task results in task order.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_stage(
        &self,
        dag: &StageDag,
        stage_id: StageId,
        query_id: u64,
        catalog: &Catalog,
        shuffle: &dyn ShuffleTransport,
        telemetry: &Telemetry,
        faults: &FaultInjector,
    ) -> Vec<TaskResult> {
        let tasks = dag.stages[stage_id].tasks as usize;
        let ran = self.run_indexed(tasks, |i| {
            // Each task records into a private telemetry shard — merged
            // below in task order — so the main registry never observes
            // scheduling order. Worker count 1 takes the same path:
            // that is what makes all worker counts byte-identical.
            let shard = if telemetry.is_enabled() {
                Telemetry::new()
            } else {
                Telemetry::disabled()
            };
            let mut ctx = TaskContext::new(dag, stage_id, i as u32, query_id, catalog, shuffle);
            ctx.telemetry = shard.clone();
            ctx.faults = faults.clone();
            (TaskExecution::new(&ctx).run_buffered(), shard)
        });
        let mut results = Vec::with_capacity(ran.len());
        for (task, (buffered, shard)) in ran.into_iter().enumerate() {
            for (key, data) in buffered.writes {
                shuffle.write(key, task as u32, data);
            }
            telemetry.merge(&shard);
            results.push(buffered.result);
        }
        results
    }

    /// Execute every stage of a plan in dependency order (stages are
    /// barriers), gathering the final stage's output. The parallel
    /// counterpart of [`crate::task::execute_query`].
    pub fn execute_query(
        &self,
        dag: &StageDag,
        query_id: u64,
        catalog: &Catalog,
        shuffle: &dyn ShuffleTransport,
    ) -> Batch {
        let mut gathered: Vec<Batch> = Vec::new();
        for stage in &dag.stages {
            let results = self.execute_stage(
                dag,
                stage.id,
                query_id,
                catalog,
                shuffle,
                &Telemetry::disabled(),
                &FaultInjector::disabled(),
            );
            for r in results {
                if let Some(batches) = r.output {
                    gathered.extend(batches);
                }
            }
        }
        shuffle.delete_query(query_id);
        let schema = dag.final_stage().output_schema.clone();
        Batch::concat(schema, &gathered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_batch;
    use crate::task::execute_query;

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        for workers in [1, 2, 3, 8, 16] {
            let ex = Executor::new(workers);
            let out = ex.run_indexed(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        // Degenerate sizes.
        assert_eq!(Executor::new(8).run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(Executor::new(8).run_indexed(1, |i| i), vec![0]);
        // Zero workers behaves as one.
        assert_eq!(Executor::new(0).workers(), 1);
    }

    #[test]
    fn parallel_query_matches_serial_query_bytes() {
        // The tentpole contract at engine level: the executor's gathered
        // output is byte-identical to the serial driver's, for any
        // worker count.
        let cat = crate::task::tests::catalog();
        let dag = crate::task::tests::agg_plan();
        let serial = {
            let shuffle = crate::shuffle::MemoryShuffle::new();
            execute_query(&dag, 1, &cat, &shuffle)
        };
        let serial_bytes = encode_batch(&serial);
        for workers in [1u32, 2, 8] {
            let shuffle = crate::shuffle::MemoryShuffle::new();
            let parallel = Executor::new(workers).execute_query(&dag, 1, &cat, &shuffle);
            assert_eq!(
                encode_batch(&parallel),
                serial_bytes,
                "workers={workers} diverged from serial execution"
            );
            assert_eq!(shuffle.resident_bytes(), 0, "query state cleaned up");
        }
    }

    #[test]
    fn stage_results_and_telemetry_are_worker_count_independent() {
        let cat = crate::task::tests::catalog();
        let dag = crate::task::tests::agg_plan();
        let dump = |workers: u32| {
            let shuffle = crate::shuffle::MemoryShuffle::new();
            let t = Telemetry::new();
            let ex = Executor::new(workers);
            let mut rows = Vec::new();
            for stage in &dag.stages {
                let results = ex.execute_stage(
                    &dag,
                    stage.id,
                    7,
                    &cat,
                    &shuffle,
                    &t,
                    &FaultInjector::disabled(),
                );
                rows.extend(results.iter().map(|r| (r.rows_in, r.rows_out)));
            }
            (rows, t.export_jsonl())
        };
        let baseline = dump(1);
        for workers in [2u32, 8] {
            assert_eq!(dump(workers), baseline, "workers={workers}");
        }
        assert!(baseline.1.contains("engine.tasks_total"));
    }
}
