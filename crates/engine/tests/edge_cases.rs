//! Engine edge cases: empty inputs, all-filtered partitions, null keys
//! through exchanges, skewed partitioning, and single-row tables.

use cackle_engine::prelude::*;

fn catalog_with(name: &str, schema: SchemaRef, batches: Vec<Batch>) -> Catalog {
    let c = Catalog::new();
    c.register(Table::new(name, schema, batches));
    c
}

fn two_stage_sum_dag(table: &str, tasks: u32, parts: u32) -> StageDag {
    let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::F64)]);
    let _ = schema;
    let out = Schema::shared(&[("k", DataType::I64), ("s", DataType::F64)]);
    StageDag::new(
        "sum",
        vec![
            Stage {
                id: 0,
                root: PlanNode::HashAggregate {
                    input: Box::new(PlanNode::Scan {
                        table: table.into(),
                        filter: None,
                        projection: None,
                    }),
                    group_by: vec![Expr::col(0)],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1))],
                    schema: out.clone(),
                },
                tasks,
                exchange: ExchangeMode::Hash {
                    keys: vec![Expr::col(0)],
                    partitions: parts,
                },
                output_schema: out.clone(),
            },
            Stage {
                id: 1,
                root: PlanNode::HashAggregate {
                    input: Box::new(PlanNode::ShuffleRead { stage: 0 }),
                    group_by: vec![Expr::col(0)],
                    aggs: vec![AggExpr::new(AggFunc::Sum, Expr::col(1))],
                    schema: out.clone(),
                },
                tasks: parts,
                exchange: ExchangeMode::Gather,
                output_schema: out,
            },
        ],
    )
}

#[test]
fn empty_table_flows_through_exchange() {
    let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::F64)]);
    let cat = catalog_with("t", schema.clone(), vec![Batch::empty(schema)]);
    let dag = two_stage_sum_dag("t", 3, 2);
    let r = execute_query(&dag, 1, &cat, &MemoryShuffle::new());
    assert_eq!(r.num_rows(), 0);
    assert_eq!(r.num_columns(), 2);
}

#[test]
fn all_rows_filtered_is_empty_not_panic() {
    let schema = Schema::shared(&[("k", DataType::I64)]);
    let cat = catalog_with(
        "t",
        schema.clone(),
        vec![Batch::new(
            schema.clone(),
            vec![Column::from_i64(vec![1, 2, 3])],
        )],
    );
    let dag = StageDag::new(
        "none",
        vec![Stage {
            id: 0,
            root: PlanNode::Filter {
                input: Box::new(PlanNode::Scan {
                    table: "t".into(),
                    filter: None,
                    projection: None,
                }),
                predicate: Expr::col(0).gt(Expr::lit_i64(100)),
            },
            tasks: 2,
            exchange: ExchangeMode::Gather,
            output_schema: schema,
        }],
    );
    let r = execute_query(&dag, 1, &cat, &MemoryShuffle::new());
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn extreme_skew_single_key() {
    // Every row has the same key: one partition takes everything, the
    // others read empty; the final sum must still be exact.
    let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::F64)]);
    let n = 10_000;
    let cat = catalog_with(
        "t",
        schema.clone(),
        vec![Batch::new(
            schema,
            vec![
                Column::from_i64(vec![7; n]),
                Column::from_f64((0..n).map(|x| x as f64).collect()),
            ],
        )],
    );
    let dag = two_stage_sum_dag("t", 4, 8);
    let r = execute_query(&dag, 1, &cat, &MemoryShuffle::new());
    assert_eq!(r.num_rows(), 1);
    assert_eq!(r.columns[0].i64s(), &[7]);
    let expect: f64 = (0..n).map(|x| x as f64).sum();
    assert!((r.columns[1].f64s()[0] - expect).abs() < 1e-6);
}

#[test]
fn null_group_keys_form_their_own_group() {
    let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::F64)]);
    let batch = Batch::new(
        schema.clone(),
        vec![
            Column::with_validity(
                ColumnData::I64(vec![1, 0, 1, 0]),
                vec![true, false, true, false],
            ),
            Column::from_f64(vec![1.0, 2.0, 3.0, 4.0]),
        ],
    );
    let cat = catalog_with("t", schema, vec![batch]);
    let dag = two_stage_sum_dag("t", 1, 2);
    let r = execute_query(&dag, 1, &cat, &MemoryShuffle::new());
    // Two groups: k=1 (sum 4) and k=NULL (sum 6).
    assert_eq!(r.num_rows(), 2);
    let mut found_null = false;
    for i in 0..2 {
        match r.columns[0].value(i) {
            Value::I64(1) => assert_eq!(r.columns[1].f64s()[i], 4.0),
            Value::Null => {
                found_null = true;
                assert_eq!(r.columns[1].f64s()[i], 6.0);
            }
            other => panic!("unexpected group {other:?}"),
        }
    }
    assert!(found_null, "null group must survive the exchange");
}

#[test]
fn more_tasks_than_partitions_idle_gracefully() {
    let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::F64)]);
    // One tiny partition but 8 scan tasks.
    let cat = catalog_with(
        "t",
        schema.clone(),
        vec![Batch::new(
            schema,
            vec![Column::from_i64(vec![1]), Column::from_f64(vec![5.0])],
        )],
    );
    let dag = two_stage_sum_dag("t", 8, 3);
    let r = execute_query(&dag, 1, &cat, &MemoryShuffle::new());
    assert_eq!(r.num_rows(), 1);
    assert_eq!(r.columns[1].f64s(), &[5.0]);
}

#[test]
fn broadcast_of_empty_build_side_yields_empty_join() {
    let dim_schema = Schema::shared(&[("k", DataType::I64)]);
    let fact_schema = Schema::shared(&[("k", DataType::I64)]);
    let cat = Catalog::new();
    cat.register(Table::new(
        "dim",
        dim_schema.clone(),
        vec![Batch::empty(dim_schema.clone())],
    ));
    cat.register(Table::new(
        "fact",
        fact_schema.clone(),
        vec![Batch::new(
            fact_schema.clone(),
            vec![Column::from_i64(vec![1, 2, 3])],
        )],
    ));
    let out = Schema::shared(&[("fk", DataType::I64), ("dk", DataType::I64)]);
    let dag = StageDag::new(
        "bjoin",
        vec![
            Stage {
                id: 0,
                root: PlanNode::Scan {
                    table: "dim".into(),
                    filter: None,
                    projection: None,
                },
                tasks: 1,
                exchange: ExchangeMode::Broadcast,
                output_schema: dim_schema,
            },
            Stage {
                id: 1,
                root: PlanNode::HashJoin {
                    build: Box::new(PlanNode::BroadcastRead { stage: 0 }),
                    probe: Box::new(PlanNode::Scan {
                        table: "fact".into(),
                        filter: None,
                        projection: None,
                    }),
                    build_keys: vec![Expr::col(0)],
                    probe_keys: vec![Expr::col(0)],
                    join_type: JoinType::Inner,
                    schema: out.clone(),
                },
                tasks: 2,
                exchange: ExchangeMode::Gather,
                output_schema: out,
            },
        ],
    );
    let r = execute_query(&dag, 1, &cat, &MemoryShuffle::new());
    assert_eq!(r.num_rows(), 0);
}
