//! Randomized property tests on the engine's core data structures and
//! invariants: codec roundtrips, row-key injectivity, filter/take/sort
//! algebra, and join semantics against a naive reference.
//!
//! Cases are generated from the in-repo deterministic PRNG so every
//! failure is reproducible from the seed constant alone.

use cackle_engine::codec::{decode_batch, encode_batch};
use cackle_engine::ops::join::{hash_join, JoinType};
use cackle_engine::ops::sort::{sort, SortKey};
use cackle_engine::prelude::*;
use cackle_engine::rowkey::encode_row;
use cackle_prng::Pcg32;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A random column of the given length with arbitrary type and values,
/// possibly with a validity mask.
fn gen_column(rng: &mut Pcg32, len: usize) -> Column {
    let data = match rng.gen_range(0u32..5) {
        0 => ColumnData::I64((0..len).map(|_| rng.next_u64() as i64).collect()),
        1 => ColumnData::F64((0..len).map(|_| rng.gen_range(-1.0e12..1.0e12)).collect()),
        2 => ColumnData::Str(
            (0..len)
                .map(|_| {
                    let n = rng.gen_range(0usize..13);
                    (0..n)
                        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                        .collect()
                })
                .collect(),
        ),
        3 => ColumnData::Date(
            (0..len)
                .map(|_| rng.gen_range(-30_000i32..30_000))
                .collect(),
        ),
        _ => ColumnData::Bool((0..len).map(|_| rng.gen_bool(0.5)).collect()),
    };
    if rng.gen_bool(0.5) {
        let mask: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        Column::with_validity(data, mask)
    } else {
        Column::new(data)
    }
}

/// A random batch: 1..40 rows, 1..5 columns named `c{i}`.
fn gen_batch(rng: &mut Pcg32) -> Batch {
    let rows = rng.gen_range(1usize..40);
    let cols = rng.gen_range(1usize..5);
    let columns: Vec<Column> = (0..cols).map(|_| gen_column(rng, rows)).collect();
    let fields = columns
        .iter()
        .enumerate()
        .map(|(i, c)| Field::new(format!("c{i}"), c.data_type()))
        .collect();
    Batch::new(Arc::new(Schema::new(fields)), columns)
}

/// encode → decode is the identity for every batch.
#[test]
fn codec_roundtrips() {
    let mut rng = Pcg32::seed_from_u64(0xE061_01);
    for _ in 0..64 {
        let batch = gen_batch(&mut rng);
        let decoded = decode_batch(&encode_batch(&batch), batch.schema.clone());
        assert_eq!(decoded, batch);
    }
}

/// Row-key encoding is injective over rows: two rows encode equal iff
/// their values (including null positions) are equal.
#[test]
fn rowkey_injective() {
    let mut rng = Pcg32::seed_from_u64(0xE061_02);
    for _ in 0..64 {
        let batch = gen_batch(&mut rng);
        let cols: Vec<&Column> = batch.columns.iter().collect();
        let n = batch.num_rows();
        for i in 0..n {
            for j in (i + 1)..n {
                let same_values = batch.row(i) == batch.row(j);
                let same_key = encode_row(&cols, i) == encode_row(&cols, j);
                assert_eq!(same_values, same_key, "rows {i} vs {j}");
            }
        }
    }
}

/// filter(mask) keeps exactly the masked rows in order.
#[test]
fn filter_is_selective() {
    let mut rng = Pcg32::seed_from_u64(0xE061_03);
    for _ in 0..64 {
        let batch = gen_batch(&mut rng);
        let seed = rng.next_u64();
        let n = batch.num_rows();
        let mask: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let filtered = batch.filter(&mask);
        let expected: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
        assert_eq!(filtered.num_rows(), expected.len());
        for (out_i, &in_i) in expected.iter().enumerate() {
            assert_eq!(filtered.row(out_i), batch.row(in_i));
        }
    }
}

/// concat(chunks) reassembles the original batch.
#[test]
fn chunk_concat_identity() {
    let mut rng = Pcg32::seed_from_u64(0xE061_04);
    for _ in 0..64 {
        let batch = gen_batch(&mut rng);
        let chunk = rng.gen_range(1usize..7);
        let chunks = batch.chunks(chunk);
        let whole = Batch::concat(batch.schema.clone(), &chunks);
        assert_eq!(whole, batch);
    }
}

/// Sorting produces a permutation of the input in key order.
#[test]
fn sort_is_ordered_permutation() {
    let mut rng = Pcg32::seed_from_u64(0xE061_05);
    for _ in 0..64 {
        let keys: Vec<i64> = (0..rng.gen_range(1usize..50))
            .map(|_| rng.next_u64() as i64)
            .collect();
        let descending = rng.gen_bool(0.5);
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let batch = Batch::new(schema.clone(), vec![Column::from_i64(keys.clone())]);
        let sk = if descending {
            SortKey::desc(Expr::col(0))
        } else {
            SortKey::asc(Expr::col(0))
        };
        let out = sort(schema, &[batch], &[sk], None);
        let got = out.columns[0].i64s().to_vec();
        let mut expect = keys;
        expect.sort_unstable();
        if descending {
            expect.reverse();
        }
        assert_eq!(got, expect);
    }
}

/// Inner hash join matches a naive nested-loop reference.
#[test]
fn join_matches_nested_loop() {
    let mut rng = Pcg32::seed_from_u64(0xE061_06);
    for _ in 0..64 {
        let build_keys: Vec<i64> = (0..rng.gen_range(0usize..20))
            .map(|_| rng.gen_range(0i64..8))
            .collect();
        let probe_keys: Vec<i64> = (0..rng.gen_range(0usize..20))
            .map(|_| rng.gen_range(0i64..8))
            .collect();
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let build = Batch::new(schema.clone(), vec![Column::from_i64(build_keys.clone())]);
        let probe = Batch::new(schema.clone(), vec![Column::from_i64(probe_keys.clone())]);
        let out = Schema::shared(&[("pk", DataType::I64), ("bk", DataType::I64)]);
        let res = hash_join(
            schema,
            &[build],
            &[probe],
            &[Expr::col(0)],
            &[Expr::col(0)],
            JoinType::Inner,
            out,
        );
        // Count matched pairs per key.
        let mut got: BTreeMap<i64, usize> = BTreeMap::new();
        for b in &res {
            for i in 0..b.num_rows() {
                *got.entry(b.columns[0].i64s()[i]).or_default() += 1;
            }
        }
        let mut expect: BTreeMap<i64, usize> = BTreeMap::new();
        for &p in &probe_keys {
            let matches = build_keys.iter().filter(|&&b| b == p).count();
            if matches > 0 {
                *expect.entry(p).or_default() += matches;
            }
        }
        assert_eq!(got, expect);
    }
}

/// Semi + anti join partition the probe side.
#[test]
fn semi_anti_partition_probe() {
    let mut rng = Pcg32::seed_from_u64(0xE061_07);
    for _ in 0..64 {
        let build_keys: Vec<i64> = (0..rng.gen_range(0usize..15))
            .map(|_| rng.gen_range(0i64..6))
            .collect();
        let probe_keys: Vec<i64> = (0..rng.gen_range(0usize..15))
            .map(|_| rng.gen_range(0i64..6))
            .collect();
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let out = Schema::shared(&[("k", DataType::I64)]);
        let run = |jt| {
            let build = Batch::new(schema.clone(), vec![Column::from_i64(build_keys.clone())]);
            let probe = Batch::new(schema.clone(), vec![Column::from_i64(probe_keys.clone())]);
            hash_join(
                schema.clone(),
                &[build],
                &[probe],
                &[Expr::col(0)],
                &[Expr::col(0)],
                jt,
                out.clone(),
            )
            .iter()
            .map(|b| b.num_rows())
            .sum::<usize>()
        };
        assert_eq!(run(JoinType::Semi) + run(JoinType::Anti), probe_keys.len());
    }
}
