//! Property-based tests on the engine's core data structures and
//! invariants: codec roundtrips, row-key injectivity, filter/take/sort
//! algebra, and join semantics against a naive reference.

use cackle_engine::codec::{decode_batch, encode_batch};
use cackle_engine::ops::join::{hash_join, JoinType};
use cackle_engine::ops::sort::{sort, SortKey};
use cackle_engine::prelude::*;
use cackle_engine::rowkey::encode_row;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy: a column of the given length with arbitrary type and values,
/// possibly with a validity mask.
fn arb_column(len: usize) -> impl Strategy<Value = Column> {
    let values = prop_oneof![
        proptest::collection::vec(any::<i64>(), len).prop_map(ColumnData::I64),
        proptest::collection::vec(-1.0e12f64..1.0e12, len).prop_map(ColumnData::F64),
        proptest::collection::vec("[a-z]{0,12}", len).prop_map(ColumnData::Str),
        proptest::collection::vec(-30_000i32..30_000, len).prop_map(ColumnData::Date),
        proptest::collection::vec(any::<bool>(), len).prop_map(ColumnData::Bool),
    ];
    (values, proptest::collection::vec(any::<bool>(), len), any::<bool>()).prop_map(
        |(data, mask, use_mask)| {
            if use_mask {
                Column::with_validity(data, mask)
            } else {
                Column::new(data)
            }
        },
    )
}

fn arb_batch() -> impl Strategy<Value = Batch> {
    (1usize..40, 1usize..5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(arb_column(rows), cols).prop_map(move |columns| {
            let fields = columns
                .iter()
                .enumerate()
                .map(|(i, c)| Field::new(format!("c{i}"), c.data_type()))
                .collect();
            Batch::new(Arc::new(Schema::new(fields)), columns)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for every batch.
    #[test]
    fn codec_roundtrips(batch in arb_batch()) {
        let decoded = decode_batch(&encode_batch(&batch), batch.schema.clone());
        prop_assert_eq!(decoded, batch);
    }

    /// Row-key encoding is injective over rows: two rows encode equal iff
    /// their values (including null positions) are equal.
    #[test]
    fn rowkey_injective(batch in arb_batch()) {
        let cols: Vec<&Column> = batch.columns.iter().collect();
        let n = batch.num_rows();
        for i in 0..n {
            for j in (i + 1)..n {
                let same_values = batch.row(i) == batch.row(j);
                let same_key = encode_row(&cols, i) == encode_row(&cols, j);
                prop_assert_eq!(same_values, same_key, "rows {} vs {}", i, j);
            }
        }
    }

    /// filter(mask) keeps exactly the masked rows in order.
    #[test]
    fn filter_is_selective(batch in arb_batch(), seed in any::<u64>()) {
        let n = batch.num_rows();
        let mask: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let filtered = batch.filter(&mask);
        let expected: Vec<usize> =
            (0..n).filter(|&i| mask[i]).collect();
        prop_assert_eq!(filtered.num_rows(), expected.len());
        for (out_i, &in_i) in expected.iter().enumerate() {
            prop_assert_eq!(filtered.row(out_i), batch.row(in_i));
        }
    }

    /// take ∘ concat(chunks) reassembles the original batch.
    #[test]
    fn chunk_concat_identity(batch in arb_batch(), chunk in 1usize..7) {
        let chunks = batch.chunks(chunk);
        let whole = Batch::concat(batch.schema.clone(), &chunks);
        prop_assert_eq!(whole, batch);
    }

    /// Sorting produces a permutation of the input in key order.
    #[test]
    fn sort_is_ordered_permutation(
        keys in proptest::collection::vec(any::<i64>(), 1..50),
        descending in any::<bool>(),
    ) {
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let batch = Batch::new(schema.clone(), vec![Column::from_i64(keys.clone())]);
        let sk = if descending {
            SortKey::desc(Expr::col(0))
        } else {
            SortKey::asc(Expr::col(0))
        };
        let out = sort(schema, &[batch], &[sk], None);
        let got = out.columns[0].i64s().to_vec();
        let mut expect = keys;
        expect.sort_unstable();
        if descending {
            expect.reverse();
        }
        prop_assert_eq!(got, expect);
    }

    /// Inner hash join matches a naive nested-loop reference.
    #[test]
    fn join_matches_nested_loop(
        build_keys in proptest::collection::vec(0i64..8, 0..20),
        probe_keys in proptest::collection::vec(0i64..8, 0..20),
    ) {
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let build = Batch::new(schema.clone(), vec![Column::from_i64(build_keys.clone())]);
        let probe = Batch::new(schema.clone(), vec![Column::from_i64(probe_keys.clone())]);
        let out = Schema::shared(&[("pk", DataType::I64), ("bk", DataType::I64)]);
        let res = hash_join(
            schema,
            &[build],
            &[probe],
            &[Expr::col(0)],
            &[Expr::col(0)],
            JoinType::Inner,
            out,
        );
        // Count matched pairs per key.
        let mut got: HashMap<i64, usize> = HashMap::new();
        for b in &res {
            for i in 0..b.num_rows() {
                *got.entry(b.columns[0].i64s()[i]).or_default() += 1;
            }
        }
        let mut expect: HashMap<i64, usize> = HashMap::new();
        for &p in &probe_keys {
            let matches = build_keys.iter().filter(|&&b| b == p).count();
            if matches > 0 {
                *expect.entry(p).or_default() += matches;
            }
        }
        prop_assert_eq!(got, expect);
    }

    /// Semi + anti join partition the probe side.
    #[test]
    fn semi_anti_partition_probe(
        build_keys in proptest::collection::vec(0i64..6, 0..15),
        probe_keys in proptest::collection::vec(0i64..6, 0..15),
    ) {
        let schema = Schema::shared(&[("k", DataType::I64)]);
        let out = Schema::shared(&[("k", DataType::I64)]);
        let run = |jt| {
            let build =
                Batch::new(schema.clone(), vec![Column::from_i64(build_keys.clone())]);
            let probe =
                Batch::new(schema.clone(), vec![Column::from_i64(probe_keys.clone())]);
            hash_join(schema.clone(), &[build], &[probe], &[Expr::col(0)],
                      &[Expr::col(0)], jt, out.clone())
                .iter()
                .map(|b| b.num_rows())
                .sum::<usize>()
        };
        prop_assert_eq!(run(JoinType::Semi) + run(JoinType::Anti), probe_keys.len());
    }
}
