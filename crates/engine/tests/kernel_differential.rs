//! Differential tests: every vectorized kernel against the preserved
//! row-at-a-time implementation in `cackle_engine::reference`.
//!
//! The reference module is the behavioral oracle for the kernel rewrite:
//! for seeded random inputs — including nulls, empty batches, and
//! all/none-selected bitmaps — each kernel must produce byte-identical
//! columns to the legacy code it replaced.

use cackle_engine::kernel_prelude::{filter_batch, filter_project, ScratchArena};
use cackle_engine::predicate_mask;
use cackle_engine::prelude::*;
use cackle_engine::reference as reference_impl;
use cackle_engine::types::Value;

/// Tiny deterministic xorshift64* generator: no external crates, stable
/// across platforms, seeded per test.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "alp", ""];

fn maybe_validity(rng: &mut Rng, n: usize) -> Option<Vec<bool>> {
    if rng.chance(60) {
        Some((0..n).map(|_| rng.chance(80)).collect())
    } else {
        None
    }
}

fn with_mask(data: ColumnData, mask: Option<Vec<bool>>) -> Column {
    match mask {
        Some(m) => Column::with_validity(data, m),
        None => Column::new(data),
    }
}

/// A five-column batch (i64, f64, str, date, bool) with random values in
/// small ranges (so joins and group-bys actually collide) and per-column
/// random validity. Field names take `prefix` so two random batches can
/// join without schema name clashes.
fn random_batch(rng: &mut Rng, n: usize, prefix: &str) -> Batch {
    let names: Vec<String> = ["i", "f", "s", "d", "b"]
        .iter()
        .map(|suffix| format!("{prefix}{suffix}"))
        .collect();
    let dtypes = [
        DataType::I64,
        DataType::F64,
        DataType::Str,
        DataType::Date,
        DataType::Bool,
    ];
    let fields: Vec<(&str, DataType)> = names
        .iter()
        .zip(dtypes)
        .map(|(n, t)| (n.as_str(), t))
        .collect();
    let schema = Schema::shared(&fields);
    let i64s: Vec<i64> = (0..n).map(|_| rng.below(8) as i64 - 2).collect();
    let f64s: Vec<f64> = (0..n).map(|_| rng.below(40) as f64 / 4.0 - 3.0).collect();
    let strs: Vec<String> = (0..n)
        .map(|_| VOCAB[rng.below(VOCAB.len() as u64) as usize].to_string())
        .collect();
    let dates: Vec<i32> = (0..n).map(|_| 9000 + rng.below(800) as i32).collect();
    let bools: Vec<bool> = (0..n).map(|_| rng.chance(50)).collect();
    let cols = vec![
        with_mask(ColumnData::I64(i64s), maybe_validity(rng, n)),
        with_mask(ColumnData::F64(f64s), maybe_validity(rng, n)),
        with_mask(ColumnData::Str(strs), maybe_validity(rng, n)),
        with_mask(ColumnData::Date(dates), maybe_validity(rng, n)),
        with_mask(ColumnData::Bool(bools), maybe_validity(rng, n)),
    ];
    Batch::new(schema, cols)
}

fn test_batches(seed: u64, prefix: &str) -> Vec<Batch> {
    let mut rng = Rng::new(seed);
    // Empty, single-row, and two larger batches.
    [0usize, 1, 17, 256]
        .iter()
        .map(|&n| random_batch(&mut rng, n, prefix))
        .collect()
}

/// Expressions covering every scalar kernel path: column-vs-literal
/// comparisons in both operand orders, arithmetic (including the i64/i64
/// division-to-f64 rule and date arithmetic), LIKE, Kleene AND/OR, CASE,
/// and the null-literal fallback.
fn scalar_exprs() -> Vec<Expr> {
    vec![
        Expr::col(0).lt(Expr::lit_i64(2)),
        Expr::col(0).eq(Expr::lit_i64(1)),
        Expr::lit_i64(1).lt(Expr::col(0)), // literal on the lhs
        Expr::col(1).gt_eq(Expr::lit_f64(0.5)),
        Expr::lit_f64(0.5).gt_eq(Expr::col(1)),
        Expr::col(2).gt(Expr::lit_str("beta")),
        Expr::col(0).add(Expr::lit_i64(7)),
        Expr::lit_i64(7).sub(Expr::col(0)),
        Expr::col(0).div(Expr::lit_i64(2)), // i64/i64 divides as f64
        Expr::col(0).mul(Expr::lit_f64(1.5)),
        Expr::lit_f64(10.0).div(Expr::col(1)),
        Expr::col(3).add(Expr::lit_i64(90)), // date + days
        Expr::lit_i64(90).add(Expr::col(3)), // days + date
        Expr::col(3).sub(Expr::lit_i64(30)),
        Expr::Like {
            input: Box::new(Expr::col(2)),
            pattern: LikePattern::Prefix("al".into()),
            negated: false,
        },
        Expr::Like {
            input: Box::new(Expr::col(2)),
            pattern: LikePattern::Contains("mm".into()),
            negated: true,
        },
        // Kleene logic falls back to the materialized path; still must match.
        Expr::col(0)
            .lt(Expr::lit_i64(2))
            .and(Expr::col(1).gt(Expr::lit_f64(0.0))),
        Expr::col(0)
            .eq(Expr::lit_i64(0))
            .or(Expr::col(4).eq(Expr::lit_i64(1).eq(Expr::lit_i64(1)))),
        Expr::Not(Box::new(Expr::col(4))),
        Expr::IsNull(Box::new(Expr::col(0))),
        // Null literal: the scalar fast path must decline and match anyway.
        Expr::col(0).add(Expr::Lit(Value::Null)),
        Expr::Case {
            branches: vec![
                (Expr::col(0).lt(Expr::lit_i64(0)), Expr::lit_str("lo")),
                (Expr::col(0).lt(Expr::lit_i64(3)), Expr::col(2)),
            ],
            else_expr: Some(Box::new(Expr::lit_str("hi"))),
        },
        Expr::ExtractYear(Box::new(Expr::col(3))),
        Expr::Substr {
            input: Box::new(Expr::col(2)),
            start: 2,
            len: 3,
        },
        Expr::Coalesce(vec![Expr::col(0), Expr::lit_i64(42)]),
        Expr::Cast {
            input: Box::new(Expr::col(0)),
            to: DataType::F64,
        },
        Expr::InList {
            input: Box::new(Expr::col(0)),
            list: vec![Value::I64(0), Value::I64(3)],
        },
    ]
}

#[test]
fn scalar_kernels_match_row_reference() {
    for batch in test_batches(11, "") {
        for (ei, expr) in scalar_exprs().iter().enumerate() {
            let fast = expr.eval(&batch);
            let slow = reference_impl::row_eval(expr, &batch);
            assert_eq!(fast, slow, "expr #{ei} on {} rows", batch.num_rows());
        }
    }
}

#[test]
fn predicate_masks_match_row_reference() {
    let preds = [
        Expr::col(0).lt(Expr::lit_i64(2)),
        // Null-producing conjunction: nulls must fold to false identically.
        Expr::col(0)
            .lt(Expr::lit_i64(2))
            .and(Expr::col(1).gt(Expr::lit_f64(0.0))),
        Expr::col(4).or(Expr::IsNull(Box::new(Expr::col(2)))),
    ];
    for batch in test_batches(23, "") {
        for (pi, pred) in preds.iter().enumerate() {
            assert_eq!(
                predicate_mask(pred, &batch),
                reference_impl::row_predicate_mask(pred, &batch),
                "pred #{pi} on {} rows",
                batch.num_rows()
            );
        }
    }
}

#[test]
fn filter_kernels_match_batch_filter() {
    let mut rng = Rng::new(31);
    let mut arena = ScratchArena::new();
    for batch in test_batches(31, "") {
        let n = batch.num_rows();
        let masks = [
            vec![true; n],                                      // all selected
            vec![false; n],                                     // none selected
            (0..n).map(|_| rng.chance(40)).collect::<Vec<_>>(), // random
        ];
        for mask in &masks {
            assert_eq!(filter_batch(&batch, mask, &mut arena), batch.filter(mask));
            // Fused filter+project, with a repeated column.
            let idx = [1usize, 0, 1];
            let out_schema = Schema::shared(&[
                ("a", DataType::F64),
                ("b", DataType::I64),
                ("c", DataType::F64),
            ]);
            let fused = filter_project(&batch, mask, &idx, out_schema.clone(), &mut arena);
            let two_step = batch.filter(mask).project_view(out_schema, &idx).to_batch();
            assert_eq!(fused, two_step);
        }
    }
}

fn agg_specs() -> (Vec<AggExpr>, Vec<(&'static str, DataType)>) {
    let aggs = vec![
        AggExpr::new(AggFunc::Sum, Expr::col(1)),
        AggExpr::new(AggFunc::Sum, Expr::col(0)),
        AggExpr::new(AggFunc::Min, Expr::col(2)),
        AggExpr::new(AggFunc::Max, Expr::col(1)),
        AggExpr::new(AggFunc::Count, Expr::col(3)),
        AggExpr::new(AggFunc::CountStar, Expr::col(0)),
        AggExpr::new(AggFunc::Avg, Expr::col(0)),
        AggExpr::new(AggFunc::CountDistinct, Expr::col(2)),
    ];
    let out_fields = vec![
        ("sum_f", DataType::F64),
        ("sum_i", DataType::I64),
        ("min_s", DataType::Str),
        ("max_f", DataType::F64),
        ("cnt_d", DataType::I64),
        ("cnt", DataType::I64),
        ("avg_i", DataType::F64),
        ("dist_s", DataType::I64),
    ];
    (aggs, out_fields)
}

#[test]
fn aggregate_kernel_matches_row_reference() {
    use cackle_engine::ops::aggregate::hash_aggregate;
    let (aggs, out_fields) = agg_specs();
    let batches = test_batches(47, "");
    let cases: Vec<(Vec<Expr>, Vec<(&str, DataType)>)> = vec![
        // Single nullable i64 key: the typed Grouper fast path is only
        // legal for all-valid i64 keys, so this exercises the guard too.
        (vec![Expr::col(0)], vec![("k", DataType::I64)]),
        // Two-column key: canonical byte-key path.
        (
            vec![Expr::col(0), Expr::col(2)],
            vec![("k", DataType::I64), ("s", DataType::Str)],
        ),
        // Global aggregation.
        (vec![], vec![]),
    ];
    for (group_by, key_fields) in cases {
        let fields: Vec<(&str, DataType)> = key_fields
            .iter()
            .chain(out_fields.iter())
            .map(|&(n, t)| (n, t))
            .collect();
        let output = Schema::shared(&fields);
        let fast = hash_aggregate(&batches, &group_by, &aggs, output.clone());
        let slow = reference_impl::row_hash_aggregate(&batches, &group_by, &aggs, output.clone());
        assert_eq!(fast, slow, "group_by width {}", group_by.len());
        // Zero input batches (global aggregates still emit one row).
        let fast0 = hash_aggregate(&[], &group_by, &aggs, output.clone());
        let slow0 = reference_impl::row_hash_aggregate(&[], &group_by, &aggs, output);
        assert_eq!(fast0, slow0);
    }
}

#[test]
fn join_kernel_matches_row_reference() {
    use cackle_engine::ops::join::hash_join;
    let build = test_batches(59, "b_");
    let probe = test_batches(61, "p_");
    let build_schema = build[0].schema.clone();
    let inner_fields: Vec<(&str, DataType)> = [
        ("p_i", DataType::I64),
        ("p_f", DataType::F64),
        ("p_s", DataType::Str),
        ("p_d", DataType::Date),
        ("p_b", DataType::Bool),
        ("b_i", DataType::I64),
        ("b_f", DataType::F64),
        ("b_s", DataType::Str),
        ("b_d", DataType::Date),
        ("b_b", DataType::Bool),
    ]
    .to_vec();
    let wide = Schema::shared(&inner_fields);
    let narrow = Schema::shared(&inner_fields[..5]);
    // Single nullable i64 key (typed-index path, null keys excluded) and
    // a two-column key (byte-key path).
    let key_sets: [(Vec<Expr>, Vec<Expr>); 2] = [
        (vec![Expr::col(0)], vec![Expr::col(0)]),
        (
            vec![Expr::col(0), Expr::col(2)],
            vec![Expr::col(0), Expr::col(2)],
        ),
    ];
    for (build_keys, probe_keys) in &key_sets {
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let output = match jt {
                JoinType::Inner | JoinType::Left => wide.clone(),
                JoinType::Semi | JoinType::Anti => narrow.clone(),
            };
            let fast = hash_join(
                build_schema.clone(),
                &build,
                &probe,
                build_keys,
                probe_keys,
                jt,
                output.clone(),
            );
            let slow = reference_impl::row_hash_join(
                build_schema.clone(),
                &build,
                &probe,
                build_keys,
                probe_keys,
                jt,
                output,
            );
            assert_eq!(fast, slow, "{jt:?} with {} key(s)", build_keys.len());
        }
    }
}

#[test]
fn sort_kernel_matches_row_reference() {
    use cackle_engine::ops::sort::sort;
    let batches = test_batches(73, "");
    let schema = batches[0].schema.clone();
    let key_sets = [
        vec![SortKey::asc(Expr::col(0))],
        vec![SortKey::desc(Expr::col(1)), SortKey::asc(Expr::col(0))],
        vec![
            SortKey::asc(Expr::col(2)),
            SortKey::desc(Expr::col(3)),
            SortKey::asc(Expr::col(4)),
        ],
    ];
    for keys in &key_sets {
        for limit in [None, Some(5), Some(0)] {
            let fast = sort(schema.clone(), &batches, keys, limit);
            let slow = reference_impl::row_sort(schema.clone(), &batches, keys, limit);
            assert_eq!(fast, slow, "{} key(s), limit {limit:?}", keys.len());
        }
    }
}

/// The buffer-pool reuse invariant: repeated executions of the same task
/// on one context must not allocate new scratch buffers after the first
/// run — every later checkout is served from the free list.
#[test]
fn scratch_pool_does_not_grow_across_runs() {
    let schema = Schema::shared(&[("k", DataType::I64), ("v", DataType::F64)]);
    let mut rng = Rng::new(97);
    let parts: Vec<Batch> = (0..4)
        .map(|_| {
            let n = 512;
            Batch::new(
                schema.clone(),
                vec![
                    Column::from_i64((0..n).map(|_| rng.below(100) as i64).collect()),
                    Column::from_f64((0..n).map(|_| rng.below(1000) as f64 / 10.0).collect()),
                ],
            )
        })
        .collect();
    let catalog = Catalog::new();
    catalog.register(Table::new("t", schema.clone(), parts));
    let out_schema = Schema::shared(&[("v", DataType::F64)]);
    let dag = StageDag::new(
        "pool_reuse",
        vec![
            Stage {
                id: 0,
                root: PlanNode::Scan {
                    table: "t".into(),
                    filter: Some(Expr::col(0).lt(Expr::lit_i64(50))),
                    projection: Some(vec![1]),
                },
                tasks: 1,
                exchange: ExchangeMode::Hash {
                    keys: vec![Expr::col(0)],
                    partitions: 4,
                },
                output_schema: out_schema.clone(),
            },
            // Never executed here (run_buffered publishes nothing); it
            // only makes the DAG validate (final stage must gather).
            Stage {
                id: 1,
                root: PlanNode::ShuffleRead { stage: 0 },
                tasks: 4,
                exchange: ExchangeMode::Gather,
                output_schema: out_schema,
            },
        ],
    );
    let shuffle = MemoryShuffle::new();
    let ctx = TaskContext::new(&dag, 0, 0, 1, &catalog, &shuffle);
    let exec = TaskExecution::new(&ctx);

    let first = exec.run_buffered();
    let after_first = ctx.scratch.borrow().stats();
    assert!(after_first.fresh > 0, "the first run must allocate scratch");

    for run in 0..5 {
        let again = exec.run_buffered();
        assert_eq!(again.writes, first.writes, "run {run} changed output");
        let s = ctx.scratch.borrow().stats();
        assert_eq!(
            s.fresh, after_first.fresh,
            "run {run} allocated new scratch buffers"
        );
        assert!(s.reuses > after_first.reuses, "run {run} reused nothing");
    }
    // Checkouts are balanced: all of them were either fresh or reused.
    let s = ctx.scratch.borrow().stats();
    assert_eq!(s.checkouts, s.fresh + s.reuses);
}
