//! Umbrella crate for the Cackle reproduction: re-exports the workspace
//! crates so examples and integration tests can use one import root.
pub use cackle;
pub use cackle_cloud as cloud;
pub use cackle_comparators as comparators;
pub use cackle_engine as engine;
pub use cackle_serve as serve;
pub use cackle_tpch as tpch;
pub use cackle_workload as workload;
