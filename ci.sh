#!/usr/bin/env sh
# Offline CI gate: formatting, determinism/cost-hygiene lints, release
# build, full test suite. No network access required at any step.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cackle-lint (tests and examples included)"
# Exit 1 = new violations, exit 3 = stale baseline entries; both fail
# the gate under `set -e`.
cargo run -q -p cackle-lint -- . --baseline lint-baseline.txt --include-tests

echo "==> cackle-lint JSON diagnostics (deterministic artifact)"
mkdir -p results
# --timings none zeroes the meta block's wall-clock fields — the one
# nondeterministic part of the output — so the archived artifact is
# byte-identical across runs, checked below.
cargo run -q -p cackle-lint -- . --baseline lint-baseline.txt --include-tests \
    --format json --timings none > results/lint-diagnostics.json
cargo run -q -p cackle-lint -- . --baseline lint-baseline.txt --include-tests \
    --format json --timings none > results/lint-diagnostics.rerun.json
cmp results/lint-diagnostics.json results/lint-diagnostics.rerun.json \
    || { echo "cackle-lint: JSON output is not byte-identical across runs" >&2; exit 1; }
rm -f results/lint-diagnostics.rerun.json

echo "==> cackle-lint --explain smoke (every registered rule documents itself)"
# --list-rules is the registry of record: the loop below can never go
# stale when a rule is added or retired.
for rule in $(cargo run -q -p cackle-lint -- --list-rules | cut -f1); do
    cargo run -q -p cackle-lint -- --explain "$rule" > /dev/null \
        || { echo "cackle-lint: --explain $rule failed" >&2; exit 1; }
done

echo "==> cackle-lint fix --dry-run (deterministic and idempotent)"
# The tree lints clean, so the planned diff must be empty — and a
# second plan over the unchanged tree must be byte-identical.
cargo run -q -p cackle-lint -- fix . --dry-run --include-tests \
    > results/lint-fix-plan.diff
cargo run -q -p cackle-lint -- fix . --dry-run --include-tests \
    > results/lint-fix-plan.rerun.diff
cmp results/lint-fix-plan.diff results/lint-fix-plan.rerun.diff \
    || { echo "cackle-lint: fix --dry-run is not deterministic across runs" >&2; exit 1; }
rm -f results/lint-fix-plan.rerun.diff
if test -s results/lint-fix-plan.diff; then
    echo "cackle-lint: fix --dry-run planned edits on a clean tree" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> operator-throughput bench smoke (kernel vs reference, CSV archived)"
# --smoke shrinks the input so this exercises every kernel-vs-reference
# pair end-to-end in well under a second; the full-size run (no flag)
# is where the speedup self-checks apply.
cargo run -q --release -p cackle-bench --bin bench_operator_throughput -- --smoke
test -s results/operator_throughput.csv \
    || { echo "bench_operator_throughput: missing results/operator_throughput.csv" >&2; exit 1; }

echo "==> worker-count determinism (1 and 8 workers, golden dumps)"
cargo test -q --test determinism golden_dumps_are_byte_identical_across_worker_counts
cargo test -q --test executor_stress

echo "==> differential quantile sweep (Fenwick vs sorted brute force)"
cargo test -q -p cackle differential_quantile_fenwick_vs_sorted

echo "==> telemetry dump round-trip"
cargo run -q --release --example quickstart
cargo run -q --release -p cackle-telemetry --bin telemetry-check -- \
    results/quickstart_telemetry.jsonl

echo "==> tenant-sweep smoke (exact attribution, stable p99, CSV archived)"
# --smoke shrinks the sweep to 1/10/100 tenants; the bench itself
# asserts exact micro-dollar attribution and p99-vs-single-tenant at
# every row, so a serving-layer regression fails this step.
cargo run -q --release -p cackle-bench --bin bench_tenant_sweep -- --smoke
test -s results/tenant_sweep.csv \
    || { echo "bench_tenant_sweep: missing results/tenant_sweep.csv" >&2; exit 1; }

echo "==> multi-tenant serving smoke (per-tenant ledger + serve.* telemetry)"
cargo run -q --release --example multi_tenant
cargo run -q --release -p cackle-telemetry --bin telemetry-check -- \
    results/multi_tenant_telemetry.jsonl

echo "==> chaos smoke (seeded fault plan, bounded recovery)"
cargo run -q --release --example fault_injection
cargo run -q --release -p cackle-telemetry --bin telemetry-check -- \
    results/fault_injection_telemetry.jsonl

echo "==> environment-grid smoke (scenario pack, exact ledger conservation)"
# --smoke shrinks the workload; the bench asserts per-cell micro-dollar
# conservation and writes a multi-region cell's dump for the env.*
# schema check. The CSV still covers all 4 environments x 3 strategies.
cargo run -q --release -p cackle-bench --bin bench_env_grid -- --smoke
test -s results/env_grid.csv \
    || { echo "bench_env_grid: missing results/env_grid.csv" >&2; exit 1; }
cargo run -q --release -p cackle-telemetry --bin telemetry-check -- \
    results/env_grid_telemetry.jsonl

echo "CI gate passed."
