#!/usr/bin/env sh
# Offline CI gate: formatting, determinism/cost-hygiene lints, release
# build, full test suite. No network access required at any step.
set -eu
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cackle-lint"
cargo run -q -p cackle-lint -- . --baseline lint-baseline.txt

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> worker-count determinism (1 and 8 workers, golden dumps)"
cargo test -q --test determinism golden_dumps_are_byte_identical_across_worker_counts
cargo test -q --test executor_stress

echo "==> differential quantile sweep (Fenwick vs sorted brute force)"
cargo test -q -p cackle differential_quantile_fenwick_vs_sorted

echo "==> telemetry dump round-trip"
cargo run -q --release --example quickstart
cargo run -q --release -p cackle-telemetry --bin telemetry-check -- \
    results/quickstart_telemetry.jsonl

echo "==> chaos smoke (seeded fault plan, bounded recovery)"
cargo run -q --release --example fault_injection
cargo run -q --release -p cackle-telemetry --bin telemetry-check -- \
    results/fault_injection_telemetry.jsonl

echo "CI gate passed."
